"""The verification driver: every registered kernel and baseline, checked.

``verify_all`` is what CI runs (via ``python -m repro.verify``) and what
the test suite imports.  It re-derives nothing from the code under test
beyond the *artifacts* the producing layers hand it — DAGs, schedules,
claimed peaks, spill plans, memory traces — and cross-examines each with
the independent checkers in this package:

* every kernel DAG's written and optimal schedules (claims from
  :mod:`repro.kernels.scheduler`), including modmul budgets;
* every explicit-spill plan at the paper's budgets, for every supported
  curve's limb count against the GPU shared-memory limits;
* every scatter strategy named by a registered baseline (plus DistMSM's
  own hierarchical default), race-checked on a deterministic workload;
* the parallel bucket-sum's trace;
* the execution engine's schedules — every timeline mode of a DistMSM
  estimate, the cross-MSM flow shop, and a batched-MSM schedule — audited
  against the dependency / resource-exclusivity / makespan invariants;
* a chaos-tested DistMSM run — GPU death + straggler + transient transfer
  error injected into an 8-GPU estimate, the recovered timeline audited by
  both the schedule checker and the fault checker, and a functional
  toy-curve kill verified bit-exact against the fault-free result.
"""

from __future__ import annotations

from repro.baselines.registry import all_baselines
from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.curves.point import PACC_MODMULS, PADD_MODMULS, PDBL_MODMULS
from repro.curves.sampling import sample_points
from repro.curves.toy import toy_curve
from repro.kernels.dag import (
    OpDag,
    build_pacc_dag,
    build_padd_dag,
    build_pdbl_dag,
    entry_live,
)
from repro.kernels.padd_kernel import SPILL_REDUCTION
from repro.kernels.scheduler import find_optimal_schedule, written_order_peak
from repro.kernels.spill import plan_spills
from repro.verify.races import (
    detect_races,
    trace_bucket_sum,
    trace_hierarchical_scatter,
    trace_naive_scatter,
)
from repro.verify.report import VerificationReport
from repro.verify.schedule import verify_schedule
from repro.verify.spillcheck import verify_spill_plan
from repro.verify.timelinecheck import verify_timeline

#: kernel name -> (DAG builder, modular-multiplication budget)
KERNEL_BUDGETS = {
    "PADD": (build_padd_dag, PADD_MODMULS),
    "PACC": (build_pacc_dag, PACC_MODMULS),
    "PDBL": (build_pdbl_dag, PDBL_MODMULS),
}

#: the deterministic scatter workload the race checks replay
_SCATTER_POINTS = 192
_SCATTER_BUCKETS = 8


def _scatter_digits() -> list[int]:
    """A fixed pseudo-random digit stream covering every bucket."""
    state, digits = 0x9E3779B9, []
    for _ in range(_SCATTER_POINTS):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        digits.append(state % _SCATTER_BUCKETS)
    return digits


def verify_kernel_schedules(report: VerificationReport | None = None) -> VerificationReport:
    """Check written and optimal schedules of every kernel DAG."""
    report = report or VerificationReport()
    for name, (builder, budget) in KERNEL_BUDGETS.items():
        dag: OpDag = builder()
        written = verify_schedule(
            dag,
            claimed_peak=written_order_peak(dag),
            max_modmuls=budget,
            subject=f"{name} (written order)",
        )
        report.extend(written.violations)
        report.add_check(
            f"{name} written order: peak {written.peak}, "
            f"{written.modmuls} modmuls"
        )
        optimal = find_optimal_schedule(dag)
        checked = verify_schedule(
            dag,
            order=list(optimal.order),
            claimed_peak=optimal.peak,
            max_modmuls=budget,
            subject=f"{name} (optimal order)",
        )
        report.extend(checked.violations)
        report.add_check(
            f"{name} optimal order: peak {checked.peak} "
            f"(scheduler claims {optimal.peak})"
        )
    return report


def verify_spill_plans(
    curves: tuple[str, ...],
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Replay the explicit-spill plans at the paper's budgets per curve."""
    report = report or VerificationReport()
    for name, (builder, _) in KERNEL_BUDGETS.items():
        dag = builder()
        optimal = find_optimal_schedule(dag)
        budget = max(optimal.peak - SPILL_REDUCTION, entry_live(dag))
        if budget >= optimal.peak:
            report.add_check(f"{name}: no spilling possible below entry set")
            continue
        order = list(optimal.order)
        plan = plan_spills(dag, order, budget)
        for curve_name in curves:
            curve = curve_by_name(curve_name)
            checked = verify_spill_plan(
                dag,
                order,
                plan,
                num_limbs=curve.num_limbs,
                subject=f"{name} spill@{budget} on {curve_name}",
            )
            report.extend(checked.violations)
            report.add_check(
                f"{name} spill@{budget} on {curve_name}: "
                f"{checked.transfers} transfers, "
                f"{checked.peak_shm_bigints} in shared memory"
            )
    return report


def verify_scatter_config(
    subject: str,
    config: DistMsmConfig,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Race-check the scatter strategy one configuration actually runs."""
    report = report or VerificationReport()
    digits = _scatter_digits()
    if config.scatter == "naive":
        trace = trace_naive_scatter(digits, _SCATTER_BUCKETS)
    else:
        # keep the traced workload multi-block: small blocks, few points each
        small = DistMsmConfig(
            scatter="hierarchical", threads_per_block=32, points_per_thread=2
        )
        trace = trace_hierarchical_scatter(digits, _SCATTER_BUCKETS, small)
    checked = detect_races(trace, subject=f"{subject} ({config.scatter} scatter)")
    report.extend(checked.violations)
    report.add_check(
        f"{subject}: {config.scatter} scatter race-free "
        f"({checked.events} accesses, {checked.locations} locations)"
    )
    return report


def verify_bucket_sum(report: VerificationReport | None = None) -> VerificationReport:
    """Race-check the parallel bucket-sum with its tree reduction."""
    report = report or VerificationReport()
    curve = toy_curve()
    points = sample_points(curve, 16, seed=11)
    buckets = [[0, 1, 2, 3, 4, 5], [6, 7], [], [8, 9, 10, 11, 12, 13, 14, 15]]
    for n_threads in (2, 4, 8):
        trace = trace_bucket_sum(buckets, points, curve, n_threads)
        checked = detect_races(trace, subject=f"bucket-sum x{n_threads}")
        report.extend(checked.violations)
        report.add_check(
            f"bucket-sum with {n_threads} threads/bucket race-free "
            f"({checked.events} accesses)"
        )
    return report


def verify_timelines(report: VerificationReport | None = None) -> VerificationReport:
    """Audit the engine's schedules across its producing layers.

    Uses a fixed window size so no auto-tune sweep runs inside the gate;
    the timelines audited are real artifacts of the same code paths the
    benchmarks and figures use.
    """
    from repro.core.distmsm import DistMsm
    from repro.core.msm_timeline import TIMELINE_MODES, build_msm_timeline
    from repro.core.multi_msm import MsmJob, schedule_pipeline
    from repro.curves.params import curve_by_name
    from repro.engine.batch import BatchMsmScheduler, MsmRequest
    from repro.gpu.cluster import MultiGpuSystem

    report = report or VerificationReport()
    curve = curve_by_name("BLS12-381")
    config = DistMsmConfig(window_size=10)
    engine = DistMsm(MultiGpuSystem(8), config)
    est = engine.estimate(curve, 1 << 18)

    for mode in TIMELINE_MODES:
        timeline = (
            est.timeline
            if mode == "legacy"
            else build_msm_timeline(est.breakdown, engine.system.resources(), mode=mode)
        )
        checked = verify_timeline(timeline, subject=f"DistMSM estimate ({mode} mode)")
        report.extend(checked.violations)
        report.add_check(
            f"DistMSM {mode} timeline valid "
            f"({checked.tasks} tasks on {checked.resources} resources)"
        )

    flow = schedule_pipeline(
        [MsmJob("A", 4.0, 3.0), MsmJob("B", 5.0, 2.0), MsmJob("C", 2.0, 6.0)]
    )
    assert flow.engine_timeline is not None
    checked = verify_timeline(flow.engine_timeline, subject="cross-MSM flow shop")
    report.extend(checked.violations)
    report.add_check(
        f"flow-shop timeline valid ({checked.tasks} tasks, "
        f"makespan {flow.pipelined_ms:.2f} ms)"
    )

    batch = BatchMsmScheduler(MultiGpuSystem(8), config, gpu_groups=2).schedule(
        [MsmRequest(f"req{i}", curve, 1 << 18) for i in range(4)]
    )
    checked = verify_timeline(batch.timeline, subject="batched-MSM schedule")
    report.extend(checked.violations)
    report.add_check(
        f"batch timeline valid ({checked.tasks} tasks, "
        f"{batch.speedup:.2f}x over serial)"
    )
    return report


def verify_fault_recovery(report: VerificationReport | None = None) -> VerificationReport:
    """Chaos-test the orchestrator and audit the recovered artifacts.

    One analytic 8-GPU run under a mixed fault plan (GPU death mid-run,
    a straggler, a transient transfer error) is checked against both the
    generic schedule invariants and the fault rules; one functional
    toy-curve run with a GPU killed at t=0 is checked bit-exact.
    """
    from repro.core.distmsm import DistMsm
    from repro.curves.params import curve_by_name
    from repro.curves.sampling import msm_instance
    from repro.engine.faults import FaultPlan, GpuFailure, RetryPolicy, Straggler, TransferError
    from repro.gpu.cluster import MultiGpuSystem
    from repro.verify.faultcheck import verify_fault_timeline

    report = report or VerificationReport()
    curve = curve_by_name("BLS12-381")
    config = DistMsmConfig(window_size=10)
    engine = DistMsm(MultiGpuSystem(8), config)
    horizon = engine.estimate(curve, 1 << 18).time_ms
    # 20% in lands mid bucket-sum (the chunk is genuinely lost); 30% in
    # lands inside the serialized host transfers (a retry actually fires)
    plan = FaultPlan.of(
        GpuFailure(horizon * 0.2, 3),
        Straggler(5, 1.5),
        TransferError(0, horizon * 0.3),
    )
    recovered = engine.estimate(curve, 1 << 18, faults=plan)
    assert recovered.timeline is not None and recovered.fault_report is not None
    retry = RetryPolicy(config.max_retries, config.backoff_base_ms)
    checked = verify_timeline(
        recovered.timeline, subject="DistMSM recovered (chaos)", faults=plan
    )
    report.extend(checked.violations)
    fchecked = verify_fault_timeline(
        recovered.timeline, plan, retry, subject="DistMSM recovered (chaos)"
    )
    report.extend(fchecked.violations)
    report.add_check(
        f"chaos estimate recovered: {fchecked.failures} task failures, "
        f"{fchecked.attempts} retries, overhead "
        f"{recovered.fault_report.recovery_overhead_ms:.3f} ms"
    )

    toy = toy_curve()
    scalars, points = msm_instance(toy, 24, seed=23)
    func_cfg = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    func = DistMsm(MultiGpuSystem(4), func_cfg)
    expected = func.execute(scalars, points, toy).point
    killed = func.execute(
        scalars, points, toy, faults=FaultPlan.of(GpuFailure(0.0, 1))
    )
    assert killed.timeline is not None
    if killed.point != expected:
        from repro.verify.report import Violation

        report.extend([
            Violation(
                "faults",
                "functional recovery",
                "recovered MSM result differs from the fault-free result",
            )
        ])
    fchecked = verify_fault_timeline(
        killed.timeline,
        FaultPlan.of(GpuFailure(0.0, 1)),
        RetryPolicy(func_cfg.max_retries, func_cfg.backoff_base_ms),
        subject="functional recovery (gpu1 killed at t=0)",
    )
    report.extend(fchecked.violations)
    report.add_check("functional kill-recovery bit-exact and audit-clean")
    return report


def verify_byzantine(report: VerificationReport | None = None) -> VerificationReport:
    """Chaos-test the Byzantine machinery and audit the integrity trail.

    One analytic 8-GPU run under a seeded chaos plan with Byzantine
    workers (plus a death and a straggler) has its recovered timeline
    schedule-checked and its audit trail integrity-checked; one
    functional toy-curve run with a wrong-result cheater is checked
    bit-exact against the fault-free point, with the forgery caught,
    the cheater quarantined, and the consumed-slot map proven to carry
    only verified mass.
    """
    from repro.core.distmsm import DistMsm
    from repro.curves.sampling import msm_instance
    from repro.engine.faults import ByzantineWorker, FaultPlan
    from repro.faults.chaos import random_fault_plan
    from repro.gpu.cluster import MultiGpuSystem
    from repro.verify.integritycheck import verify_msm_integrity
    from repro.verify.report import Violation

    report = report or VerificationReport()
    curve = curve_by_name("BLS12-381")
    config = DistMsmConfig(window_size=10)
    engine = DistMsm(MultiGpuSystem(8), config)
    horizon = engine.estimate(curve, 1 << 18).time_ms
    plan = random_fault_plan(
        seed=17, num_gpus=8, horizon_ms=horizon, max_gpu_failures=1,
        byzantine_probability=0.4,
    )
    recovered = engine.estimate(curve, 1 << 18, faults=plan)
    assert recovered.timeline is not None
    checked = verify_timeline(
        recovered.timeline, subject="DistMSM recovered (byzantine chaos)",
        faults=plan,
    )
    report.extend(checked.violations)
    ichecked = verify_msm_integrity(
        recovered, subject="DistMSM recovered (byzantine chaos)"
    )
    report.extend(ichecked.violations)
    assert recovered.byzantine_report is not None
    report.add_check(
        f"byzantine chaos estimate audited: "
        f"{recovered.byzantine_report.summary()}"
    )

    toy = toy_curve()
    scalars, points = msm_instance(toy, 32, seed=41)
    func_cfg = DistMsmConfig(window_size=4, threads_per_block=32, points_per_thread=4)
    func = DistMsm(MultiGpuSystem(4), func_cfg)
    expected = func.execute(scalars, points, toy).point
    cheated = func.execute(
        scalars, points, toy,
        faults=FaultPlan.of(ByzantineWorker(1, mode="wrong-result", seed=5)),
    )
    byz = cheated.byzantine_report
    assert byz is not None
    if cheated.point != expected:
        report.extend([
            Violation(
                "integrity",
                "functional byzantine recovery",
                "MSM point under a cheating worker differs from the honest result",
            )
        ])
    if not byz.caught or 1 not in byz.quarantined_gpus:
        report.extend([
            Violation(
                "integrity",
                "functional byzantine recovery",
                "the forged chunk was not rejected and quarantined",
            )
        ])
    ichecked = verify_msm_integrity(cheated, subject="functional byzantine recovery")
    report.extend(ichecked.violations)
    report.add_check(
        f"functional cheater caught, bit-exact, integrity-clean "
        f"({ichecked.consumed} slots consumed, {ichecked.rejected} rejected, "
        f"{byz.soundness_bits}-bit soundness)"
    )
    return report


def verify_serving(report: VerificationReport | None = None) -> VerificationReport:
    """Serve a small seeded workload (with a mid-run GPU death) and audit it.

    The serving run's artifacts — request records, shed events, the shared
    engine timeline — are checked against both the generic schedule
    invariants and the serving-specific rules (no pre-arrival execution,
    shed requests never execute, conservation, honest completions).
    """
    from repro.engine.faults import FaultPlan, GpuFailure
    from repro.gpu.cluster import MultiGpuSystem
    from repro.serve import MsmProofServer, ServeConfig, poisson_trace
    from repro.verify.servecheck import verify_serving as check_serving

    report = report or VerificationReport()
    curve = curve_by_name("BLS12-381")
    config = DistMsmConfig(window_size=10)
    trace = poisson_trace(curve, count=12, rate_rps=300.0, seed=41, sizes=1 << 16)
    server = MsmProofServer(
        MultiGpuSystem(4),
        config,
        ServeConfig(gpu_groups=2, max_batch_size=4, max_queue=8),
    )
    served = server.serve(trace, faults=FaultPlan.of(GpuFailure(6.0, 1)))
    checked = verify_timeline(
        served.timeline, subject="serving timeline (gpu1 dies at 6 ms)",
        faults=served.faults,
    )
    report.extend(checked.violations)
    schecked = check_serving(
        served.requests,
        served.records,
        served.shed,
        served.timeline,
        subject="serving run (gpu1 dies at 6 ms)",
    )
    report.extend(schecked.violations)
    report.add_check(
        f"serving audit clean: {schecked.served} served, {schecked.shed} shed, "
        f"{served.metrics.retried_requests} retried, "
        f"p95 {served.metrics.p95_ms:.3f} ms"
    )
    return report


def verify_cluster(report: VerificationReport | None = None) -> VerificationReport:
    """Serve a 2-tenant workload on a 3-node cluster, kill a node, audit it.

    Node 1 of a 3-node, 2-GPU-per-node cluster loses both GPUs at the
    same event boundary mid-run; the heartbeat detects it, the swallowed
    requests fail over to the survivors, and the cluster auditor replays
    the distribution invariants — single-serve, conservation (cluster and
    per tenant), shed-never-executes fleet-wide, dispatch causality,
    at-most-once failover, and dead-node truncation.
    """
    from dataclasses import replace as dc_replace

    from repro.cluster import ProofCluster, TenantSpec
    from repro.engine.faults import FaultPlan, GpuFailure
    from repro.serve import poisson_trace
    from repro.verify.clustercheck import verify_cluster as check_cluster

    report = report or VerificationReport()
    curve = curve_by_name("BLS12-381")
    config = DistMsmConfig(window_size=10)
    workload = [
        dc_replace(r, tenant="acme" if r.req_id % 3 else "zkmart")
        for r in poisson_trace(
            curve, count=12, rate_rps=400.0, seed=3, sizes=1 << 16
        )
    ]
    cluster = ProofCluster(
        3,
        gpus_per_node=2,
        config=config,
        tenants=(TenantSpec("acme", weight=2.0), TenantSpec("zkmart")),
    )
    # global GPU ids 2 and 3 are node 1's: both die at the same boundary
    result = cluster.serve(
        workload, faults=FaultPlan.of(GpuFailure(8.0, 2), GpuFailure(8.0, 3))
    )
    checked = check_cluster(result, subject="3-node cluster (node 1 dies at 8 ms)")
    report.extend(checked.all_violations())
    report.add_check(
        f"cluster audit clean: {checked.served} served across "
        f"{len(result.node_results)} nodes, {len(result.deaths)} node death, "
        f"{len(result.failovers)} failovers, {checked.shed} shed"
    )
    return report


def verify_observability(report: VerificationReport | None = None) -> VerificationReport:
    """Trace a 2-GPU MSM and a small serve run, then audit the traces.

    The MSM trace is checked against its timeline with the phase-serial
    tiling rule (stage-envelope durations sum to the makespan within
    1e-9); the serve trace carries request life-cycle lanes on top of the
    engine tasks; both must round-trip through the Chrome export.
    """
    import json

    from repro.core.distmsm import DistMsm
    from repro.gpu.cluster import MultiGpuSystem
    from repro.observe import Tracer, to_chrome_trace
    from repro.serve import MsmProofServer, ServeConfig, poisson_trace
    from repro.verify.observecheck import verify_trace_against_timeline

    report = report or VerificationReport()
    curve = curve_by_name("BLS12-381")
    config = DistMsmConfig(window_size=10)

    trace = Tracer("msm-2gpu")
    est = DistMsm(MultiGpuSystem(2), config).estimate(curve, 1 << 16, trace=trace)
    assert est.timeline is not None
    checked = verify_trace_against_timeline(
        trace, est.timeline, subject="traced 2-GPU estimate", phase_serial=True
    )
    report.extend(checked.violations)
    report.add_check(
        f"2-GPU MSM trace faithful ({checked.spans} spans on "
        f"{checked.tracks} tracks, makespan {trace.makespan_ms():.3f} ms)"
    )

    serve_trace = Tracer("serve-smoke")
    workload = poisson_trace(curve, count=3, rate_rps=200.0, seed=7, sizes=1 << 14)
    server = MsmProofServer(
        MultiGpuSystem(2), config, ServeConfig(max_batch_size=2)
    )
    served = server.serve(workload, trace=serve_trace)
    checked = verify_trace_against_timeline(
        serve_trace, served.timeline, subject="traced serve run"
    )
    report.extend(checked.violations)
    report.add_check(
        f"serve trace faithful ({checked.spans} spans, "
        f"{served.metrics.served} requests on lanes)"
    )

    for label, t in (("msm", trace), ("serve", serve_trace)):
        exported = json.loads(t.to_chrome_json())
        if exported != to_chrome_trace(t):
            from repro.verify.report import Violation

            report.extend([
                Violation(
                    "observe",
                    f"{label} chrome export",
                    "JSON export does not round-trip to the trace dict",
                )
            ])
        x_events = sum(1 for e in exported["traceEvents"] if e["ph"] == "X")
        if x_events != len(t.spans):
            from repro.verify.report import Violation

            report.extend([
                Violation(
                    "observe",
                    f"{label} chrome export",
                    f"{x_events} duration events for {len(t.spans)} spans",
                )
            ])
    report.add_check("chrome exports round-trip with one duration event per span")
    return report


def verify_static_analysis(
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Run the whole-program static analyzer and fold in its findings.

    ``repro.analyze`` covers what the runtime checkers cannot: source
    hygiene (unseeded RNG, wall-clock reads, hash-ordered set iteration,
    unit-suffix mixing), the interval abstract interpretation of the
    kernel DAGs (Montgomery bounds for every registered curve plus an
    independent re-derivation of the §4.2 register peaks), and pre-flight
    model checking of the production task emissions.  Every active
    finding becomes a violation; the discharged obligations become
    checks, so ``-v`` shows the proof surface alongside the runtime one.
    """
    from repro.analyze import analyze_paths
    from repro.verify.staticcheck import check_findings

    report = report or VerificationReport()
    analysis = analyze_paths()
    checked = check_findings(analysis.sorted_findings(), "repro package")
    report.extend(checked.violations)
    for check in analysis.checks:
        report.add_check(f"analyze: {check}")
    report.add_check(
        f"static analysis over {analysis.files} files — "
        f"{len(analysis.findings)} active findings "
        f"({len(analysis.suppressed)} suppressed by baseline)"
    )
    return report


def verify_all() -> VerificationReport:
    """Verify every registered kernel and baseline configuration."""
    report = VerificationReport()
    verify_kernel_schedules(report)

    distmsm_curves = ("BN254", "BLS12-377", "BLS12-381", "MNT4753")
    verify_spill_plans(distmsm_curves, report)

    verify_scatter_config("DistMSM", DistMsmConfig(), report)
    for baseline in all_baselines():
        verify_scatter_config(baseline.name, baseline.config, report)
        if baseline.config.kernel_opts.explicit_spill:
            verify_spill_plans(baseline.curves, report)

    verify_bucket_sum(report)
    verify_timelines(report)
    verify_fault_recovery(report)
    verify_byzantine(report)
    verify_serving(report)
    verify_cluster(report)
    verify_observability(report)
    verify_static_analysis(report)
    return report
