"""The verification driver: every registered kernel and baseline, checked.

``verify_all`` is what CI runs (via ``python -m repro.verify``) and what
the test suite imports.  It re-derives nothing from the code under test
beyond the *artifacts* the producing layers hand it — DAGs, schedules,
claimed peaks, spill plans, memory traces — and cross-examines each with
the independent checkers in this package:

* every kernel DAG's written and optimal schedules (claims from
  :mod:`repro.kernels.scheduler`), including modmul budgets;
* every explicit-spill plan at the paper's budgets, for every supported
  curve's limb count against the GPU shared-memory limits;
* every scatter strategy named by a registered baseline (plus DistMSM's
  own hierarchical default), race-checked on a deterministic workload;
* the parallel bucket-sum's trace.
"""

from __future__ import annotations

from repro.baselines.registry import all_baselines
from repro.core.config import DistMsmConfig
from repro.curves.params import curve_by_name
from repro.curves.point import PACC_MODMULS, PADD_MODMULS, PDBL_MODMULS
from repro.curves.sampling import sample_points
from repro.curves.toy import toy_curve
from repro.kernels.dag import (
    OpDag,
    build_pacc_dag,
    build_padd_dag,
    build_pdbl_dag,
    entry_live,
)
from repro.kernels.padd_kernel import SPILL_REDUCTION
from repro.kernels.scheduler import find_optimal_schedule, written_order_peak
from repro.kernels.spill import plan_spills
from repro.verify.races import (
    detect_races,
    trace_bucket_sum,
    trace_hierarchical_scatter,
    trace_naive_scatter,
)
from repro.verify.report import VerificationReport
from repro.verify.schedule import verify_schedule
from repro.verify.spillcheck import verify_spill_plan

#: kernel name -> (DAG builder, modular-multiplication budget)
KERNEL_BUDGETS = {
    "PADD": (build_padd_dag, PADD_MODMULS),
    "PACC": (build_pacc_dag, PACC_MODMULS),
    "PDBL": (build_pdbl_dag, PDBL_MODMULS),
}

#: the deterministic scatter workload the race checks replay
_SCATTER_POINTS = 192
_SCATTER_BUCKETS = 8


def _scatter_digits() -> list[int]:
    """A fixed pseudo-random digit stream covering every bucket."""
    state, digits = 0x9E3779B9, []
    for _ in range(_SCATTER_POINTS):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        digits.append(state % _SCATTER_BUCKETS)
    return digits


def verify_kernel_schedules(report: VerificationReport | None = None) -> VerificationReport:
    """Check written and optimal schedules of every kernel DAG."""
    report = report or VerificationReport()
    for name, (builder, budget) in KERNEL_BUDGETS.items():
        dag: OpDag = builder()
        written = verify_schedule(
            dag,
            claimed_peak=written_order_peak(dag),
            max_modmuls=budget,
            subject=f"{name} (written order)",
        )
        report.extend(written.violations)
        report.add_check(
            f"{name} written order: peak {written.peak}, "
            f"{written.modmuls} modmuls"
        )
        optimal = find_optimal_schedule(dag)
        checked = verify_schedule(
            dag,
            order=list(optimal.order),
            claimed_peak=optimal.peak,
            max_modmuls=budget,
            subject=f"{name} (optimal order)",
        )
        report.extend(checked.violations)
        report.add_check(
            f"{name} optimal order: peak {checked.peak} "
            f"(scheduler claims {optimal.peak})"
        )
    return report


def verify_spill_plans(
    curves: tuple[str, ...],
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Replay the explicit-spill plans at the paper's budgets per curve."""
    report = report or VerificationReport()
    for name, (builder, _) in KERNEL_BUDGETS.items():
        dag = builder()
        optimal = find_optimal_schedule(dag)
        budget = max(optimal.peak - SPILL_REDUCTION, entry_live(dag))
        if budget >= optimal.peak:
            report.add_check(f"{name}: no spilling possible below entry set")
            continue
        order = list(optimal.order)
        plan = plan_spills(dag, order, budget)
        for curve_name in curves:
            curve = curve_by_name(curve_name)
            checked = verify_spill_plan(
                dag,
                order,
                plan,
                num_limbs=curve.num_limbs,
                subject=f"{name} spill@{budget} on {curve_name}",
            )
            report.extend(checked.violations)
            report.add_check(
                f"{name} spill@{budget} on {curve_name}: "
                f"{checked.transfers} transfers, "
                f"{checked.peak_shm_bigints} in shared memory"
            )
    return report


def verify_scatter_config(
    subject: str,
    config: DistMsmConfig,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Race-check the scatter strategy one configuration actually runs."""
    report = report or VerificationReport()
    digits = _scatter_digits()
    if config.scatter == "naive":
        trace = trace_naive_scatter(digits, _SCATTER_BUCKETS)
    else:
        # keep the traced workload multi-block: small blocks, few points each
        small = DistMsmConfig(
            scatter="hierarchical", threads_per_block=32, points_per_thread=2
        )
        trace = trace_hierarchical_scatter(digits, _SCATTER_BUCKETS, small)
    checked = detect_races(trace, subject=f"{subject} ({config.scatter} scatter)")
    report.extend(checked.violations)
    report.add_check(
        f"{subject}: {config.scatter} scatter race-free "
        f"({checked.events} accesses, {checked.locations} locations)"
    )
    return report


def verify_bucket_sum(report: VerificationReport | None = None) -> VerificationReport:
    """Race-check the parallel bucket-sum with its tree reduction."""
    report = report or VerificationReport()
    curve = toy_curve()
    points = sample_points(curve, 16, seed=11)
    buckets = [[0, 1, 2, 3, 4, 5], [6, 7], [], [8, 9, 10, 11, 12, 13, 14, 15]]
    for n_threads in (2, 4, 8):
        trace = trace_bucket_sum(buckets, points, curve, n_threads)
        checked = detect_races(trace, subject=f"bucket-sum x{n_threads}")
        report.extend(checked.violations)
        report.add_check(
            f"bucket-sum with {n_threads} threads/bucket race-free "
            f"({checked.events} accesses)"
        )
    return report


def verify_all() -> VerificationReport:
    """Verify every registered kernel and baseline configuration."""
    report = VerificationReport()
    verify_kernel_schedules(report)

    distmsm_curves = ("BN254", "BLS12-377", "BLS12-381", "MNT4753")
    verify_spill_plans(distmsm_curves, report)

    verify_scatter_config("DistMSM", DistMsmConfig(), report)
    for baseline in all_baselines():
        verify_scatter_config(baseline.name, baseline.config, report)
        if baseline.config.kernel_opts.explicit_spill:
            verify_spill_plans(baseline.curves, report)

    verify_bucket_sum(report)
    return report
