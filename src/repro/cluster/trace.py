"""Replayable production traces: warm-up / diurnal / burst segments.

A :class:`ClusterTrace` is a versioned, JSON-serialisable description of
an offered workload — an ordered list of :class:`TraceSegment` entries,
each a time window with an arrival process, a size mix, and a per-tenant
probability mix — plus the one seed every random draw derives from.
``generate_requests`` expands it deterministically into the concrete
:class:`~repro.serve.queue.ProofRequest` list (same trace + same seed =
byte-identical workload), and :func:`replay` drives a
:class:`~repro.cluster.router.ProofCluster` with it.

Three segment kinds, built on the existing seeded generators:

* ``warmup`` — steady Poisson arrivals at ``rate_rps``
  (:func:`repro.serve.queue.poisson_trace`);
* ``diurnal`` — the segment is cut into ``slices`` windows whose Poisson
  rate follows a raised cosine between ``rate_rps`` (peak) and
  ``trough_fraction * rate_rps`` (trough), ``periods`` cycles over the
  segment — the compressed day/night curve of a proving service;
* ``burst`` — synchronised request bursts every ``gap_ms``
  (:func:`repro.serve.queue.bursty_trace`), the adversarial case the
  router's shedding and the autoscaler's scale-up react to.

The JSON format is ``repro.cluster.trace/v1``::

    {"format": "repro.cluster.trace/v1", "name": "...", "curve": "BLS12-381",
     "seed": 7, "segments": [{"name": "day", "kind": "diurnal",
     "duration_ms": 400.0, "rate_rps": 300.0, "sizes": [65536],
     "tenant_mix": {"acme": 2.0, "zkmart": 1.0}, "deadline_ms": null, ...}]}

Unknown ``format`` strings are rejected loudly — traces are artifacts
that outlive code versions.
"""

from __future__ import annotations

import json
import math
import pathlib
import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.curves.params import CurveParams, curve_by_name
from repro.serve.queue import ProofRequest, bursty_trace, poisson_trace

if TYPE_CHECKING:
    from repro.cluster.router import ClusterResult, ProofCluster
    from repro.engine.faults import FaultPlan
    from repro.observe.tracer import Tracer

TRACE_FORMAT = "repro.cluster.trace/v1"
SEGMENT_KINDS = ("warmup", "diurnal", "burst")


@dataclass(frozen=True)
class TraceSegment:
    """One time window of the offered workload."""

    name: str
    kind: str
    duration_ms: float
    #: warmup/diurnal: Poisson rate (diurnal: the *peak* rate)
    rate_rps: float = 100.0
    sizes: tuple[int, ...] = (1 << 16,)
    #: tenant -> mix weight; draws are proportional, weights need not sum to 1
    tenant_mix: tuple[tuple[str, float], ...] = (("default", 1.0),)
    #: relative latency SLO stamped on every request of this segment
    deadline_ms: float | None = None
    # diurnal shape
    trough_fraction: float = 0.25
    periods: float = 1.0
    slices: int = 8
    # burst shape
    burst_size: int = 8
    gap_ms: float = 50.0
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SEGMENT_KINDS:
            raise ValueError(
                f"segment {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {SEGMENT_KINDS}"
            )
        if self.duration_ms <= 0:
            raise ValueError(
                f"segment {self.name!r}: duration_ms must be > 0, "
                f"got {self.duration_ms}"
            )
        if self.rate_rps <= 0:
            raise ValueError(
                f"segment {self.name!r}: rate_rps must be > 0, got {self.rate_rps}"
            )
        if not self.sizes or any(n <= 0 for n in self.sizes):
            raise ValueError(f"segment {self.name!r}: sizes must be positive")
        if not self.tenant_mix or any(w <= 0 for _, w in self.tenant_mix):
            raise ValueError(
                f"segment {self.name!r}: tenant_mix weights must be positive"
            )
        if not 0.0 < self.trough_fraction <= 1.0:
            raise ValueError(
                f"segment {self.name!r}: trough_fraction must be in (0, 1], "
                f"got {self.trough_fraction}"
            )
        if self.periods <= 0 or self.slices < 1:
            raise ValueError(
                f"segment {self.name!r}: periods must be > 0 and slices >= 1"
            )
        if self.burst_size < 1 or self.gap_ms <= 0 or self.jitter_ms < 0:
            raise ValueError(
                f"segment {self.name!r}: burst_size >= 1, gap_ms > 0, "
                f"jitter_ms >= 0 required"
            )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "duration_ms": self.duration_ms,
            "rate_rps": self.rate_rps,
            "sizes": list(self.sizes),
            "tenant_mix": {t: w for t, w in self.tenant_mix},
            "deadline_ms": self.deadline_ms,
            "trough_fraction": self.trough_fraction,
            "periods": self.periods,
            "slices": self.slices,
            "burst_size": self.burst_size,
            "gap_ms": self.gap_ms,
            "jitter_ms": self.jitter_ms,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "TraceSegment":
        mix = raw.get("tenant_mix", {"default": 1.0})
        return cls(
            name=raw["name"],
            kind=raw["kind"],
            duration_ms=float(raw["duration_ms"]),
            rate_rps=float(raw.get("rate_rps", 100.0)),
            sizes=tuple(int(n) for n in raw.get("sizes", [1 << 16])),
            tenant_mix=tuple(sorted((str(t), float(w)) for t, w in mix.items())),
            deadline_ms=(
                None if raw.get("deadline_ms") is None else float(raw["deadline_ms"])
            ),
            trough_fraction=float(raw.get("trough_fraction", 0.25)),
            periods=float(raw.get("periods", 1.0)),
            slices=int(raw.get("slices", 8)),
            burst_size=int(raw.get("burst_size", 8)),
            gap_ms=float(raw.get("gap_ms", 50.0)),
            jitter_ms=float(raw.get("jitter_ms", 0.0)),
        )


@dataclass(frozen=True)
class ClusterTrace:
    """A whole replayable workload: named, seeded, versioned."""

    name: str
    curve: str
    seed: int
    segments: tuple[TraceSegment, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError(f"trace {self.name!r} has no segments")
        curve_by_name(self.curve)  # raises on unknown curves

    @property
    def duration_ms(self) -> float:
        return sum(s.duration_ms for s in self.segments)

    # -- JSON round trip -----------------------------------------------------

    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "format": TRACE_FORMAT,
            "name": self.name,
            "curve": self.curve,
            "seed": self.seed,
            "segments": [s.as_dict() for s in self.segments],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterTrace":
        raw = json.loads(text)
        fmt = raw.get("format")
        if fmt != TRACE_FORMAT:
            raise ValueError(
                f"unsupported trace format {fmt!r} (expected {TRACE_FORMAT!r})"
            )
        return cls(
            name=raw["name"],
            curve=raw["curve"],
            seed=int(raw["seed"]),
            segments=tuple(TraceSegment.from_dict(s) for s in raw["segments"]),
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "ClusterTrace":
        return cls.from_json(pathlib.Path(path).read_text())


# -- deterministic expansion ------------------------------------------------


def _segment_subseed(seed: int, segment_index: int, slice_index: int = 0) -> int:
    """A stable per-(segment, slice) seed derived from the trace seed."""
    return (seed * 1_000_003 + segment_index * 8_191 + slice_index * 131) % (2**31)


def _raw_arrivals(
    segment: TraceSegment, curve: CurveParams, seed: int, segment_index: int
) -> list[ProofRequest]:
    """Segment-relative arrivals in ``[0, duration_ms)``, before retagging."""
    out: list[ProofRequest] = []
    if segment.kind in ("warmup", "diurnal"):
        if segment.kind == "warmup":
            windows = [(0.0, segment.duration_ms, segment.rate_rps)]
        else:
            width = segment.duration_ms / segment.slices
            windows = []
            for i in range(segment.slices):
                # raised cosine between the peak rate and the trough rate,
                # sampled at each slice's midpoint
                phase = 2.0 * math.pi * segment.periods * (i + 0.5) / segment.slices
                shape = 0.5 + 0.5 * math.cos(phase)
                rate = segment.rate_rps * (
                    segment.trough_fraction + (1.0 - segment.trough_fraction) * shape
                )
                windows.append((i * width, width, rate))
        for slice_index, (start, width, rate) in enumerate(windows):
            # oversample the open-ended Poisson generator, keep the window
            cap = max(4, int(rate * width / 1e3 * 3.0) + 8)
            draws = poisson_trace(
                curve,
                count=cap,
                rate_rps=rate,
                seed=_segment_subseed(seed, segment_index, slice_index),
                sizes=segment.sizes,
            )
            kept = [r for r in draws if r.arrival_ms < width]
            if len(kept) == len(draws):  # pragma: no cover - cap is generous
                raise ValueError(
                    f"segment {segment.name!r}: oversampling cap {cap} too "
                    f"small for rate {rate:.1f} rps over {width:.1f} ms"
                )
            out.extend(
                replace(r, arrival_ms=start + r.arrival_ms) for r in kept
            )
    else:  # burst
        bursts = max(1, int(segment.duration_ms // segment.gap_ms))
        draws = bursty_trace(
            curve,
            bursts=bursts,
            burst_size=segment.burst_size,
            gap_ms=segment.gap_ms,
            seed=_segment_subseed(seed, segment_index),
            sizes=segment.sizes,
            jitter_ms=segment.jitter_ms,
        )
        out.extend(r for r in draws if r.arrival_ms < segment.duration_ms)
    return out


def generate_requests(trace: ClusterTrace) -> list[ProofRequest]:
    """Expand a trace into its concrete, deterministic request list.

    Requests are globally re-identified in arrival order, stamped with
    their segment's relative deadline, and assigned tenants by seeded
    draws from each segment's mix.
    """
    curve = curve_by_name(trace.curve)
    tenant_rng = random.Random(trace.seed ^ 0x7E9A97)
    staged: list[tuple[float, int, int, ProofRequest, TraceSegment]] = []
    offset = 0.0
    for segment_index, segment in enumerate(trace.segments):
        raw = _raw_arrivals(segment, curve, trace.seed, segment_index)
        for order, request in enumerate(
            sorted(raw, key=lambda r: (r.arrival_ms, r.req_id))
        ):
            at = offset + request.arrival_ms
            staged.append((at, segment_index, order, request, segment))
        offset += segment.duration_ms

    staged.sort(key=lambda item: (item[0], item[1], item[2]))
    out: list[ProofRequest] = []
    for req_id, (at, segment_index, _, request, segment) in enumerate(staged):
        names = [t for t, _ in segment.tenant_mix]
        weights = [w for _, w in segment.tenant_mix]
        tenant = tenant_rng.choices(names, weights=weights, k=1)[0]
        out.append(
            ProofRequest(
                req_id=req_id,
                curve=request.curve,
                n=request.n,
                arrival_ms=at,
                deadline_ms=(
                    None
                    if segment.deadline_ms is None
                    else at + segment.deadline_ms
                ),
                label=f"{segment.name}.{req_id}",
                tenant=tenant,
            )
        )
    return out


def replay(
    cluster: "ProofCluster",
    trace: ClusterTrace,
    faults: "FaultPlan | None" = None,
    observe: "Tracer | None" = None,
) -> "ClusterResult":
    """Replay a trace on a cluster: expand deterministically, then serve."""
    return cluster.serve(generate_requests(trace), faults=faults, trace=observe)


def diurnal_burst_trace(
    name: str = "diurnal-burst",
    curve: str = "BLS12-381",
    seed: int = 7,
    rate_rps: float = 250.0,
    sizes: tuple[int, ...] = (1 << 16,),
    tenant_mix: tuple[tuple[str, float], ...] = (("acme", 2.0), ("zkmart", 1.0)),
    deadline_ms: float | None = None,
    scale: float = 1.0,
) -> ClusterTrace:
    """The canonical study workload: warm-up, a diurnal day, a burst storm.

    ``scale`` stretches segment durations (and burst counts with them) so
    smoke runs and full runs share one shape.
    """
    return ClusterTrace(
        name=name,
        curve=curve,
        seed=seed,
        segments=(
            TraceSegment(
                name="warmup",
                kind="warmup",
                duration_ms=40.0 * scale,
                rate_rps=rate_rps * 0.5,
                sizes=sizes,
                tenant_mix=tenant_mix,
                deadline_ms=deadline_ms,
            ),
            TraceSegment(
                name="day",
                kind="diurnal",
                duration_ms=160.0 * scale,
                rate_rps=rate_rps,
                sizes=sizes,
                tenant_mix=tenant_mix,
                deadline_ms=deadline_ms,
                trough_fraction=0.3,
                periods=1.0,
                slices=8,
            ),
            TraceSegment(
                name="storm",
                kind="burst",
                duration_ms=60.0 * scale,
                rate_rps=rate_rps,
                sizes=sizes,
                tenant_mix=tenant_mix,
                deadline_ms=deadline_ms,
                burst_size=6,
                gap_ms=15.0 * scale,
                jitter_ms=1.0,
            ),
        ),
    )
