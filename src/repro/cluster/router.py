"""The cluster front-end: tenant queues, routing, SLOs, autoscale, failover.

:class:`ProofCluster` shards one proof-serving workload across N
:class:`~repro.cluster.node.ProofNode` boxes.  The control plane is an
event-driven router loop over the ONE simulated cluster clock:

* **per-tenant queues with weighted fairness** — every arriving request
  enters its tenant's FIFO and receives a start-time-fair-queueing finish
  tag (``max(vt[tenant], vclock) + 1/weight``); dequeue picks the
  smallest ``(priority class, tag, tenant name)`` over the queue heads,
  so a weight-2 tenant drains twice as fast as a weight-1 tenant under
  contention, strict priority classes preempt tags, and an idle tenant
  banks no credit (its next tag restarts at the virtual clock);
* **per-tenant SLO budgets** — a :class:`TenantSpec` caps the tenant's
  queue (overflow is shed as ``queue-full`` *at the router*, never
  occupying cluster capacity) and can stamp a relative deadline class on
  requests that arrive without one; a request whose deadline has already
  passed at dispatch time is shed as ``deadline-infeasible`` instead of
  being routed — the shed ledger is the SLO-budget accounting;
* **pluggable routing** — ``least-loaded`` (smallest estimated backlog),
  ``p2c`` (seeded power-of-two-choices), ``tenant-affinity`` (stable
  CRC32 hash of the tenant name, walking forward over available nodes);
  all three compare *control-plane estimates* from the router's own plan
  cache, never ground truth from node engines;
* **autoscaling** — an optional :class:`~repro.cluster.autoscale.Autoscaler`
  observes queue depth and estimated p99 at a fixed control interval and
  activates standby nodes (after ``provision_ms``) or drains active ones;
* **failover** — the global fault plan is projected per node by
  :func:`~repro.cluster.failover.split_fault_plan`; a dead node keeps
  *receiving* dispatches until its heartbeat detection tick (those are
  lost), then the lost work is re-dispatched once to surviving nodes and
  the death is logged as :class:`FailoverEvent` records the auditors
  (:mod:`repro.verify.clustercheck`) replay.

Routing is control-plane only; the data plane runs afterwards — each
node serves exactly what was bound to it, under its local fault plan,
and the per-node :class:`~repro.serve.server.ServeResult` timelines are
stitched into cluster-level :class:`~repro.cluster.metrics.ClusterRecord`
entries and one :class:`~repro.cluster.metrics.ClusterMetrics` report.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.cluster.autoscale import (
    ACTION_DOWN,
    ACTION_UP,
    AutoscaleConfig,
    Autoscaler,
    ScaleDecision,
)
from repro.cluster.failover import (
    NodeDeath,
    serve_dying_node,
    split_fault_plan,
)
from repro.cluster.metrics import ClusterMetrics, ClusterRecord, tenant_name
from repro.cluster.node import DEFAULT_NODE_SERVE_CONFIG, ProofNode
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.engine.faults import FaultPlan
from repro.engine.timeline import TIME_EPS
from repro.faults.recovery import FaultRecoveryError
from repro.gpu.cluster import MultiGpuSystem
from repro.observe.stats import percentile
from repro.serve.admission import SHED_INFEASIBLE, SHED_QUEUE_FULL, ShedEvent
from repro.serve.plancache import PlanCache
from repro.serve.queue import ProofRequest
from repro.serve.server import ServeConfig, ServeResult

if TYPE_CHECKING:
    from repro.observe.tracer import Tracer

ROUTING_POLICIES = ("least-loaded", "p2c", "tenant-affinity")

#: node life-cycle states the router's capacity loop walks through
NODE_ACTIVE = "active"
NODE_STANDBY = "standby"
NODE_PENDING = "pending"  # activated, paying provision_ms
NODE_DRAINING = "draining"  # finishes booked work, receives nothing new


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's SLO contract with the cluster.

    ``weight`` is the fair-share ratio under contention; ``priority`` is
    a strict class (LOWER value dequeues first — use sparingly, a
    starved low class is only protected by the shed ledger);
    ``deadline_class_ms`` stamps a relative deadline on requests that
    arrive without one; ``max_queue`` caps the tenant's router queue.
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    deadline_class_ms: float | None = None
    max_queue: int = 64

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )
        if self.deadline_class_ms is not None and self.deadline_class_ms <= 0:
            raise ValueError(
                f"tenant {self.name!r}: deadline_class_ms must be > 0, "
                f"got {self.deadline_class_ms}"
            )
        if self.max_queue < 1:
            raise ValueError(
                f"tenant {self.name!r}: max_queue must be >= 1, got {self.max_queue}"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Control-plane knobs of the cluster router."""

    routing: str = "least-loaded"
    max_inflight_per_node: int = 8
    heartbeat_ms: float = 5.0
    p2c_seed: int = 0
    autoscale: AutoscaleConfig | None = None

    def __post_init__(self) -> None:
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; "
                f"choose from {ROUTING_POLICIES}"
            )
        if self.max_inflight_per_node < 1:
            raise ValueError(
                f"max_inflight_per_node must be >= 1, "
                f"got {self.max_inflight_per_node}"
            )
        if self.heartbeat_ms <= 0:
            raise ValueError(f"heartbeat_ms must be > 0, got {self.heartbeat_ms}")


@dataclass(frozen=True)
class Dispatch:
    """One routing decision: which request went to which node, when."""

    req_id: int
    node_id: int
    at_ms: float
    tenant: str
    est_service_ms: float
    failover: bool = False


@dataclass(frozen=True)
class FailoverEvent:
    """One request's re-routing after a node death."""

    req_id: int
    from_node: int
    to_node: int
    death_ms: float
    detect_ms: float
    redispatch_ms: float

    def __post_init__(self) -> None:
        if self.from_node == self.to_node:
            raise ValueError(
                f"req {self.req_id}: failover cannot target the dead node "
                f"{self.from_node}"
            )
        if self.redispatch_ms < self.detect_ms - TIME_EPS:
            raise ValueError(
                f"req {self.req_id}: re-dispatched at {self.redispatch_ms} "
                f"before detection {self.detect_ms}"
            )


@dataclass
class ClusterResult:
    """Everything one cluster serving run produced, for metrics and audit."""

    requests: list[ProofRequest]
    dispatches: list[Dispatch]
    shed: list[ShedEvent]
    #: node id -> that node's full audited serving result
    node_results: dict[int, ServeResult]
    deaths: list[NodeDeath]
    failovers: list[FailoverEvent]
    scale_decisions: list[ScaleDecision]
    records: list[ClusterRecord]
    metrics: ClusterMetrics
    faults: FaultPlan | None = None
    #: node id -> the local fault plan that node served under
    local_faults: dict = field(default_factory=dict)


@dataclass
class _QueueEntry:
    """One queued request with its committed fair-queueing tag."""

    request: ProofRequest
    priority: int
    tag: float


class ProofCluster:
    """A multi-node sharded proof-serving cluster."""

    def __init__(
        self,
        num_nodes: int,
        gpus_per_node: int = 4,
        config: DistMsmConfig | None = None,
        serve_config: ServeConfig | None = None,
        cluster_config: ClusterConfig | None = None,
        tenants: tuple[TenantSpec, ...] = (),
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {gpus_per_node}")
        self.config = config or DistMsmConfig()
        self.serve_config = serve_config or DEFAULT_NODE_SERVE_CONFIG
        self.cluster_config = cluster_config or ClusterConfig()
        self.nodes = [
            ProofNode(k, gpus_per_node, self.config, self.serve_config)
            for k in range(num_nodes)
        ]
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant specs: {sorted(names)}")
        self._tenants = {t.name: t for t in tenants}
        # the router's OWN plan cache: routing estimates are control-plane
        # work and must not warm (or be warmed by) any node's data path
        self.router_cache = PlanCache()
        self._est_engines: dict[int, DistMsm] = {}
        self._rng = random.Random(self.cluster_config.p2c_seed)
        self._autoscaler: Autoscaler | None = None
        self._served = False

    # -- control-plane helpers -----------------------------------------------

    def tenant_spec(self, tenant: str) -> TenantSpec:
        """The tenant's contract (an implicit default for unknown names)."""
        name = tenant_name(tenant)
        spec = self._tenants.get(name)
        return spec if spec is not None else TenantSpec(name)

    def _estimate_ms(self, request: ProofRequest, gpus: int) -> float:
        engine = self._est_engines.get(gpus)
        if engine is None:
            engine = DistMsm(MultiGpuSystem(gpus, gpus_per_node=gpus), self.config)
            self._est_engines[gpus] = engine
        plan, _ = self.router_cache.lookup(engine, request.curve, request.n)
        return plan.service_ms

    def _pick_node(self, request: ProofRequest, avail: list[ProofNode], now_ms: float) -> ProofNode:
        policy = self.cluster_config.routing
        if policy == "least-loaded":
            return min(
                avail,
                key=lambda n: (n.backlog_ms(now_ms), n.inflight(now_ms), n.node_id),
            )
        if policy == "p2c":
            picks = avail if len(avail) <= 2 else self._rng.sample(avail, 2)
            return min(picks, key=lambda n: (n.backlog_ms(now_ms), n.node_id))
        # tenant-affinity: a stable hash (NOT builtin hash(), which is
        # randomized per process) anchors each tenant to a home node; the
        # walk over available nodes keeps affinity best-effort under
        # failures and backpressure
        start = zlib.crc32(tenant_name(request.tenant).encode()) % len(self.nodes)
        order = [(start + k) % len(self.nodes) for k in range(len(self.nodes))]
        avail_ids = {n.node_id for n in avail}
        for node_id in order:
            if node_id in avail_ids:
                return self.nodes[node_id]
        raise FaultRecoveryError("tenant-affinity walk found no available node")

    # -- the serve entry point -----------------------------------------------

    def serve(
        self,
        requests: list[ProofRequest],
        faults: FaultPlan | None = None,
        trace: "Tracer | None" = None,
    ) -> ClusterResult:
        """Route, serve, and audit one workload across the cluster."""
        if self._served:
            raise RuntimeError(
                "ProofCluster.serve is one-shot (node dispatch and death "
                "state are consumed); build a fresh cluster per run"
            )
        self._served = True
        cfg = self.cluster_config
        workload = sorted(requests, key=lambda r: (r.arrival_ms, r.req_id))
        ids = [r.req_id for r in workload]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate req_ids in cluster workload")

        # stamp tenant deadline classes on requests that arrive without one
        stamped: list[ProofRequest] = []
        for request in workload:
            spec = self.tenant_spec(request.tenant)
            if request.deadline_ms is None and spec.deadline_class_ms is not None:
                request = replace(
                    request,
                    deadline_ms=request.arrival_ms + spec.deadline_class_ms,
                )
            stamped.append(request)
        request_map = {r.req_id: r for r in stamped}

        # project the global fault plan onto nodes; stamp deaths
        node_gpu_counts = [n.system.num_gpus for n in self.nodes]
        local_plans, deaths = split_fault_plan(
            faults, node_gpu_counts, cfg.heartbeat_ms
        )
        if len(deaths) == len(self.nodes):
            raise FaultRecoveryError(
                "fault plan kills every node; no survivor to fail over to"
            )
        for death in deaths:
            node = self.nodes[death.node_id]
            node.death_ms = death.at_ms
            node.detect_ms = death.detect_ms
        self._local_plans = {
            k: plan for k, plan in enumerate(local_plans) if plan is not None
        }
        self._dying_results = {}

        shed, dispatches, failovers = self._route(stamped, deaths)
        node_results, more_shed = self._execute(
            request_map, local_plans, deaths
        )
        shed.extend(more_shed)

        records = self._records(request_map, node_results, dispatches)
        metrics = self._metrics(records, shed, node_results)
        result = ClusterResult(
            requests=stamped,
            dispatches=dispatches,
            shed=shed,
            node_results=node_results,
            deaths=deaths,
            failovers=failovers,
            scale_decisions=list(self._autoscaler.decisions)
            if self._autoscaler
            else [],
            records=records,
            metrics=metrics,
            faults=faults,
            local_faults={
                k: plan for k, plan in enumerate(local_plans) if plan is not None
            },
        )
        if trace is not None:
            from repro.cluster.record import record_cluster

            record_cluster(trace, result)
        return result

    # -- phase 1: the router event loop --------------------------------------

    def _route(
        self, stamped: list[ProofRequest], deaths: list[NodeDeath]
    ) -> tuple[list[ShedEvent], list[Dispatch], list[FailoverEvent]]:
        cfg = self.cluster_config
        auto_cfg = cfg.autoscale
        self._autoscaler = Autoscaler(auto_cfg) if auto_cfg else None
        if auto_cfg:
            self._state = [
                NODE_ACTIVE if k < auto_cfg.min_nodes else NODE_STANDBY
                for k in range(len(self.nodes))
            ]
        else:
            self._state = [NODE_ACTIVE] * len(self.nodes)
        self._ready_ms = [0.0] * len(self.nodes)
        self._ever_active = {
            k for k, s in enumerate(self._state) if s == NODE_ACTIVE
        }

        queues: dict[str, deque[_QueueEntry]] = {}
        vt: dict[str, float] = {}
        vclock = 0.0
        shed: list[ShedEvent] = []
        dispatches: list[Dispatch] = []
        # (est_complete_ms, est_latency_ms) samples for the autoscaler's p99
        samples: list[tuple[float, float]] = []

        def admit(request: ProofRequest) -> None:
            nonlocal vclock
            spec = self.tenant_spec(request.tenant)
            queue = queues.setdefault(spec.name, deque())
            if len(queue) >= spec.max_queue:
                shed.append(
                    ShedEvent(request, request.arrival_ms, SHED_QUEUE_FULL)
                )
                return
            tag = max(vt.get(spec.name, 0.0), vclock) + 1.0 / spec.weight
            vt[spec.name] = tag
            queue.append(_QueueEntry(request, spec.priority, tag))

        def queued_total() -> int:
            return sum(len(q) for q in queues.values())

        def pick_tenant() -> str:
            return min(
                (t for t, q in sorted(queues.items()) if q),
                key=lambda t: (queues[t][0].priority, queues[t][0].tag, t),
            )

        def available(now_ms: float) -> list[ProofNode]:
            return [
                node
                for k, node in enumerate(self.nodes)
                if self._state[k] == NODE_ACTIVE
                and node.reported_alive(now_ms)
                and node.inflight(now_ms) < cfg.max_inflight_per_node
            ]

        def active_count(now_ms: float) -> int:
            return sum(
                1
                for k, node in enumerate(self.nodes)
                if self._state[k] == NODE_ACTIVE and node.reported_alive(now_ms)
            )

        def autoscale_tick(now_ms: float) -> None:
            assert self._autoscaler and auto_cfg
            active = active_count(now_ms)
            window = [
                lat
                for done, lat in samples
                if now_ms - auto_cfg.p99_window_ms <= done <= now_ms
            ]
            p99 = percentile(window, 99.0)
            target = self._autoscaler.tick(now_ms, queued_total(), active, p99)
            if target > active:
                want = target - active
                for k, state in enumerate(self._state):
                    if want == 0:
                        break
                    if not self.nodes[k].reported_alive(now_ms):
                        continue
                    if state == NODE_DRAINING:
                        # a draining node is still warm: reinstate instantly
                        self._state[k] = NODE_ACTIVE
                        want -= 1
                    elif state == NODE_STANDBY:
                        self._state[k] = NODE_PENDING
                        self._ready_ms[k] = now_ms + auto_cfg.provision_ms
                        want -= 1
            elif target < active:
                want = active - target
                for k in range(len(self.nodes) - 1, -1, -1):
                    if want == 0:
                        break
                    if self._state[k] == NODE_ACTIVE and self.nodes[
                        k
                    ].reported_alive(now_ms):
                        self._state[k] = NODE_DRAINING
                        want -= 1

        arrivals = deque(stamped)
        clock_ms = 0.0
        tick_index = 0
        while arrivals or queued_total():
            # 0. promote provisioned nodes whose warm-up completed
            for k, state in enumerate(self._state):
                if state == NODE_PENDING and self._ready_ms[k] <= clock_ms + TIME_EPS:
                    self._state[k] = NODE_ACTIVE
                    self._ever_active.add(k)

            # 1. autoscale control ticks due by now
            if self._autoscaler and auto_cfg:
                while tick_index * auto_cfg.control_interval_ms <= clock_ms + TIME_EPS:
                    autoscale_tick(tick_index * auto_cfg.control_interval_ms)
                    tick_index += 1

            # 2. pull due arrivals into their tenant queues
            while arrivals and arrivals[0].arrival_ms <= clock_ms + TIME_EPS:
                admit(arrivals.popleft())

            # 3. dispatch while both work and capacity exist
            while queued_total():
                avail = available(clock_ms)
                if not avail:
                    break
                tenant = pick_tenant()
                entry = queues[tenant].popleft()
                vclock = max(vclock, entry.tag)
                request = entry.request
                if (
                    request.deadline_ms is not None
                    and clock_ms > request.deadline_ms + TIME_EPS
                ):
                    # the SLO budget is already blown: shedding here is
                    # strictly better than burning a node on a dead request
                    shed.append(ShedEvent(request, clock_ms, SHED_INFEASIBLE))
                    continue
                node = self._pick_node(request, avail, clock_ms)
                est = self._estimate_ms(request, node.system.num_gpus)
                node.assign(request, clock_ms, est)
                dispatches.append(
                    Dispatch(
                        req_id=request.req_id,
                        node_id=node.node_id,
                        at_ms=clock_ms,
                        tenant=tenant_name(request.tenant),
                        est_service_ms=est,
                    )
                )
                samples.append(
                    (node.est_free_ms, node.est_free_ms - request.arrival_ms)
                )

            if not arrivals and not queued_total():
                break

            # 4. advance the clock to the next event
            candidates: list[float] = []
            if arrivals:
                candidates.append(arrivals[0].arrival_ms)
            if queued_total():
                for k, node in enumerate(self.nodes):
                    if self._state[k] != NODE_ACTIVE:
                        continue
                    if not node.reported_alive(clock_ms):
                        continue
                    head = node.next_est_complete_ms()
                    if head is not None:
                        candidates.append(head)
            candidates.extend(
                self._ready_ms[k]
                for k, state in enumerate(self._state)
                if state == NODE_PENDING
            )
            candidates.extend(
                d.detect_ms for d in deaths if d.detect_ms > clock_ms + TIME_EPS
            )
            if self._autoscaler and auto_cfg and (
                candidates
                or any(
                    s in (NODE_STANDBY, NODE_DRAINING) for s in self._state
                )
            ):
                candidates.append(tick_index * auto_cfg.control_interval_ms)
            if not candidates:
                raise FaultRecoveryError(
                    f"{queued_total()} requests queued with no node able to "
                    f"take them and no capacity event pending"
                )
            clock_ms = max(clock_ms, min(candidates))

        failovers = self._failover(deaths, shed, dispatches)
        return shed, dispatches, failovers

    # -- phase 2: failover re-routing ----------------------------------------

    def _failover(
        self,
        deaths: list[NodeDeath],
        shed: list[ShedEvent],
        dispatches: list[Dispatch],
    ) -> list[FailoverEvent]:
        """Re-dispatch work a dying node swallowed, once, to survivors."""
        failovers: list[FailoverEvent] = []
        self._lost_by_node: dict[int, set[int]] = {}
        for death in sorted(deaths, key=lambda d: (d.detect_ms, d.node_id)):
            node = self.nodes[death.node_id]
            # the authoritative lost set comes from the death-truncation
            # fixed point; the result is kept so _execute serves once
            result, lost = serve_dying_node(
                node, self._local_plan_of(death.node_id), death
            )
            self._dying_results[death.node_id] = result
            self._lost_by_node[death.node_id] = lost
            lost_requests = sorted(
                (
                    d.request
                    for d in node.dispatches
                    if d.request.req_id in lost
                ),
                key=lambda r: (r.arrival_ms, r.req_id),
            )
            survivors = [
                n for n in self.nodes if n.death_ms is None
            ]
            for request in lost_requests:
                if (
                    request.deadline_ms is not None
                    and death.detect_ms > request.deadline_ms + TIME_EPS
                ):
                    shed.append(
                        ShedEvent(request, death.detect_ms, SHED_INFEASIBLE)
                    )
                    continue
                preferred = [
                    n for n in survivors if n.node_id in self._ever_active
                ] or survivors
                target = min(
                    preferred,
                    key=lambda n: (n.backlog_ms(death.detect_ms), n.node_id),
                )
                est = self._estimate_ms(request, target.system.num_gpus)
                target.assign(request, death.detect_ms, est, failover=True)
                dispatches.append(
                    Dispatch(
                        req_id=request.req_id,
                        node_id=target.node_id,
                        at_ms=death.detect_ms,
                        tenant=tenant_name(request.tenant),
                        est_service_ms=est,
                        failover=True,
                    )
                )
                failovers.append(
                    FailoverEvent(
                        req_id=request.req_id,
                        from_node=death.node_id,
                        to_node=target.node_id,
                        death_ms=death.at_ms,
                        detect_ms=death.detect_ms,
                        redispatch_ms=death.detect_ms,
                    )
                )
        return failovers

    def _local_plan_of(self, node_id: int) -> FaultPlan | None:
        return self._local_plans.get(node_id)

    # -- phase 3: the data plane ---------------------------------------------

    def _execute(
        self,
        request_map: dict[int, ProofRequest],
        local_plans: list[FaultPlan | None],
        deaths: list[NodeDeath],
    ) -> tuple[dict[int, ServeResult], list[ShedEvent]]:
        """Serve every node's bound work; map node shed back to the cluster."""
        death_of = {d.node_id: d for d in deaths}
        node_results: dict[int, ServeResult] = {}
        shed: list[ShedEvent] = []
        for node in self.nodes:
            if not node.dispatches:
                continue
            death = death_of.get(node.node_id)
            if death is not None:
                result = self._dying_results[node.node_id]
            else:
                result = node.serve(faults=local_plans[node.node_id])
            node_results[node.node_id] = result
            for event in result.shed:
                original = request_map[event.request.req_id]
                shed.append(ShedEvent(original, event.at_ms, event.reason))
        return node_results, shed

    # -- result assembly -----------------------------------------------------

    def _records(
        self,
        request_map: dict[int, ProofRequest],
        node_results: dict[int, ServeResult],
        dispatches: list[Dispatch],
    ) -> list[ClusterRecord]:
        last_dispatch: dict[int, Dispatch] = {}
        for dispatch in dispatches:
            last_dispatch[dispatch.req_id] = dispatch
        records: list[ClusterRecord] = []
        for node_id in sorted(node_results):
            for rec in node_results[node_id].records:
                original = request_map[rec.req_id]
                dispatch = last_dispatch[rec.req_id]
                records.append(
                    ClusterRecord(
                        req_id=rec.req_id,
                        tenant=tenant_name(original.tenant),
                        node_id=node_id,
                        n=rec.n,
                        arrival_ms=original.arrival_ms,
                        dispatch_ms=dispatch.at_ms,
                        complete_ms=rec.complete_ms,
                        deadline_ms=original.deadline_ms,
                        retries=rec.retries,
                        failover=dispatch.failover,
                        result=rec.result,
                    )
                )
        records.sort(key=lambda r: (r.req_id, r.node_id))
        return records

    def _metrics(
        self,
        records: list[ClusterRecord],
        shed: list[ShedEvent],
        node_results: dict[int, ServeResult],
    ) -> ClusterMetrics:
        ends = [0.0]
        ends.extend(res.timeline.total_ms for res in node_results.values())
        ends.extend(r.complete_ms for r in records)
        ends.extend(e.at_ms for e in shed)
        utilization: dict[int, float] = {}
        for node_id in sorted(node_results):
            util = node_results[node_id].timeline.utilization()
            gpu_util = [v for name, v in sorted(util.items()) if "gpu" in name]
            utilization[node_id] = (
                sum(gpu_util) / len(gpu_util) if gpu_util else 0.0
            )
        scaler = self._autoscaler
        return ClusterMetrics(
            records=records,
            shed=shed,
            makespan_ms=max(ends),
            node_gpu_utilization=utilization,
            scale_ups=len(scaler.actions(ACTION_UP)) if scaler else 0,
            scale_downs=len(scaler.actions(ACTION_DOWN)) if scaler else 0,
        )
