"""Cluster-scope SLO metrics: end-to-end latency, tenants, failover.

A :class:`ClusterRecord` is the cluster's view of one served request —
latency is measured from the *cluster* arrival (when the client
submitted), not the node-local dispatch, so router queueing is part of
the tail the report stands on.  :class:`ClusterMetrics` aggregates the
same SLO quantities as :class:`repro.serve.metrics.ServeMetrics` one
level up, plus the cluster-only dimensions: per-tenant breakdowns
(served / shed / tail / violations — the SLO-budget accounting), per-node
placement counts, and failover statistics.

Percentiles reuse the deterministic nearest-rank definition from
:mod:`repro.observe.stats`; every export iterates in sorted order so the
JSON artifacts are byte-stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.curves.point import AffinePoint
from repro.observe.stats import percentile
from repro.serve.admission import ShedEvent


def tenant_name(raw: str) -> str:
    """Queue/accounting name of a request's tenant ("" = ``default``)."""
    return raw if raw else "default"


@dataclass(frozen=True)
class ClusterRecord:
    """One request's life cycle as the cluster saw it."""

    req_id: int
    tenant: str
    node_id: int
    n: int
    arrival_ms: float
    dispatch_ms: float
    complete_ms: float
    deadline_ms: float | None = None
    #: intra-node fault-recovery re-executions
    retries: int = 0
    #: re-routed here after another node's death
    failover: bool = False
    #: functional serving only: the bit-exact MSM result point
    result: AffinePoint | None = None

    @property
    def route_wait_ms(self) -> float:
        """Router time: cluster arrival until the node dispatch."""
        return self.dispatch_ms - self.arrival_ms

    @property
    def node_ms(self) -> float:
        """Node time: dispatch until the host reduce delivered."""
        return self.complete_ms - self.dispatch_ms

    @property
    def total_ms(self) -> float:
        return self.complete_ms - self.arrival_ms

    @property
    def deadline_violated(self) -> bool:
        return self.deadline_ms is not None and self.complete_ms > self.deadline_ms

    def as_dict(self) -> dict:
        return {
            "req_id": self.req_id,
            "tenant": self.tenant,
            "node": self.node_id,
            "n": self.n,
            "arrival_ms": self.arrival_ms,
            "route_wait_ms": self.route_wait_ms,
            "node_ms": self.node_ms,
            "total_ms": self.total_ms,
            "retries": self.retries,
            "failover": self.failover,
            "deadline_violated": self.deadline_violated,
        }


@dataclass
class ClusterMetrics:
    """The aggregate SLO report of one cluster serving run."""

    records: list[ClusterRecord] = field(default_factory=list)
    shed: list[ShedEvent] = field(default_factory=list)
    makespan_ms: float = 0.0
    #: node id -> mean GPU utilization over that node's timeline
    node_gpu_utilization: dict = field(default_factory=dict)
    scale_ups: int = 0
    scale_downs: int = 0

    # -- SLO quantities ------------------------------------------------------

    @property
    def served(self) -> int:
        return len(self.records)

    @property
    def submitted(self) -> int:
        return len(self.records) + len(self.shed)

    def latencies_ms(self) -> list[float]:
        return [r.total_ms for r in self.records]

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms(), 50.0)

    @property
    def p95_ms(self) -> float:
        return percentile(self.latencies_ms(), 95.0)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms(), 99.0)

    @property
    def mean_ms(self) -> float:
        lat = self.latencies_ms()
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def throughput_rps(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return self.served / self.makespan_ms * 1e3

    @property
    def deadline_violations(self) -> int:
        return sum(1 for r in self.records if r.deadline_violated)

    @property
    def failover_count(self) -> int:
        return sum(1 for r in self.records if r.failover)

    def shed_count(self, reason: str | None = None) -> int:
        if reason is None:
            return len(self.shed)
        return sum(1 for e in self.shed if e.reason == reason)

    def tenants(self) -> list[str]:
        names = {r.tenant for r in self.records}
        names |= {tenant_name(e.request.tenant) for e in self.shed}
        return sorted(names)

    def per_tenant(self) -> dict:
        """Tenant -> served/shed/tail/violation accounting (SLO budgets)."""
        out: dict = {}
        for tenant in self.tenants():
            recs = [r for r in self.records if r.tenant == tenant]
            lat = [r.total_ms for r in recs]
            out[tenant] = {
                "served": len(recs),
                "shed": sum(
                    1
                    for e in self.shed
                    if tenant_name(e.request.tenant) == tenant
                ),
                "p50_ms": percentile(lat, 50.0),
                "p99_ms": percentile(lat, 99.0),
                "deadline_violations": sum(1 for r in recs if r.deadline_violated),
                "failovers": sum(1 for r in recs if r.failover),
            }
        return out

    def per_node(self) -> dict:
        """Node id -> served count and mean GPU utilization."""
        out: dict = {}
        node_ids = sorted(
            {r.node_id for r in self.records} | set(self.node_gpu_utilization)
        )
        for node_id in node_ids:
            out[node_id] = {
                "served": sum(1 for r in self.records if r.node_id == node_id),
                "gpu_utilization": self.node_gpu_utilization.get(node_id, 0.0),
            }
        return out

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "served": self.served,
            "shed": self.shed_count(),
            "shed_by_reason": {
                reason: self.shed_count(reason)
                for reason in sorted({e.reason for e in self.shed})
            },
            "submitted": self.submitted,
            "makespan_ms": self.makespan_ms,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
            },
            "deadline_violations": self.deadline_violations,
            "failovers": self.failover_count,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "tenants": self.per_tenant(),
            "nodes": {str(k): v for k, v in sorted(self.per_node().items())},
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """One-paragraph human summary (benchmark table row material)."""
        return (
            f"served {self.served}/{self.submitted} "
            f"(shed {self.shed_count()}), makespan {self.makespan_ms:.3f} ms, "
            f"{self.throughput_rps:.1f} req/s, latency p50 {self.p50_ms:.3f} / "
            f"p95 {self.p95_ms:.3f} / p99 {self.p99_ms:.3f} ms, "
            f"{self.deadline_violations} deadline violations, "
            f"{self.failover_count} failovers"
        )
