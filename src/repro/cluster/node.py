"""One proof-serving node of the cluster: a server plus reported load/health.

A :class:`ProofNode` owns one :class:`~repro.gpu.cluster.MultiGpuSystem`
and the :class:`~repro.serve.server.MsmProofServer` that serves on it.
The cluster router (:mod:`repro.cluster.router`) never reaches into the
node's engine — it talks to the node through two narrow surfaces:

* **dispatch** — :meth:`ProofNode.assign` hands the node one request at a
  cluster-clock instant and updates the node's *reported load model*: an
  estimated-completion heap plus an estimated-free time, the quantities
  the routing policies (least-loaded, power-of-two-choices) compare.
  Estimates come from the router's control-plane plan cache, so routing
  never runs a planner on the data path.
* **health** — :attr:`death_ms` / :attr:`detect_ms` are stamped by the
  failover layer (:mod:`repro.cluster.failover`) when the cluster-level
  fault plan kills every GPU of this node.  :meth:`reported_alive` is
  what the router sees (heartbeat semantics: a dead node keeps receiving
  dispatches until the detection tick, and those requests are lost);
  :meth:`alive_at` is the ground truth the auditors check against.

Serving happens once, after routing: :meth:`ProofNode.serve` re-stamps
every dispatched request's arrival to its dispatch instant (the node sees
work when the router sends it, deadlines stay absolute) and runs the
wrapped server over the node-local fault plan.  All clocks are the ONE
simulated cluster clock — node timelines, dispatch times, and fault
events compare directly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace

from repro.core.config import DistMsmConfig
from repro.engine.faults import FaultPlan
from repro.engine.timeline import TIME_EPS
from repro.gpu.cluster import MultiGpuSystem
from repro.serve.plancache import PlanCache
from repro.serve.queue import ProofRequest
from repro.serve.server import MsmProofServer, ServeConfig, ServeResult

#: the node-level serving policy the cluster installs by default: shedding
#: is a *router* decision (per-tenant queues, SLO budgets), so the node
#: accepts what it is handed — a wide queue and no deadline rejection
DEFAULT_NODE_SERVE_CONFIG = ServeConfig(
    gpu_groups=1,
    max_batch_size=4,
    max_wait_ms=1.0,
    max_queue=256,
    reject_infeasible=False,
)


@dataclass(frozen=True)
class NodeDispatch:
    """One request handed to this node by the router.

    ``request`` keeps its cluster-clock arrival (for end-to-end latency);
    ``dispatch_ms`` is when the router bound it here, which becomes the
    node-local arrival.  ``est_service_ms`` is the control-plane service
    estimate used for load accounting; ``failover=True`` marks a request
    re-routed here after another node's death.
    """

    request: ProofRequest
    dispatch_ms: float
    est_service_ms: float
    failover: bool = False

    def local_request(self) -> ProofRequest:
        """The request as the node sees it: arrival = dispatch instant."""
        return replace(self.request, arrival_ms=self.dispatch_ms)


@dataclass(frozen=True)
class NodeReport:
    """One load/health snapshot of a node, as the router reports it."""

    node_id: int
    gpus: int
    dispatched: int
    inflight: int
    backlog_ms: float
    health: str


class ProofNode:
    """One cluster node: a proof server with dispatch and health bookkeeping."""

    def __init__(
        self,
        node_id: int,
        num_gpus: int,
        config: DistMsmConfig | None = None,
        serve_config: ServeConfig | None = None,
        system: MultiGpuSystem | None = None,
    ) -> None:
        if node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {node_id}")
        self.node_id = node_id
        self.system = system or MultiGpuSystem(num_gpus, gpus_per_node=num_gpus)
        self.config = config or DistMsmConfig()
        self.serve_config = serve_config or DEFAULT_NODE_SERVE_CONFIG
        # each node owns its plan cache: a real deployment would not share
        # planner memory across boxes, and per-node hit rates stay honest
        self.plan_cache = PlanCache()
        self.server = MsmProofServer(
            self.system, self.config, self.serve_config, plan_cache=self.plan_cache
        )
        self.dispatches: list[NodeDispatch] = []
        #: stamped by the failover layer when the fault plan kills the node
        self.death_ms: float | None = None
        self.detect_ms: float | None = None
        # reported load model (estimates, not ground truth)
        self._est_heap: list[float] = []
        self.est_free_ms = 0.0

    # -- load model (router-facing) ------------------------------------------

    def assign(
        self,
        request: ProofRequest,
        dispatch_ms: float,
        est_service_ms: float,
        failover: bool = False,
    ) -> NodeDispatch:
        """Bind ``request`` to this node at ``dispatch_ms`` and book the load."""
        if est_service_ms < 0:
            raise ValueError(f"est_service_ms must be >= 0, got {est_service_ms}")
        dispatch = NodeDispatch(request, dispatch_ms, est_service_ms, failover)
        self.dispatches.append(dispatch)
        est_start = max(dispatch_ms, self.est_free_ms)
        est_complete = est_start + est_service_ms
        heapq.heappush(self._est_heap, est_complete)
        self.est_free_ms = est_complete
        return dispatch

    def inflight(self, now_ms: float) -> int:
        """Estimated requests still executing here at ``now_ms``."""
        while self._est_heap and self._est_heap[0] <= now_ms + TIME_EPS:
            heapq.heappop(self._est_heap)
        return len(self._est_heap)

    def backlog_ms(self, now_ms: float) -> float:
        """Estimated time until this node drains its booked work."""
        return max(0.0, self.est_free_ms - now_ms)

    def next_est_complete_ms(self) -> float | None:
        """The earliest booked completion still pending (None when idle)."""
        return self._est_heap[0] if self._est_heap else None

    # -- health (router sees detection, auditors see ground truth) -----------

    def reported_alive(self, now_ms: float) -> bool:
        """What the heartbeat detector tells the router at ``now_ms``."""
        return self.detect_ms is None or now_ms < self.detect_ms - TIME_EPS

    def alive_at(self, now_ms: float) -> bool:
        """Ground truth: has this node actually failed by ``now_ms``?"""
        return self.death_ms is None or now_ms < self.death_ms - TIME_EPS

    def health(self, now_ms: float) -> str:
        """``live``, ``dying`` (failed, not yet detected), or ``dead``."""
        if self.death_ms is None:
            return "live"
        if self.reported_alive(now_ms):
            return "dying" if now_ms >= self.death_ms - TIME_EPS else "live"
        return "dead"

    def report(self, now_ms: float) -> NodeReport:
        return NodeReport(
            node_id=self.node_id,
            gpus=self.system.num_gpus,
            dispatched=len(self.dispatches),
            inflight=self.inflight(now_ms),
            backlog_ms=self.backlog_ms(now_ms),
            health=self.health(now_ms),
        )

    # -- serving (data plane) ------------------------------------------------

    def local_requests(self, exclude: frozenset[int] | set[int] = frozenset()) -> list[ProofRequest]:
        """The dispatched requests re-stamped to node-local arrivals."""
        return [
            d.local_request()
            for d in self.dispatches
            if d.request.req_id not in exclude
        ]

    def serve(
        self,
        faults: FaultPlan | None = None,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> ServeResult:
        """Serve everything dispatched here (minus ``exclude``) under ``faults``.

        ``faults`` is this node's *local* plan (GPU ids 0..num_gpus-1,
        link node 0) produced by
        :func:`repro.cluster.failover.split_fault_plan`; the wrapped
        server recovers intra-node failures itself.  ``exclude`` carries
        the request ids the failover layer already decided were lost to
        this node's death.
        """
        return self.server.serve(self.local_requests(exclude), faults=faults)
