"""repro.cluster: a multi-node sharded proof-serving cluster.

The serving layer (:mod:`repro.serve`) runs one proof server on one
multi-GPU box.  This package scales that out: N
:class:`~repro.cluster.node.ProofNode` boxes behind a
:class:`~repro.cluster.router.ProofCluster` front-end with per-tenant
weighted-fair queues and SLO budgets, pluggable routing policies,
heartbeat-detected node failover with at-most-once re-dispatch, a
simulated queue-depth/p99 autoscaler, and replayable JSON workload
traces (:mod:`repro.cluster.trace`).  Everything runs on the ONE
simulated clock of :mod:`repro.engine.timeline`, and every run is
auditable by :mod:`repro.verify.clustercheck`.
"""

from repro.cluster.autoscale import (
    ACTION_DOWN,
    ACTION_HOLD,
    ACTION_UP,
    AutoscaleConfig,
    Autoscaler,
    ScaleDecision,
)
from repro.cluster.failover import (
    NodeDeath,
    node_of_gpu,
    serve_dying_node,
    split_fault_plan,
)
from repro.cluster.metrics import ClusterMetrics, ClusterRecord, tenant_name
from repro.cluster.node import (
    DEFAULT_NODE_SERVE_CONFIG,
    NodeDispatch,
    NodeReport,
    ProofNode,
)
from repro.cluster.record import record_cluster
from repro.cluster.router import (
    ROUTING_POLICIES,
    ClusterConfig,
    ClusterResult,
    Dispatch,
    FailoverEvent,
    ProofCluster,
    TenantSpec,
)
from repro.cluster.trace import (
    SEGMENT_KINDS,
    TRACE_FORMAT,
    ClusterTrace,
    TraceSegment,
    diurnal_burst_trace,
    generate_requests,
    replay,
)

__all__ = [
    "ACTION_DOWN",
    "ACTION_HOLD",
    "ACTION_UP",
    "AutoscaleConfig",
    "Autoscaler",
    "ClusterConfig",
    "ClusterMetrics",
    "ClusterRecord",
    "ClusterResult",
    "ClusterTrace",
    "DEFAULT_NODE_SERVE_CONFIG",
    "Dispatch",
    "FailoverEvent",
    "NodeDeath",
    "NodeDispatch",
    "NodeReport",
    "ProofCluster",
    "ProofNode",
    "ROUTING_POLICIES",
    "SEGMENT_KINDS",
    "ScaleDecision",
    "TRACE_FORMAT",
    "TenantSpec",
    "TraceSegment",
    "diurnal_burst_trace",
    "generate_requests",
    "node_of_gpu",
    "record_cluster",
    "replay",
    "serve_dying_node",
    "split_fault_plan",
    "tenant_name",
]
