"""Node-level failure detection and in-flight re-routing for the cluster.

The cluster takes ONE global fault plan (GPU ids numbered across all
nodes, link indices matching node ids — exactly what
:func:`repro.faults.chaos.random_fault_plan` emits for the whole fleet)
and :func:`split_fault_plan` projects it into per-node *local* plans plus
the list of :class:`NodeDeath` events — a node dies when the plan kills
every one of its GPUs; the death instant is the *last* kill.

Two clocks matter, both reusing the heartbeat semantics of
:func:`repro.faults.recovery.detection_time_ms`:

* ``at_ms`` — when the node actually stops (requests in flight there are
  lost, nothing completes after this instant);
* ``detect_ms`` — when the router's heartbeat notices; between the two
  the router keeps dispatching into the void (those requests are lost
  too), after it the lost work is re-routed to *surviving* nodes.

The kill events that complete a node's death are **withheld** from the
node's local plan: the wrapped :class:`~repro.serve.server.MsmProofServer`
refuses plans that kill every GPU (it could never finish), and the node's
timeline is truncated at the death instant by
:func:`serve_dying_node` instead — a fixed-point that serves the node's
dispatched work, discards every request whose completion lands after the
death, and re-serves until the surviving set is stable.  Earlier partial
kills inside the node stay in the local plan, so intra-node recovery
(re-emission on surviving GPUs) still happens below the cluster layer.

Functional payloads make failover *bit-exact*: the MSM result never
depends on which node computed it, so a re-routed request's point equals
the no-failure point — asserted by tests and the cluster benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.faults import (
    ByzantineWorker,
    FaultEvent,
    FaultPlan,
    GpuFailure,
    Straggler,
    TransferError,
)
from repro.engine.timeline import TIME_EPS
from repro.faults.recovery import FaultRecoveryError, detection_time_ms
from repro.cluster.node import ProofNode
from repro.serve.server import ServeResult


@dataclass(frozen=True)
class NodeDeath:
    """One node's fail-stop: actual instant and heartbeat detection tick."""

    node_id: int
    at_ms: float
    detect_ms: float

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError(f"NodeDeath.at_ms must be >= 0, got {self.at_ms}")
        if self.detect_ms < self.at_ms:
            raise ValueError(
                f"NodeDeath detected at {self.detect_ms} before death {self.at_ms}"
            )


def node_of_gpu(gpu_id: int, node_gpu_counts: list[int]) -> tuple[int, int]:
    """Map a global GPU id to ``(node_id, local_gpu_id)``."""
    offset = 0
    for node_id, count in enumerate(node_gpu_counts):
        if gpu_id < offset + count:
            return node_id, gpu_id - offset
        offset += count
    raise ValueError(
        f"gpu {gpu_id} outside the cluster (total {offset} GPUs)"
    )


def split_fault_plan(
    faults: FaultPlan | None,
    node_gpu_counts: list[int],
    heartbeat_ms: float,
) -> tuple[list[FaultPlan | None], list[NodeDeath]]:
    """Project a global fault plan into per-node local plans plus deaths.

    GPU-addressed events are remapped to node-local GPU ids;
    :class:`TransferError` events go to the node their link index names.
    For every node whose GPUs are *all* killed, a :class:`NodeDeath` is
    emitted (death = the last kill) and the kills at that final instant
    are withheld from the local plan, leaving the node's own server a
    survivor to recover onto until the box actually stops.
    """
    if heartbeat_ms <= 0:
        raise ValueError(f"heartbeat_ms must be > 0, got {heartbeat_ms}")
    num_nodes = len(node_gpu_counts)
    if faults is None or faults.empty:
        return [None] * num_nodes, []

    per_node: list[list[FaultEvent]] = [[] for _ in range(num_nodes)]
    for event in faults.events:
        if isinstance(event, GpuFailure):
            node_id, local = node_of_gpu(event.gpu_id, node_gpu_counts)
            per_node[node_id].append(GpuFailure(event.at_ms, local))
        elif isinstance(event, Straggler):
            node_id, local = node_of_gpu(event.gpu_id, node_gpu_counts)
            per_node[node_id].append(Straggler(local, event.slowdown))
        elif isinstance(event, ByzantineWorker):
            node_id, local = node_of_gpu(event.gpu_id, node_gpu_counts)
            per_node[node_id].append(
                ByzantineWorker(local, event.mode, event.round, event.seed)
            )
        elif isinstance(event, TransferError):
            if event.node >= num_nodes:
                raise ValueError(
                    f"TransferError names node {event.node}; cluster has "
                    f"{num_nodes} nodes"
                )
            per_node[event.node].append(
                TransferError(0, event.at_ms, event.transient)
            )
        else:  # pragma: no cover - FaultPlan already validated event types
            raise TypeError(f"unknown fault event {event!r}")

    plans: list[FaultPlan | None] = []
    deaths: list[NodeDeath] = []
    for node_id, events in enumerate(per_node):
        kills = [e for e in events if isinstance(e, GpuFailure)]
        killed = {e.gpu_id for e in kills}
        if killed == set(range(node_gpu_counts[node_id])) and killed:
            death_ms = max(e.at_ms for e in kills)
            deaths.append(
                NodeDeath(
                    node_id=node_id,
                    at_ms=death_ms,
                    detect_ms=detection_time_ms(death_ms, heartbeat_ms),
                )
            )
            # withhold the final kill(s): the box stops at death_ms anyway,
            # and the node server needs a survivor for its earlier recovery
            events = [
                e
                for e in events
                if not (
                    isinstance(e, GpuFailure) and e.at_ms >= death_ms - TIME_EPS
                )
            ]
        plans.append(FaultPlan(tuple(events)) if events else None)
    return plans, deaths


def serve_dying_node(
    node: ProofNode,
    local_faults: FaultPlan | None,
    death: NodeDeath,
    max_rounds: int = 64,
) -> tuple[ServeResult, set[int]]:
    """Serve a dying node's dispatched work, truncated at its death.

    Returns ``(result, lost_ids)`` where ``result`` serves exactly the
    requests that completed strictly before the node stopped, and
    ``lost_ids`` are the dispatches the death swallowed — requests
    dispatched at-or-after the death instant (the router had not detected
    it yet) plus requests whose completion would have landed after it.

    The truncation is a fixed point: removing a request can only *pull
    earlier* or reshuffle batch formation for the rest, so the serve is
    repeated with the grown exclusion set until no served completion
    crosses the death instant.
    """
    lost: set[int] = {
        d.request.req_id
        for d in node.dispatches
        if d.dispatch_ms >= death.at_ms - TIME_EPS
    }
    for _ in range(max_rounds):
        result = node.serve(faults=local_faults, exclude=lost)
        late = {
            r.req_id
            for r in result.records
            if r.complete_ms > death.at_ms + TIME_EPS
        }
        if not late:
            return result, lost
        lost |= late
    raise FaultRecoveryError(
        f"node {node.node_id} death truncation did not converge within "
        f"{max_rounds} rounds"
    )
