"""Cluster trace recording: per-node lanes, tenant request lanes, router events.

Like :func:`repro.observe.record.record_timeline`, recording a cluster
run is a transcription of finished results, never instrumentation on the
routing path.  One :func:`record_cluster` call turns a
:class:`~repro.cluster.router.ClusterResult` into Chrome-trace material:

* every node's served timeline on ``node{k}/{resource}`` tracks, so the
  per-node GPU lanes sit side by side in one viewer;
* every request's life as two spans on its tenant's lane — ``queued``
  (cluster arrival → dispatch) and ``executing`` (dispatch → complete,
  annotated with the serving node and failover flag);
* router control-plane instants on the ``router`` track: dispatches,
  sheds (with reason), node deaths and their heartbeat detections,
  failover re-dispatches, and non-hold autoscale decisions.
"""

from __future__ import annotations

from repro.cluster.router import ClusterResult
from repro.observe.record import phase_category
from repro.observe.tracer import Tracer

__all__ = ["record_cluster"]

ROUTER_TRACK = "router"


def record_cluster(tracer: Tracer, result: ClusterResult) -> None:
    """Transcribe a finished cluster run onto ``tracer`` (no-op if disabled)."""
    if not tracer.enabled:
        return

    for node_id in sorted(result.node_results):
        timeline = result.node_results[node_id].timeline
        for span in sorted(
            timeline.spans.values(),
            key=lambda s: (s.start_ms, s.resource.name, s.task),
        ):
            tracer.add_span(
                f"n{node_id}:{span.task}",
                f"node{node_id}/{span.resource.name}",
                span.start_ms,
                span.end_ms,
                cat=phase_category(span.task),
                args={"node": node_id, "stage": span.stage}
                if span.stage
                else {"node": node_id},
            )

    for record in sorted(result.records, key=lambda r: (r.req_id, r.node_id)):
        lane = f"tenant/{record.tenant}"
        tracer.add_span(
            f"req{record.req_id}:queued",
            lane,
            record.arrival_ms,
            record.dispatch_ms,
            cat="queue",
            args={"tenant": record.tenant},
        )
        tracer.add_span(
            f"req{record.req_id}:executing",
            lane,
            record.dispatch_ms,
            record.complete_ms,
            cat="execute",
            args={
                "tenant": record.tenant,
                "node": record.node_id,
                "failover": record.failover,
                "retries": record.retries,
            },
        )

    for dispatch in sorted(
        result.dispatches, key=lambda d: (d.at_ms, d.req_id, d.node_id)
    ):
        tracer.instant(
            f"dispatch:req{dispatch.req_id}->n{dispatch.node_id}",
            ROUTER_TRACK,
            dispatch.at_ms,
            cat="dispatch",
            args={
                "tenant": dispatch.tenant,
                "node": dispatch.node_id,
                "failover": dispatch.failover,
            },
        )
    for event in sorted(
        result.shed, key=lambda e: (e.at_ms, e.request.req_id)
    ):
        tracer.instant(
            f"shed:req{event.request.req_id}",
            ROUTER_TRACK,
            event.at_ms,
            cat="shed",
            args={"reason": event.reason},
        )
    for death in sorted(result.deaths, key=lambda d: (d.at_ms, d.node_id)):
        tracer.instant(
            f"death:n{death.node_id}",
            ROUTER_TRACK,
            death.at_ms,
            cat="fault",
            args={"node": death.node_id},
        )
        tracer.instant(
            f"detect:n{death.node_id}",
            ROUTER_TRACK,
            death.detect_ms,
            cat="fault",
            args={"node": death.node_id, "death_ms": death.at_ms},
        )
    for failover in sorted(
        result.failovers, key=lambda f: (f.redispatch_ms, f.req_id)
    ):
        tracer.instant(
            f"failover:req{failover.req_id}:n{failover.from_node}->"
            f"n{failover.to_node}",
            ROUTER_TRACK,
            failover.redispatch_ms,
            cat="failover",
            args={"from": failover.from_node, "to": failover.to_node},
        )
    for decision in result.scale_decisions:
        if decision.action == "hold":
            continue
        tracer.instant(
            f"autoscale:{decision.action}:{decision.active}->{decision.target}",
            ROUTER_TRACK,
            decision.at_ms,
            cat="autoscale",
            args={"reason": decision.reason, "queued": decision.queued},
        )
