"""Simulated autoscaler: queue-depth and p99 trends drive node count.

The autoscaler is a *control-plane* component: at every control tick the
router feeds it the observable signals — total queued requests, active
node count, and the p99 of recent *estimated* completions (the router
only has estimates while requests are in flight; honest label, honest
model) — and the autoscaler answers with a target active-node count.
The router then activates standby nodes (paying ``provision_ms`` before
they accept dispatches) or drains active ones (they finish their booked
work but receive nothing new).

Two stability mechanisms, both asserted by ``tests/cluster``:

* **cool-down** — after any scale action, further actions are suppressed
  for ``cooldown_ms``; a burst therefore produces a clean ramp, not a
  thrash, and a scale-up is never immediately reverted (no flapping);
* **hysteresis** — scale-down requires ``down_stable_ticks`` consecutive
  low-pressure observations, so a single quiet tick inside a diurnal
  trough never drops capacity.

State machine: ``steady`` (watching) → ``cooldown`` (action taken,
holding) → ``steady``.  Every tick is logged as a :class:`ScaleDecision`
so benchmarks and the trace recorder can show the autoscaler reacting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

STATE_STEADY = "steady"
STATE_COOLDOWN = "cooldown"

ACTION_UP = "up"
ACTION_DOWN = "down"
ACTION_HOLD = "hold"


@dataclass(frozen=True)
class AutoscaleConfig:
    """Policy knobs of the simulated autoscaler.

    ``queue_high`` / ``queue_low`` are queued-requests-per-active-node
    thresholds; ``p99_high_ms`` (optional) adds a latency trigger on the
    router's estimated p99.  ``provision_ms`` is the delay before an
    activated node accepts dispatches; ``p99_window_ms`` bounds how far
    back the p99 estimate looks.
    """

    min_nodes: int = 1
    max_nodes: int = 8
    control_interval_ms: float = 50.0
    queue_high: float = 4.0
    queue_low: float = 0.5
    p99_high_ms: float | None = None
    cooldown_ms: float = 200.0
    provision_ms: float = 100.0
    down_stable_ticks: int = 3
    p99_window_ms: float = 200.0

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")
        if self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes {self.max_nodes} below min_nodes {self.min_nodes}"
            )
        if self.control_interval_ms <= 0:
            raise ValueError(
                f"control_interval_ms must be > 0, got {self.control_interval_ms}"
            )
        if self.queue_high <= self.queue_low:
            raise ValueError(
                f"queue_high {self.queue_high} must exceed queue_low {self.queue_low}"
            )
        if self.p99_high_ms is not None and self.p99_high_ms <= 0:
            raise ValueError(f"p99_high_ms must be > 0, got {self.p99_high_ms}")
        if self.cooldown_ms < 0 or self.provision_ms < 0:
            raise ValueError("cooldown_ms and provision_ms must be >= 0")
        if self.down_stable_ticks < 1:
            raise ValueError(
                f"down_stable_ticks must be >= 1, got {self.down_stable_ticks}"
            )
        if self.p99_window_ms <= 0:
            raise ValueError(f"p99_window_ms must be > 0, got {self.p99_window_ms}")


@dataclass(frozen=True)
class ScaleDecision:
    """One control-tick outcome, logged whether or not capacity changed."""

    at_ms: float
    action: str
    active: int
    target: int
    queued: int
    p99_ms: float
    state: str
    reason: str


@dataclass
class Autoscaler:
    """The queue-depth / p99 controller with cool-down and hysteresis."""

    config: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    decisions: list[ScaleDecision] = field(default_factory=list)
    _cooldown_until_ms: float = 0.0
    _low_ticks: int = 0

    def state(self, now_ms: float) -> str:
        return STATE_COOLDOWN if now_ms < self._cooldown_until_ms else STATE_STEADY

    def tick(self, now_ms: float, queued: int, active: int, p99_ms: float) -> int:
        """One control observation; returns the target active-node count.

        ``queued`` is the router's total queued-request count, ``active``
        the nodes currently accepting dispatches (activating and draining
        nodes excluded), ``p99_ms`` the estimated recent tail latency.
        """
        cfg = self.config
        state = self.state(now_ms)
        per_node = queued / active if active > 0 else float(queued)
        over_queue = per_node >= cfg.queue_high or active == 0
        over_p99 = cfg.p99_high_ms is not None and p99_ms >= cfg.p99_high_ms
        under = per_node <= cfg.queue_low and not over_p99 and active > 0

        self._low_ticks = self._low_ticks + 1 if under else 0

        action, target, reason = ACTION_HOLD, active, "within thresholds"
        if (over_queue or over_p99) and active < cfg.max_nodes:
            if state == STATE_COOLDOWN:
                reason = "scale-up wanted but in cooldown"
            else:
                # pressure-proportional step: a deep queue jumps several
                # nodes at once instead of waiting out one cooldown per node
                step = max(1, int(per_node // cfg.queue_high)) if active else 1
                target = min(cfg.max_nodes, active + step)
                action = ACTION_UP
                reason = (
                    f"queue {per_node:.1f}/node >= {cfg.queue_high:.1f}"
                    if over_queue
                    else f"p99 {p99_ms:.1f} ms >= {cfg.p99_high_ms:.1f} ms"
                )
        elif under and active > cfg.min_nodes:
            if self._low_ticks < cfg.down_stable_ticks:
                reason = (
                    f"low pressure {self._low_ticks}/{cfg.down_stable_ticks} ticks"
                )
            elif state == STATE_COOLDOWN:
                reason = "scale-down wanted but in cooldown"
            else:
                target = max(cfg.min_nodes, active - 1)
                action = ACTION_DOWN
                reason = (
                    f"queue {per_node:.1f}/node <= {cfg.queue_low:.1f} for "
                    f"{self._low_ticks} ticks"
                )

        if action != ACTION_HOLD:
            self._cooldown_until_ms = now_ms + cfg.cooldown_ms
            self._low_ticks = 0
        self.decisions.append(
            ScaleDecision(
                at_ms=now_ms,
                action=action,
                active=active,
                target=target,
                queued=queued,
                p99_ms=p99_ms,
                state=state,
                reason=reason,
            )
        )
        return target

    def actions(self, kind: str | None = None) -> list[ScaleDecision]:
        """The non-hold decisions (optionally only ``up`` or ``down``)."""
        picked = [d for d in self.decisions if d.action != ACTION_HOLD]
        if kind is not None:
            picked = [d for d in picked if d.action == kind]
        return picked
