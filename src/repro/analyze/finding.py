"""Finding records and report aggregation for the static analyzer.

Every pass in :mod:`repro.analyze` reports problems as :class:`Finding`
values rather than raising: one analysis run collects *all* findings
across all files and program artifacts, applies the suppression baseline,
and the CLI maps any unsuppressed finding to a non-zero exit status —
the same collect-then-judge shape as :mod:`repro.verify`'s
:class:`~repro.verify.report.VerificationReport`, but keyed by source
location instead of kernel subject.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: finding severities, most severe first
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One invariant the analyzer could not discharge.

    Attributes
    ----------
    rule:
        Registered rule name, e.g. ``"det-unseeded-rng"`` (see
        :mod:`repro.analyze.registry`).
    path:
        Source file the finding is anchored to, or an artifact label in
        angle brackets (``"<PACC dag>"``, ``"<plan>"``) for program-level
        findings with no file.
    line:
        1-based source line; 0 for program-level findings.
    message:
        Human-readable description of the broken invariant.
    severity:
        ``"error"`` (the tree must not ship with it) or ``"warning"``.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }


@dataclass
class AnalysisReport:
    """Outcome of one analysis run: findings, suppressions, checks.

    ``findings`` are active (unsuppressed); ``suppressed`` were matched by
    the baseline and do not affect :attr:`ok`.  ``checks`` lists every
    discharged proof obligation (interval bounds, register peaks, plan
    validations) the way the verify report lists passing checks.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def add_check(self, description: str) -> None:
        self.checks.append(description)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def counts_by_rule(self) -> dict[str, int]:
        """Active finding count per rule name (sorted keys, zero-free)."""
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return {rule: counts[rule] for rule in sorted(counts)}

    def sorted_findings(self) -> list[Finding]:
        """Deterministic presentation order: path, line, rule, message."""
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule, f.message)
        )

    def render(self, verbose: bool = False) -> str:
        lines = []
        if verbose or self.ok:
            for check in self.checks:
                lines.append(f"  ok: {check}")
        for f in self.sorted_findings():
            lines.append(f"  {f.severity.upper()} {f}")
        status = "CLEAN" if self.ok else "DIRTY"
        lines.append(
            f"{status}: {self.files} files, {len(self.checks)} checks, "
            f"{len(self.findings)} findings "
            f"({len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files": self.files,
            "checks": list(self.checks),
            "counts_by_rule": self.counts_by_rule(),
            "findings": [f.as_dict() for f in self.sorted_findings()],
            "suppressed": [
                f.as_dict()
                for f in sorted(
                    self.suppressed,
                    key=lambda f: (f.path, f.line, f.rule, f.message),
                )
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)
