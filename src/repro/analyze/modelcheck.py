"""Pre-flight model checking of engine task graphs (before ``simulate``).

:func:`repro.engine.timeline.simulate` is trusting: it only discovers a
dependency cycle after scheduling everything schedulable (partial work,
then ``ValueError``), it treats a misspelt dependency as one more node
that never finishes, and its readiness-FIFO dispatch deliberately
*reorders* within a resource — which hides plans that would deadlock on
real hardware, where a CUDA stream executes strictly in submission order.

:func:`check_plan` validates a task list before any simulation happens:

* **structure** — duplicate task names, dependencies on names no task
  carries;
* **liveness** — dependency cycles (with a concrete cycle in the
  message) and tasks that can never become ready because they sit on or
  behind a cycle;
* **FIFO-stream deadlock** — a cycle in the union of dependency edges
  and per-resource *submission-order* edges (task ``i`` precedes task
  ``i+1`` submitted to the same resource).  Such a plan simulates fine
  here but hangs on an in-order stream: the earlier-submitted task waits
  on work queued behind it.  Emitting tasks in topological order keeps
  every plan free of these by construction;
* **``requires_alive`` cascade consistency** — each required resource
  must execute something in the task's dependency closure (that is what
  ties the death cascade to an actual data hazard); naming the task's own
  resource is redundant; naming a resource that runs nothing in the plan
  is almost certainly a typo that silently disables the cascade.

Structure and liveness problems are ``error`` severity and raise
:class:`PlanError` from the orchestration call sites; the
``requires_alive`` rules are ``warning`` severity — the plan still
simulates correctly, it just guards less than its author thought.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analyze.finding import Finding

if TYPE_CHECKING:
    from repro.engine.timeline import Task

#: BFS node budget for the dependency-closure search of one requires_alive
#: entry; beyond this the rule abstains rather than going quadratic.
_CLOSURE_VISIT_CAP = 4096


class PlanError(ValueError):
    """A task plan failed pre-flight validation."""

    def __init__(self, findings: list[Finding]):
        self.findings = findings
        super().__init__(
            "; ".join(str(f) for f in findings) or "plan check failed"
        )


@dataclass
class PlanCheckResult:
    """Outcome of one :func:`check_plan` run."""

    label: str
    findings: list[Finding] = field(default_factory=list)
    tasks: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors


def _find_cycle(
    nodes: list[str], edges: dict[str, list[str]]
) -> list[str] | None:
    """One concrete cycle in the directed graph, or None.

    Iterative three-colour DFS; returns the cycle as a node list with the
    entry node repeated at the end (``a -> b -> a``).
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {n: WHITE for n in nodes}
    parent: dict[str, str] = {}
    for root in nodes:
        if colour[root] != WHITE:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, edge_idx = stack[-1]
            successors = edges.get(node, [])
            if edge_idx < len(successors):
                stack[-1] = (node, edge_idx + 1)
                succ = successors[edge_idx]
                if colour.get(succ, BLACK) == GREY:
                    cycle = [succ, node]
                    walker = node
                    while walker != succ:
                        walker = parent[walker]
                        cycle.append(walker)
                    cycle.reverse()
                    return cycle
                if colour.get(succ, BLACK) == WHITE:
                    colour[succ] = GREY
                    parent[succ] = node
                    stack.append((succ, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return None


def _kahn_stuck(tasks: list[Task]) -> set[str]:
    """Task names that never become ready (on or behind a dep cycle)."""
    indegree = {t.name: 0 for t in tasks}
    dependants: dict[str, list[str]] = {t.name: [] for t in tasks}
    for t in tasks:
        for dep in dict.fromkeys(t.deps):
            if dep in indegree:
                indegree[t.name] += 1
                dependants[dep].append(t.name)
    queue = [name for name, deg in indegree.items() if deg == 0]
    done = 0
    while queue:
        name = queue.pop()
        done += 1
        for dependant in dependants[name]:
            indegree[dependant] -= 1
            if indegree[dependant] == 0:
                queue.append(dependant)
        indegree[name] = -1
    return {name for name, deg in indegree.items() if deg > 0}


def check_plan(
    tasks: list[Task] | tuple[Task, ...], label: str = "<plan>"
) -> PlanCheckResult:
    """Validate a task plan; raise :class:`PlanError` on any error finding.

    Returns the full :class:`PlanCheckResult` (including warnings) when
    the plan is structurally sound.
    """
    result = PlanCheckResult(label=label, tasks=len(tasks))
    findings = result.findings

    def report(rule: str, message: str, severity: str = "error") -> None:
        findings.append(Finding(rule, label, 0, message, severity=severity))

    # -- structure --------------------------------------------------------
    names: dict[str, int] = {}
    for t in tasks:
        if t.name in names:
            report(
                "plan-duplicate-task",
                f"task name {t.name!r} used by submissions "
                f"#{names[t.name]} and #{len(names)}",
            )
        else:
            names[t.name] = len(names)
    for t in tasks:
        for dep in dict.fromkeys(t.deps):
            if dep not in names:
                report(
                    "plan-unknown-dep",
                    f"task {t.name!r} depends on {dep!r}, which no task "
                    "in the plan carries",
                )
    if result.errors:
        raise PlanError(result.errors)

    # -- liveness ---------------------------------------------------------
    dep_edges = {
        t.name: [d for d in dict.fromkeys(t.deps) if d in names]
        for t in tasks
    }
    stuck = _kahn_stuck(list(tasks))
    if stuck:
        cycle = _find_cycle(sorted(stuck), dep_edges)
        if cycle is not None:
            report(
                "plan-cycle",
                "dependency cycle: " + " -> ".join(cycle),
            )
            on_cycle = set(cycle)
        else:  # unreachable in practice: stuck implies a cycle exists
            on_cycle = set()
        for name in sorted(stuck - on_cycle):
            report(
                "plan-unreachable",
                f"task {name!r} can never become ready (behind the cycle)",
            )
        raise PlanError(result.errors)

    # -- FIFO-stream deadlock ---------------------------------------------
    fifo_edges = {name: list(edges) for name, edges in dep_edges.items()}
    last_on_resource: dict[str, str] = {}
    for t in tasks:
        res = t.resource.name
        if res in last_on_resource:
            # strict in-order stream: the later submission waits for the
            # earlier one, i.e. an edge earlier -> later... checked as
            # "later depends on earlier" to match dep-edge direction
            fifo_edges[t.name].append(last_on_resource[res])
        last_on_resource[res] = t.name
    fifo_cycle = _find_cycle([t.name for t in tasks], fifo_edges)
    if fifo_cycle is not None:
        report(
            "plan-fifo-deadlock",
            "deadlock under strict in-order streams: "
            + " -> ".join(fifo_cycle)
            + " (reorder submissions topologically)",
        )
        raise PlanError(result.errors)

    # -- requires_alive cascade consistency -------------------------------
    resources_running = {t.resource.name for t in tasks}
    resource_of = {t.name: t.resource.name for t in tasks}
    for t in tasks:
        for required in dict.fromkeys(t.requires_alive):
            if required == t.resource.name:
                report(
                    "plan-requires-alive-redundant",
                    f"task {t.name!r} requires its own resource "
                    f"{required!r} alive (always implied)",
                    severity="warning",
                )
                continue
            if required not in resources_running:
                report(
                    "plan-requires-alive-unknown",
                    f"task {t.name!r} requires {required!r} alive, but "
                    "that resource executes nothing in this plan "
                    "(typo? the death cascade would never fire)",
                    severity="warning",
                )
                continue
            # the hazard must be real: something in the dependency
            # closure has to run on the required resource
            seen = {t.name}
            frontier = list(dep_edges[t.name])
            hazard = False
            while frontier and len(seen) < _CLOSURE_VISIT_CAP:
                name = frontier.pop()
                if name in seen:
                    continue
                seen.add(name)
                if resource_of[name] == required:
                    hazard = True
                    break
                frontier.extend(dep_edges[name])
            if not hazard and len(seen) < _CLOSURE_VISIT_CAP:
                report(
                    "plan-requires-alive-unrelated",
                    f"task {t.name!r} requires {required!r} alive, but no "
                    "dependency of the task runs there — the cascade "
                    "guards no data hazard",
                    severity="warning",
                )
    return result
