"""repro.analyze — whole-program static analysis for the repro codebase.

Four analysis families back the repo's determinism and correctness
guarantees *before anything runs*:

* **determinism** — AST lint against hidden global state (unseeded RNGs,
  wall-clock reads, hash-ordered set iteration, mutable defaults);
* **units** — a dataflow pass over ``_ms``/``_bytes``/``_count`` name
  suffixes that catches mixed-unit arithmetic, comparisons, assignments,
  calls, and returns;
* **intervals** — interval abstract interpretation of the PADD/PACC op
  DAGs proving every Montgomery intermediate stays within its register
  allocation, plus an independent re-derivation of the paper's §4.2
  register-liveness peaks (PADD 11 → 9, PACC 9 → 7);
* **plan** — pre-flight model checking of engine task graphs
  (:func:`check_plan`), run by the orchestration layers before every
  ``simulate``: cycles, unreachable tasks, FIFO-stream deadlocks,
  ``requires_alive`` cascade consistency.

CLI: ``python -m repro.analyze [paths...] [--json] [--list-rules]``;
exit 0 iff the tree is clean under the suppression baseline (shipped
empty — findings are fixed, not suppressed).
"""

from repro.analyze.baseline import (
    DEFAULT_BASELINE,
    Suppression,
    apply_baseline,
    load_baseline,
)
from repro.analyze.driver import (
    analyze_paths,
    analyze_source,
    collect_files,
    representative_plans,
)
from repro.analyze.finding import AnalysisReport, Finding
from repro.analyze.modelcheck import PlanCheckResult, PlanError, check_plan
from repro.analyze.registry import (
    FAMILIES,
    Rule,
    all_rules,
    rule_by_name,
    rule_names,
    rules_in_family,
)

__all__ = [
    "AnalysisReport",
    "DEFAULT_BASELINE",
    "FAMILIES",
    "Finding",
    "PlanCheckResult",
    "PlanError",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "check_plan",
    "collect_files",
    "load_baseline",
    "representative_plans",
    "rule_by_name",
    "rule_names",
    "rules_in_family",
]
