"""Analysis orchestration: run the families, apply the baseline, report.

The driver mirrors :mod:`repro.verify.driver`'s shape — one entry point
(:func:`analyze_paths`) that runs every requested family and returns one
:class:`~repro.analyze.finding.AnalysisReport` — but over *source and
program artifacts* instead of runtime results:

* ``determinism`` and ``units`` parse each Python file once and run
  their AST passes;
* ``intervals`` imports the kernel op DAGs and abstract-interprets them
  for every registered curve;
* ``plan`` pre-flight-checks *representative task plans built by the
  production emitters* (the batch scheduler and the MSM timeline
  emitters) — the same :func:`~repro.analyze.modelcheck.check_plan` the
  orchestration paths now call before every ``simulate``.

Heavy program imports stay inside the family functions so that importing
:mod:`repro.analyze` (as the engine's lazy pre-flight hook does) pulls in
nothing beyond the AST passes.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analyze import determinism, units
from repro.analyze.baseline import apply_baseline, load_baseline
from repro.analyze.finding import AnalysisReport, Finding
from repro.analyze.registry import FAMILIES


def default_root() -> Path:
    """The ``repro`` package directory — what a bare CLI run analyzes."""
    return Path(__file__).resolve().parent.parent


def collect_files(paths: list[Path]) -> list[Path]:
    """Python files under ``paths``, sorted for deterministic output."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ValueError(f"{path}: not a Python file or directory")
    return sorted(dict.fromkeys(files))


def _display_path(path: Path) -> str:
    """Path as reported in findings: cwd-relative when possible."""
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)


def analyze_source(
    source: str,
    path: str = "<source>",
    families: tuple[str, ...] = ("determinism", "units"),
) -> list[Finding]:
    """Run the source-scope families over one code string (test helper)."""
    tree = ast.parse(source, filename=path)
    findings: list[Finding] = []
    if "determinism" in families:
        findings.extend(determinism.lint(path, tree))
    if "units" in families:
        findings.extend(units.check_units(path, tree))
    return findings


def representative_plans() -> list[tuple[str, list]]:
    """Task plans from the production emitters, for the ``plan`` family.

    These are the shapes the orchestration layers actually submit: the
    batch scheduler's request interleaving and the MSM timeline's
    phase-barrier and per-window-overlap schedules.
    """
    from repro.core.msm_timeline import (
        GpuPhaseMs,
        MsmTimingBreakdown,
        emit_msm_tasks,
    )
    from repro.curves.params import curve_by_name
    from repro.engine.batch import BatchMsmScheduler, MsmRequest
    from repro.engine.resources import system_resources
    from repro.gpu.cluster import MultiGpuSystem

    system = MultiGpuSystem(4)
    curve = curve_by_name("BLS12-381")
    requests = [MsmRequest(f"req{i}", curve, 1 << 14) for i in range(3)]
    scheduler = BatchMsmScheduler(system, gpu_groups=2, policy="least-loaded")
    batch_tasks, _, _ = scheduler.emit_tasks(requests)
    plans = [("<batch-msm plan>", batch_tasks)]

    breakdown = MsmTimingBreakdown(
        per_gpu=[GpuPhaseMs(1.0, 4.0, 0.5, 0.8, 0.1) for _ in range(4)],
        cpu_reduce_raw_ms=6.0,
        visible_cpu_ms=2.0,
        window_reduce_ms=0.5,
        coordination_ms=0.2,
        num_windows=4,
    )
    resources = system_resources(4)
    for mode in ("legacy", "overlap"):
        plans.append(
            (
                f"<msm {mode} plan>",
                emit_msm_tasks(breakdown, resources, mode=mode),
            )
        )
    return plans


def _analyze_plan_family() -> tuple[list[Finding], list[str]]:
    from repro.analyze.modelcheck import PlanError, check_plan

    findings: list[Finding] = []
    checks: list[str] = []
    for label, tasks in representative_plans():
        try:
            result = check_plan(tasks, label=label)
        except PlanError as exc:
            findings.extend(exc.findings)
        else:
            findings.extend(result.warnings)
            if not result.warnings:
                checks.append(
                    f"plan: {label} — {result.tasks} tasks pass pre-flight"
                )
    return findings, checks


def analyze_paths(
    paths: list[Path] | None = None,
    families: tuple[str, ...] | None = None,
    baseline: Path | None = None,
) -> AnalysisReport:
    """Run the requested analysis families and return the report.

    ``paths`` defaults to the installed ``repro`` package; ``families``
    defaults to all four; ``baseline`` defaults to the packaged
    (empty) suppression file.
    """
    selected = tuple(families) if families is not None else FAMILIES
    for family in selected:
        if family not in FAMILIES:
            raise ValueError(
                f"unknown family {family!r}; choose from {', '.join(FAMILIES)}"
            )
    report = AnalysisReport()
    findings: list[Finding] = []

    source_families = [f for f in selected if f in ("determinism", "units")]
    if source_families:
        files = collect_files(paths if paths is not None else [default_root()])
        report.files = len(files)
        for file_path in files:
            display = _display_path(file_path)
            tree = ast.parse(file_path.read_text(), filename=display)
            if "determinism" in selected:
                findings.extend(determinism.lint(display, tree))
            if "units" in selected:
                findings.extend(units.check_units(display, tree))
        for family in source_families:
            report.add_check(f"{family}: {len(files)} files linted")

    if "intervals" in selected:
        from repro.analyze.intervals import analyze_kernels

        interval_findings, interval_checks = analyze_kernels()
        findings.extend(interval_findings)
        report.checks.extend(interval_checks)

    if "plan" in selected:
        plan_findings, plan_checks = _analyze_plan_family()
        findings.extend(plan_findings)
        report.checks.extend(plan_checks)

    suppressions = load_baseline(baseline)
    active, suppressed = apply_baseline(findings, suppressions)
    report.findings = active
    report.suppressed = suppressed
    return report
