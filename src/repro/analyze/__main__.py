"""CLI for the static analyzer: ``python -m repro.analyze [paths...]``.

Exit status is 0 iff no *active* (unsuppressed) finding remains — the
contract ``make analyze`` and the verify fixtures rely on.  The CLI
deliberately measures no wall time (it would trip its own
``det-wall-clock`` rule when analyzing this package); timing lives in
``benchmarks/bench_analyze.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analyze.driver import analyze_paths, default_root
from repro.analyze.registry import FAMILIES, all_rules


def _list_rules() -> str:
    lines = []
    for family in FAMILIES:
        lines.append(f"{family}:")
        for rule in all_rules():
            if rule.family == family:
                lines.append(f"  {rule.name} [{rule.scope}]")
                lines.append(f"      {rule.description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static analysis: determinism lint, unit-consistency "
        "dataflow, interval abstract interpretation of the kernel DAGs, "
        "and pre-flight task-plan model checking.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="Python files or directories to analyze "
        "(default: the repro package)",
    )
    parser.add_argument(
        "--families",
        help="comma-separated subset of: " + ", ".join(FAMILIES),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="suppression baseline JSON (default: the packaged, empty one)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        help="write the report to this file (text status still printed)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list every discharged check",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    families = None
    if args.families:
        families = tuple(f.strip() for f in args.families.split(",") if f.strip())

    report = analyze_paths(
        paths=args.paths or [default_root()],
        families=families,
        baseline=args.baseline,
    )
    rendered = report.to_json() if args.json else report.render(args.verbose)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(rendered + "\n")
        print(report.render(verbose=False).splitlines()[-1])
    else:
        print(rendered)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
