"""Interval abstract interpretation over the kernel op DAGs (paper §4.2–4.3).

The GPU kernels in :mod:`repro.kernels` never materialise values wider
than their register allocation assumes: a field element is ``num_limbs``
32-bit words, a tensor-core accumulator is one uint32, and a modular-sub
intermediate may briefly reach ``2p``.  Those are *claims*; this module
proves them with the standard interval domain.

An abstract value is an integer interval ``[lo, hi]`` (⊥ is never needed:
every variable the DAGs touch is a reduced field element, so the entry
state maps everything to ``[0, p-1]``).  Transfer functions follow the
concrete kernels:

* ``mul`` is a full SOS Montgomery multiplication.  Its intermediates are
  checked, not assumed: the schoolbook product ``c ≤ hi_a·hi_b``, the
  reduction multiplier ``m ≤ R-1``, the tensor-core product
  ``m·n ≤ (R-1)·p``, the sum ``t = c + m·n`` which must stay under
  ``2·p·R`` so that ``u = t/R < 2p`` needs exactly one conditional
  subtraction.  ``p < R`` makes this discharge for every registered
  curve; a synthetic modulus with ``p ≥ R`` fails it (see the
  ``interval-overflow`` fixture).
* ``sub`` is ``a - b + (b>a ? p : 0)``: intermediate in
  ``[lo_a - hi_b, hi_a + p - 1]``, which must fit ``num_limbs`` words.
* ``add`` is ``a + b`` with one conditional subtraction: intermediate
  ``≤ hi_a + hi_b``, must fit ``num_limbs`` words and be ``< 2p``.

The same module also *re-derives the register-liveness peaks from
scratch*.  The repo now carries three independent implementations of the
§4.2 accounting — :func:`repro.kernels.dag.peak_live` (incremental
simulation), :mod:`repro.verify.schedule` (interval sweep), and
:func:`derive_register_peaks` here (per-position live-set reconstruction,
quadratic and brutally simple).  This one deliberately imports neither of
the others; agreement of three codebases with the paper's published
figures (PADD 11 → 9, PACC 9 → 7) is the strongest evidence short of an
SASS dump.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.finding import Finding
from repro.curves.params import CurveParams, list_curves
from repro.fields.limbs import WORD_BITS
from repro.kernels.dag import OpDag, build_pacc_dag, build_padd_dag
from repro.kernels.scheduler import find_optimal_schedule

#: the paper's §4.2 register-liveness figures: DAG -> (written, optimal)
PUBLISHED_PEAKS = {"PADD": (11, 9), "PACC": (9, 7)}

#: uint8 x uint8 products accumulate into uint32 on tensor cores
_TC_ACC_BITS = 32


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` — the abstract value."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        corners = (
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        )
        return Interval(min(corners), max(corners))

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def bits(self) -> int:
        """Significant bits of the largest magnitude in the interval."""
        return max(abs(self.lo), abs(self.hi)).bit_length()


def field_interval(p: int) -> Interval:
    """The abstract value of a reduced field element mod ``p``."""
    return Interval(0, p - 1)


@dataclass(frozen=True)
class MontMulBounds:
    """Intermediate bounds of one Montgomery multiplication ``a * b``."""

    product: Interval  # c = a * b, schoolbook on CUDA cores
    reducer: Interval  # m = -c * n^{-1} mod R
    reduction_product: Interval  # m * n, the tensor-core product
    sum_t: Interval  # t = c + m * n
    pre_subtract: Interval  # u = t / R, before the conditional subtraction


def montmul_bounds(a: Interval, b: Interval, p: int, r: int) -> MontMulBounds:
    """Interval transfer function of SOS Montgomery multiplication."""
    c = a * b
    m = Interval(0, r - 1)
    mn = m * Interval(p, p)
    t = c + mn
    # u = t / R exactly (the low R-sized half cancels by construction); its
    # sound interval bound is floor division of the endpoints.
    u = Interval(t.lo // r, t.hi // r)
    return MontMulBounds(
        product=c, reducer=m, reduction_product=mn, sum_t=t, pre_subtract=u
    )


def interpret_dag(
    dag: OpDag, curve: CurveParams, label: str | None = None
) -> list[Finding]:
    """Prove every intermediate of ``dag`` respects its Montgomery bounds.

    Walks the op list in written order, mapping each variable to an
    interval; every variable starts (and, post-reduction, stays) at
    ``[0, p-1]``.  Returns the bound violations as findings — empty for
    all registered curves.
    """
    p = curve.p
    r = 1 << (WORD_BITS * curve.num_limbs)
    path = label or f"<{dag.name} dag @ {curve.name}>"
    findings: list[Finding] = []
    env: dict[str, Interval] = {}

    def value_of(name: str) -> Interval:
        if name not in env:
            env[name] = field_interval(p)  # entry / loaded operand
        return env[name]

    def overflow(line: int, message: str) -> None:
        findings.append(Finding("interval-overflow", path, line, message))

    for line, op in enumerate(dag.ops, start=1):
        a = value_of(op.inputs[0])
        b = value_of(op.inputs[1])
        if op.kind == "mul":
            bounds = montmul_bounds(a, b, p, r)
            if bounds.product.hi > (r - 1) * (r - 1):
                overflow(
                    line,
                    f"{op.name}: product needs {bounds.product.bits()} bits, "
                    f"over the 2x{curve.num_limbs}-limb double-width buffer",
                )
            if bounds.sum_t.hi >= 2 * p * r:
                overflow(
                    line,
                    f"{op.name}: reduction sum t = c + m*n reaches "
                    f"{bounds.sum_t.bits()} bits (>= 2pR); u = t/R would "
                    "exceed 2p and one conditional subtraction is not enough",
                )
            if bounds.pre_subtract.hi >= 2 * p:
                overflow(
                    line,
                    f"{op.name}: pre-subtraction residue u can reach "
                    f"{bounds.pre_subtract.hi}, >= 2p; the kernel's single "
                    "conditional subtraction cannot reduce it",
                )
            result = Interval(0, min(bounds.pre_subtract.hi, p - 1))
        elif op.kind == "sub":
            raw = (a - b) + Interval(0, p)  # conditional +p on borrow
            if raw.hi >= r:
                overflow(
                    line,
                    f"{op.name}: modular-sub intermediate needs "
                    f"{raw.bits()} bits, over the {curve.num_limbs}-limb "
                    "register allocation",
                )
            result = field_interval(p)
        elif op.kind == "add":
            raw = a + b
            if raw.hi >= r:
                overflow(
                    line,
                    f"{op.name}: modular-add intermediate needs "
                    f"{raw.bits()} bits, over the {curve.num_limbs}-limb "
                    "register allocation",
                )
            if raw.hi >= 2 * p:
                overflow(
                    line,
                    f"{op.name}: sum can reach {raw.hi}, >= 2p; one "
                    "conditional subtraction cannot reduce it",
                )
            result = Interval(0, min(raw.hi, p - 1))
        else:
            overflow(line, f"{op.name}: unknown op kind {op.kind!r}")
            result = field_interval(p)
        env[op.output] = result
    return findings


def tc_accumulator_findings(curve: CurveParams) -> list[Finding]:
    """Check the §4.3 tensor-core claim: byte-product accumulators fit u32.

    One output element of the ``m x n`` byte-matrix product accumulates at
    most ``num_bytes`` terms of ``255 * 255`` — the same figure
    :func:`repro.kernels.montmul_tc.max_significant_bits` reports, derived
    here from the interval product rather than trusted.
    """
    num_bytes = curve.num_limbs * (WORD_BITS // 8)
    byte = Interval(0, 255)
    acc = Interval(0, 0)
    for _ in range(num_bytes):
        acc = acc + byte * byte
    path = f"<TC accumulator @ {curve.name}>"
    if acc.bits() > _TC_ACC_BITS:
        return [
            Finding(
                "interval-tc-accumulator", path, 1,
                f"{num_bytes}-byte operands accumulate to {acc.bits()} "
                f"bits, over the uint32 MMA accumulator",
            )
        ]
    return []


# -- independent register-peak re-derivation ------------------------------


def _live_profile(dag: OpDag, order: list[str]) -> list[int]:
    """Live big-integer count at every point of an execution order.

    Per-position reconstruction: for each boundary ``i`` (after the first
    ``i`` ops) the live set is recomputed *from scratch* as::

        {v : materialised at index < i  and  used at index >= i or end-live}

    where start-live variables materialise before index 0, produced
    variables at their producing op, and loaded operands at their first
    use.  The during-op count at op ``i`` adds the operands materialising
    there plus one fresh destination register unless the op is in-place.
    Quadratic in the op count and free of incremental state — nothing to
    get subtly wrong, which is the point: this must *independently* agree
    with ``kernels.dag.peak_live`` and ``verify.schedule``.
    """
    name_to_op = {op.name: op for op in dag.ops}
    ops = [name_to_op[n] for n in order]
    produced = {op.output: idx for idx, op in enumerate(ops)}
    first_use: dict[str, int] = {}
    use_indices: dict[str, list[int]] = {}
    for idx, op in enumerate(ops):
        for v in op.inputs:
            first_use.setdefault(v, idx)
            use_indices.setdefault(v, []).append(idx)

    def materialised_at(v: str) -> int:
        if v in dag.live_at_start:
            return -1
        if v in produced:
            return produced[v]
        return first_use.get(v, len(ops))

    universe = set(dag.live_at_start) | set(produced) | set(first_use)

    def live_after(i: int) -> int:
        """Live count at the boundary after ops[0..i-1] have run."""
        return sum(
            1
            for v in universe
            if materialised_at(v) < i
            and (
                v in dag.live_at_end
                or any(u >= i for u in use_indices.get(v, []))
            )
        )

    profile = [live_after(0)]
    for i, op in enumerate(ops):
        entering = sum(1 for v in set(op.inputs) if materialised_at(v) == i)
        fresh_dst = 0 if op.inplace else 1
        profile.append(live_after(i) + entering + fresh_dst)
        profile.append(live_after(i + 1))
    return profile


def derive_register_peaks() -> tuple[dict[str, tuple[int, int]], list[Finding]]:
    """Re-derive (written, optimal) register peaks for PADD and PACC.

    Returns the derived figures and the ``interval-register-peak``
    findings for any disagreement with the paper's published values.
    """
    derived: dict[str, tuple[int, int]] = {}
    findings: list[Finding] = []
    builders = {"PADD": build_padd_dag, "PACC": build_pacc_dag}
    for dag_name in ("PADD", "PACC"):
        dag = builders[dag_name]()
        written_order = [op.name for op in dag.ops]
        optimal_order = list(find_optimal_schedule(dag).order)
        written = max(_live_profile(dag, written_order))
        optimal = max(_live_profile(dag, optimal_order))
        derived[dag_name] = (written, optimal)
        expected = PUBLISHED_PEAKS[dag_name]
        if (written, optimal) != expected:
            findings.append(
                Finding(
                    "interval-register-peak", f"<{dag_name} dag>", 0,
                    f"derived peaks (written={written}, optimal={optimal}) "
                    f"disagree with the paper's "
                    f"(written={expected[0]}, optimal={expected[1]})",
                )
            )
    return derived, findings


def analyze_kernels() -> tuple[list[Finding], list[str]]:
    """The full interval family: DAG bounds, TC accumulators, peaks.

    Returns (findings, discharged-check descriptions).
    """
    findings: list[Finding] = []
    checks: list[str] = []
    dags = {"PADD": build_padd_dag(), "PACC": build_pacc_dag()}
    for curve in list_curves():
        for dag_name, dag in dags.items():
            dag_findings = interpret_dag(dag, curve)
            findings.extend(dag_findings)
            if not dag_findings:
                checks.append(
                    f"interval: {dag_name}@{curve.name} — all "
                    f"{len(dag.ops)} ops within Montgomery bounds"
                )
        tc = tc_accumulator_findings(curve)
        findings.extend(tc)
        if not tc:
            num_bytes = curve.num_limbs * (WORD_BITS // 8)
            checks.append(
                f"interval: TC accumulator@{curve.name} — "
                f"{num_bytes}-byte product fits uint32"
            )
    derived, peak_findings = derive_register_peaks()
    findings.extend(peak_findings)
    for dag_name, (written, optimal) in sorted(derived.items()):
        if not any(f.rule == "interval-register-peak" and dag_name in f.path
                   for f in peak_findings):
            checks.append(
                f"interval: {dag_name} register peaks re-derived — "
                f"written={written}, optimal={optimal} (paper figures)"
            )
    return findings, checks
