"""Determinism linter: AST passes against nondeterminism sources.

The repo's headline guarantees — bit-exact recovery, byte-deterministic
Chrome traces, golden result files — only hold if no code path consults
hidden global state.  Four rules cover the ways Python lets that happen:

* ``det-unseeded-rng`` — module-level ``random.*`` / ``numpy.random.*``
  calls and seedless ``random.Random()`` / ``default_rng()`` draws
  consume process-global or OS-entropy state; every RNG in this codebase
  must be an explicit, seeded ``random.Random(seed)``.
* ``det-wall-clock`` — ``time.time()``, ``datetime.now()`` and friends
  read the host clock; all times here come from the simulated engine
  clock, so any wall-clock read is a modelling bug.
* ``det-set-iteration`` — ``set``/``frozenset`` iteration order depends
  on element hashes, and str hashing is salted per process
  (PYTHONHASHSEED), so iterating a set in an order-sensitive position
  breaks cross-process byte-determinism.  Iteration feeding an
  **order-insensitive reducer** (``sum``/``min``/``max``/``len``/``any``/
  ``all``/``set``/``frozenset``) or wrapped in ``sorted()`` is exempt;
  ``dict`` iteration is insertion-ordered and therefore deterministic,
  which is why the convention fix is ``dict.fromkeys(...)`` rather than
  ``sorted(...)`` where insertion order is the intended order.
* ``det-mutable-default`` — a ``[]``/``{}``/``set()`` default is shared
  across calls; state leaks between invocations.
* ``det-unstable-argsort`` — ``argsort`` without ``kind="stable"`` leaves
  the order of equal keys to the partitioning algorithm, which varies
  across numpy versions and platforms.  The batch MSM kernels group
  bucket members by a stable argsort precisely so the vectorized path
  accumulates points in the same order as the scalar loops — an unstable
  sort silently voids that bit-exactness contract.

The RNG rule also understands the from-import spellings
(``from random import Random``, ``from numpy.random import default_rng``)
so the numpy batch modules can't smuggle in a seedless generator under a
bare name.

Inference is local and syntactic on purpose: a name counts as a set only
when the same function assigned it a set-valued expression.  That keeps
the pass fast and the false-positive rate at zero on this tree, at the
cost of missing sets that cross function boundaries — the suppression
baseline exists for the day a rule needs a documented exception.
"""

from __future__ import annotations

import ast

from repro.analyze.finding import Finding

#: module-level random functions that consume the global Mersenne state
_RANDOM_MODULE_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "vonmisesvariate", "paretovariate",
        "weibullvariate", "lognormvariate", "getrandbits", "randbytes",
        "seed",
    }
)

#: numpy.random legacy functions using the hidden global BitGenerator
_NUMPY_RANDOM_FNS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "choice",
        "shuffle", "permutation", "uniform", "normal", "standard_normal",
        "seed", "bytes",
    }
)

#: (module, attribute) pairs that read the host clock
_WALL_CLOCK = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: callables whose result does not depend on argument order
_ORDER_INSENSITIVE = frozenset(
    {"sum", "min", "max", "len", "any", "all", "set", "frozenset", "sorted"}
)

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` as a string, None for non-trivial expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST, set_names: frozenset[str]) -> bool:
    """Syntactic evidence that ``node`` evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = _dotted(node.func)
        if callee in ("set", "frozenset"):
            return True
        # set-returning methods on an expression already known to be a set
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
            "copy",
        ):
            return _is_set_expr(node.func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _scope_walk(root: ast.AST):
    """Walk ``root`` without descending into nested scopes.

    Name bindings in a nested function or class body belong to that
    scope, not to ``root``'s — a dataclass field annotated ``frozenset``
    must not make a same-named parameter elsewhere look like a set.
    """
    pending = [root]
    while pending:
        node = pending.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            pending.append(child)


def _local_set_names(scope: ast.AST) -> frozenset[str]:
    """Names assigned a set-valued expression within ``scope`` itself.

    One fixpoint-free pass is enough for the syntactic forms we track
    (chains like ``a = set(...); b = a | other`` resolve in order).
    Closure-captured sets of an enclosing scope are deliberately not
    tracked: local, syntactic inference keeps false positives at zero.
    """
    names: set[str] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(
            node.value, frozenset(names)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value, frozenset(names)) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
    return frozenset(names)


def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _bare_rng_imports(tree: ast.AST) -> frozenset[str]:
    """Local names bound to ``random.Random`` / ``numpy.random.default_rng``
    via from-imports, so seedless calls under bare names are still caught."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        for alias in node.names:
            if (node.module == "random" and alias.name == "Random") or (
                node.module in ("numpy.random", "numpy")
                and alias.name == "default_rng"
            ):
                names.add(alias.asname or alias.name)
    return frozenset(names)


def _check_rng(path: str, tree: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    bare_rngs = _bare_rng_imports(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _dotted(node.func)
        if callee is None:
            continue
        if callee in bare_rngs and not node.args and not node.keywords:
            findings.append(
                Finding(
                    "det-unseeded-rng", path, node.lineno,
                    f"{callee}() without a seed draws OS entropy; pass an "
                    "explicit seed",
                )
            )
        elif callee == "random.Random" and not node.args and not node.keywords:
            findings.append(
                Finding(
                    "det-unseeded-rng", path, node.lineno,
                    "random.Random() without a seed draws OS entropy; pass "
                    "an explicit seed",
                )
            )
        elif callee.split(".", 1)[0] == "random" and callee.count(".") == 1:
            fn = callee.split(".")[1]
            if fn in _RANDOM_MODULE_FNS:
                findings.append(
                    Finding(
                        "det-unseeded-rng", path, node.lineno,
                        f"random.{fn}() uses the process-global RNG; use a "
                        "seeded random.Random instance",
                    )
                )
        elif callee.endswith(".random.default_rng") and not node.args:
            findings.append(
                Finding(
                    "det-unseeded-rng", path, node.lineno,
                    "default_rng() without a seed draws OS entropy; pass an "
                    "explicit seed",
                )
            )
        elif ".random." in callee:
            head, fn = callee.rsplit(".", 1)
            if head.endswith(".random") and fn in _NUMPY_RANDOM_FNS:
                findings.append(
                    Finding(
                        "det-unseeded-rng", path, node.lineno,
                        f"{callee}() uses numpy's hidden global generator; "
                        "construct a seeded Generator instead",
                    )
                )
    return findings


def _check_wall_clock(path: str, tree: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _dotted(node.func)
        if callee is None or "." not in callee:
            continue
        head, fn = callee.rsplit(".", 1)
        base = head.rsplit(".", 1)[-1]
        if (base, fn) in _WALL_CLOCK:
            findings.append(
                Finding(
                    "det-wall-clock", path, node.lineno,
                    f"{callee}() reads the host clock; all times must come "
                    "from the simulated engine clock",
                )
            )
    return findings


def _check_set_iteration(path: str, tree: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    parents = _parent_map(tree)
    scopes: list[ast.AST] = [
        n for n in ast.walk(tree) if isinstance(n, (ast.Module, *_SCOPE_NODES))
    ]

    def flag(node: ast.AST, what: str) -> None:
        findings.append(
            Finding(
                "det-set-iteration", path, node.lineno,
                f"{what} iterates a set whose order is hash-dependent; "
                "wrap in sorted() or build with dict.fromkeys()",
            )
        )

    seen: set[ast.AST] = set()
    for scope in scopes:
        set_names = _local_set_names(scope)
        for node in _scope_walk(scope):
            if node in seen:
                continue
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, set_names):
                    seen.add(node)
                    flag(node, "for statement")
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                first = node.generators[0]
                if not _is_set_expr(first.iter, set_names):
                    continue
                if isinstance(node, ast.GeneratorExp):
                    parent = parents.get(node)
                    if (
                        isinstance(parent, ast.Call)
                        and _dotted(parent.func) in _ORDER_INSENSITIVE
                    ):
                        continue  # sum(1 for v in set(...)) et al. are fine
                seen.add(node)
                kind = {
                    ast.ListComp: "list comprehension",
                    ast.DictComp: "dict comprehension",
                    ast.GeneratorExp: "generator expression",
                }[type(node)]
                flag(node, kind)
            elif isinstance(node, ast.Starred) and _is_set_expr(
                node.value, set_names
            ):
                seen.add(node)
                flag(node, "starred unpacking")
    return findings


def _check_mutable_default(path: str, tree: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _dotted(default.func) in ("list", "dict", "set")
                and not default.args
                and not default.keywords
            )
            if mutable:
                findings.append(
                    Finding(
                        "det-mutable-default", path, default.lineno,
                        f"function {node.name!r} has a mutable default "
                        "argument shared across calls; default to None",
                    )
                )
    return findings


#: sort kinds numpy documents as stable (mergesort is an alias of stable)
_STABLE_SORT_KINDS = frozenset({"stable", "mergesort"})


def _check_unstable_argsort(path: str, tree: ast.AST) -> list[Finding]:
    """Flag ``argsort`` calls that do not pin a stable sort kind.

    The vectorized MSM kernels replay the scalar loops' accumulation
    order by grouping bucket members with a stable argsort; the default
    introsort breaks ties in an order that changes across numpy builds,
    so any unpinned ``argsort`` is a latent bit-exactness bug.
    """
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _dotted(node.func)
        if callee is None or callee.rsplit(".", 1)[-1] != "argsort":
            continue
        kind = next(
            (kw.value for kw in node.keywords if kw.arg == "kind"), None
        )
        if (
            isinstance(kind, ast.Constant)
            and kind.value in _STABLE_SORT_KINDS
        ):
            continue
        findings.append(
            Finding(
                "det-unstable-argsort", path, node.lineno,
                "argsort without kind='stable' leaves equal-key order to "
                "the partitioning algorithm (varies across numpy builds); "
                "pass kind='stable' to keep batch results bit-exact",
            )
        )
    return findings


def lint(path: str, tree: ast.AST) -> list[Finding]:
    """Run every determinism rule over one parsed module."""
    return (
        _check_rng(path, tree)
        + _check_wall_clock(path, tree)
        + _check_set_iteration(path, tree)
        + _check_mutable_default(path, tree)
        + _check_unstable_argsort(path, tree)
    )
