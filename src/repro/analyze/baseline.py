"""Per-rule suppression baseline for the static analyzer.

A baseline is a JSON file listing findings that are *known and accepted*;
matched findings are reported as suppressed and do not fail the run.  The
repo ships an **empty** baseline (``src/repro/analyze/baseline.json``) —
the tree is seed-clean and must stay that way; the mechanism exists so a
future PR that introduces a deliberate exception can record it explicitly
instead of weakening a rule.

Matching is structural, not positional: a suppression names a rule and a
path *suffix* (so baselines survive checkouts at different roots), plus
optionally a line and a message substring.  Unknown rule names are
rejected at load time — a typo'd suppression that silently matches
nothing is worse than an error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analyze.finding import Finding
from repro.analyze.registry import rule_names

#: the packaged default baseline (empty — the tree is seed-clean)
DEFAULT_BASELINE = Path(__file__).with_name("baseline.json")


@dataclass(frozen=True)
class Suppression:
    """One accepted finding: rule + path suffix (+ optional line/message)."""

    rule: str
    path: str
    line: int | None = None
    contains: str | None = None

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        if not finding.path.endswith(self.path):
            return False
        if self.line is not None and finding.line != self.line:
            return False
        if self.contains is not None and self.contains not in finding.message:
            return False
        return True


def load_baseline(path: str | Path | None = None) -> tuple[Suppression, ...]:
    """Load and validate a baseline file (default: the packaged one)."""
    baseline_path = Path(path) if path is not None else DEFAULT_BASELINE
    data = json.loads(baseline_path.read_text())
    entries = data.get("suppressions")
    if not isinstance(entries, list):
        raise ValueError(
            f"{baseline_path}: baseline must carry a 'suppressions' list"
        )
    known = set(rule_names())
    suppressions = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "rule" not in entry or "path" not in entry:
            raise ValueError(
                f"{baseline_path}: suppression #{i} needs 'rule' and 'path'"
            )
        if entry["rule"] not in known:
            raise ValueError(
                f"{baseline_path}: suppression #{i} names unknown rule "
                f"{entry['rule']!r}"
            )
        suppressions.append(
            Suppression(
                rule=entry["rule"],
                path=entry["path"],
                line=entry.get("line"),
                contains=entry.get("contains"),
            )
        )
    return tuple(suppressions)


def apply_baseline(
    findings: list[Finding], suppressions: tuple[Suppression, ...]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (active, suppressed) under the baseline."""
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        if any(s.matches(finding) for s in suppressions):
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed
