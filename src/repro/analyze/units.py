"""Unit-consistency dataflow: track ``_ms``/``_bytes``/``_count`` suffixes.

The codebase encodes physical units in names — ``duration_ms``,
``size_bytes``, ``window_count`` — because everything is plain ``float``/
``int`` at runtime.  That convention is only as strong as the weakest
assignment, so this pass walks each scope in source order, propagates a
unit for every name it can, and reports the places where units meet that
should never meet: ``ms + sec``, ``ms < count``, a ``*_bytes`` name bound
to a millisecond value, a millisecond argument passed to a ``*_count``
parameter, or a ``*_ms`` function returning bytes.

The lattice is deliberately coarse — a value is either a *known unit* or
``unknown`` — and the transfer functions err toward ``unknown`` so the
pass cannot cry wolf:

* ``unit ± unit`` keeps the unit; ``unit ± literal`` keeps the unit
  (offsets); ``unit ± different-unit`` is the ``unit-mixed-arith``
  finding.
* ``unit * literal`` and ``unit / literal`` go to ``unknown`` — that is
  the unit-*conversion* idiom (``seconds * 1e3``), exactly the operation
  the suffix can no longer describe.
* ``unit * unit`` and ``unit / unit`` go to ``unknown`` (a rate or an
  area, not either operand's unit); ``unit * unknown`` keeps the unit
  (scaling by a dimensionless factor).

Only *known vs known* disagreements are reported; ``unknown`` never
participates in a finding.
"""

from __future__ import annotations

import ast

from repro.analyze.finding import Finding

#: name suffix -> canonical unit
_SUFFIXES = {
    "_ms": "ms",
    "_ns": "ns",
    "_us": "us",
    "_sec": "sec",
    "_secs": "sec",
    "_seconds": "sec",
    "_bytes": "bytes",
    "_count": "count",
    "_counts": "count",
}

#: builtins transparent to units (unit of their first argument)
_UNIT_TRANSPARENT_CALLS = frozenset({"abs", "min", "max", "sum", "round"})


def unit_of_name(name: str) -> str | None:
    """Unit implied by a name's suffix, or None."""
    for suffix in sorted(_SUFFIXES, key=len, reverse=True):
        if name.endswith(suffix) and len(name) > len(suffix):
            return _SUFFIXES[suffix]
    return None


def _is_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_literal(node.operand)
    return False


class _ScopeChecker:
    """Run the dataflow over one scope (module body or function body)."""

    def __init__(self, path: str, signatures: dict[str, list[str]]) -> None:
        self.path = path
        self.signatures = signatures
        self.env: dict[str, str] = {}
        self.findings: list[Finding] = []
        self.return_unit: str | None = None
        self.func_name = "<module>"

    # -- inference --------------------------------------------------------

    def infer(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, unit_of_name(node.id))
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            then = self.infer(node.body)
            other = self.infer(node.orelse)
            return then if then == other else None
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name):
                if callee.id in _UNIT_TRANSPARENT_CALLS and node.args:
                    return self.infer(node.args[0])
                return unit_of_name(callee.id)
            if isinstance(callee, ast.Attribute):
                return unit_of_name(callee.attr)
            return None
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left)
            right = self.infer(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                if left is not None and right is not None:
                    return left if left == right else None
                if left is not None and _is_literal(node.right):
                    return left
                if right is not None and _is_literal(node.left):
                    return right
                return left if right is None else right
            if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)):
                if _is_literal(node.left) or _is_literal(node.right):
                    return None  # unit conversion: the suffix no longer holds
                if left is not None and right is not None:
                    return None  # rate/product: a new unit entirely
                return left if right is None else right
            return None
        return None

    # -- findings ---------------------------------------------------------

    def _mixed(self, rule: str, node: ast.AST, detail: str) -> None:
        self.findings.append(Finding(rule, self.path, node.lineno, detail))

    def _check_expr(self, expr: ast.AST) -> None:
        """Report mixed-unit arithmetic/comparisons/calls inside ``expr``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = self.infer(node.left)
                right = self.infer(node.right)
                if left is not None and right is not None and left != right:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    self._mixed(
                        "unit-mixed-arith", node,
                        f"'{op}' mixes {left} and {right}",
                    )
            elif isinstance(node, ast.Compare):
                prev_node: ast.AST = node.left
                prev = self.infer(node.left)
                for comparator in node.comparators:
                    cur = self.infer(comparator)
                    if prev is not None and cur is not None and prev != cur:
                        self._mixed(
                            "unit-mixed-compare", node,
                            f"comparison mixes {prev} and {cur}",
                        )
                    prev_node, prev = comparator, cur
                del prev_node
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                params = self.signatures.get(node.func.id)
                if params is None:
                    continue
                for param, arg in zip(params, node.args):
                    expected = unit_of_name(param)
                    actual = self.infer(arg)
                    if (
                        expected is not None
                        and actual is not None
                        and expected != actual
                    ):
                        self._mixed(
                            "unit-mixed-call", node,
                            f"argument for {param!r} ({expected}) has unit "
                            f"{actual}",
                        )
                for kw in node.keywords:
                    if kw.arg is None:
                        continue
                    expected = unit_of_name(kw.arg)
                    actual = self.infer(kw.value)
                    if (
                        expected is not None
                        and actual is not None
                        and expected != actual
                    ):
                        self._mixed(
                            "unit-mixed-call", node,
                            f"argument for {kw.arg!r} ({expected}) has unit "
                            f"{actual}",
                        )

    # -- statement walk ---------------------------------------------------

    def _bind(self, target: ast.AST, unit: str | None, node: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        declared = unit_of_name(target.id)
        if declared is not None and unit is not None and declared != unit:
            self._mixed(
                "unit-mixed-assign", node,
                f"{target.id!r} ({declared}) assigned a {unit} value",
            )
        self.env[target.id] = declared or unit  # suffix wins when present

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own checker
        if isinstance(stmt, ast.Assign):
            self._check_expr(stmt.value)
            unit = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, unit, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._check_expr(stmt.value)
            self._bind(stmt.target, self.infer(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._check_expr(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and isinstance(
                stmt.target, ast.Name
            ):
                declared = self.env.get(
                    stmt.target.id, unit_of_name(stmt.target.id)
                )
                unit = self.infer(stmt.value)
                if (
                    declared is not None
                    and unit is not None
                    and declared != unit
                    and not _is_literal(stmt.value)
                ):
                    op = "+=" if isinstance(stmt.op, ast.Add) else "-="
                    self._mixed(
                        "unit-mixed-arith", stmt,
                        f"'{op}' mixes {declared} and {unit}",
                    )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value)
                expected = unit_of_name(self.func_name)
                actual = self.infer(stmt.value)
                if (
                    expected is not None
                    and actual is not None
                    and expected != actual
                ):
                    self._mixed(
                        "unit-return", stmt,
                        f"{self.func_name!r} ({expected}) returns a "
                        f"{actual} value",
                    )
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._check_expr(child)
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if isinstance(inner, list):
                    self.run([s for s in inner if isinstance(s, ast.stmt)])
            for handler in getattr(stmt, "handlers", []):
                self.run(handler.body)


def _collect_signatures(tree: ast.AST) -> dict[str, list[str]]:
    """Module-level function name -> positional parameter names."""
    signatures: dict[str, list[str]] = {}
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = [a.arg for a in node.args.posonlyargs + node.args.args]
            signatures[node.name] = params
    return signatures


def check_units(path: str, tree: ast.AST) -> list[Finding]:
    """Run the unit-consistency dataflow over one parsed module."""
    signatures = _collect_signatures(tree)
    findings: list[Finding] = []

    module_checker = _ScopeChecker(path, signatures)
    module_checker.run([s for s in tree.body if isinstance(s, ast.stmt)])
    findings.extend(module_checker.findings)

    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        checker = _ScopeChecker(path, signatures)
        checker.func_name = node.name
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            unit = unit_of_name(arg.arg)
            if unit is not None:
                checker.env[arg.arg] = unit
        checker.run(node.body)
        findings.extend(checker.findings)
    return findings
