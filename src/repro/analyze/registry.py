"""The rule registry: every analysis rule, its family, and its scope.

Rules are declared statically so the catalog is inspectable without
running anything (``python -m repro.analyze --list-rules``), the baseline
loader can reject suppressions naming unknown rules, and DESIGN.md §12's
rule table has a single source of truth.

Two scopes exist:

* ``source`` rules run as AST passes over the Python files handed to the
  CLI (the determinism linter and the unit-consistency dataflow);
* ``program`` rules run over *imported artifacts* of the program itself —
  the kernel op DAGs under the interval abstract interpreter, and
  representative engine task graphs under the pre-flight model checker.
"""

from __future__ import annotations

from dataclasses import dataclass

#: rule families, in the order the driver runs them
FAMILIES = ("determinism", "units", "intervals", "plan")


@dataclass(frozen=True)
class Rule:
    """One registered analysis rule."""

    name: str
    family: str
    scope: str  # "source" | "program"
    description: str

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}")
        if self.scope not in ("source", "program"):
            raise ValueError(f"unknown scope {self.scope!r}")


_RULES = (
    # -- determinism linter (AST) -----------------------------------------
    Rule(
        "det-unseeded-rng",
        "determinism",
        "source",
        "module-level random.* / numpy.random.* calls and seedless "
        "random.Random() / default_rng() constructions draw from hidden "
        "global or OS-entropy state",
    ),
    Rule(
        "det-wall-clock",
        "determinism",
        "source",
        "wall-clock reads (time.time, time.perf_counter, datetime.now, "
        "...) leak host time into a simulated-clock codebase",
    ),
    Rule(
        "det-set-iteration",
        "determinism",
        "source",
        "iterating a set/frozenset in an order-sensitive position; "
        "str-hash randomisation makes the order vary across processes "
        "unless wrapped in sorted()",
    ),
    Rule(
        "det-mutable-default",
        "determinism",
        "source",
        "mutable default argument ([], {}, set(), list(), dict()) is "
        "shared across calls",
    ),
    Rule(
        "det-unstable-argsort",
        "determinism",
        "source",
        "argsort without kind='stable' leaves equal-key order to the "
        "partitioning algorithm; the vectorized batch kernels need "
        "stable grouping to stay bit-exact with the scalar loops",
    ),
    # -- unit-consistency dataflow (AST) ----------------------------------
    Rule(
        "unit-mixed-arith",
        "units",
        "source",
        "adding or subtracting values whose unit suffixes disagree "
        "(ms vs sec, ms vs bytes, ...)",
    ),
    Rule(
        "unit-mixed-compare",
        "units",
        "source",
        "comparing values whose unit suffixes disagree",
    ),
    Rule(
        "unit-mixed-assign",
        "units",
        "source",
        "assigning a value of one unit to a name suffixed with another",
    ),
    Rule(
        "unit-mixed-call",
        "units",
        "source",
        "passing a value of one unit to a parameter suffixed with another",
    ),
    Rule(
        "unit-return",
        "units",
        "source",
        "returning a value whose unit disagrees with the function's own "
        "unit suffix",
    ),
    # -- interval abstract interpreter (program) --------------------------
    Rule(
        "interval-overflow",
        "intervals",
        "program",
        "an intermediate of the kernel op DAG exceeds its Montgomery "
        "bound (product, reduction sum, or pre-subtraction residue)",
    ),
    Rule(
        "interval-tc-accumulator",
        "intervals",
        "program",
        "a tensor-core byte-product accumulator can exceed uint32",
    ),
    Rule(
        "interval-register-peak",
        "intervals",
        "program",
        "the independently re-derived register-liveness peak disagrees "
        "with the paper's published figure",
    ),
    # -- pre-flight task-graph model checker (program) --------------------
    Rule(
        "plan-duplicate-task",
        "plan",
        "program",
        "two tasks share one name",
    ),
    Rule(
        "plan-unknown-dep",
        "plan",
        "program",
        "a task depends on a name no task in the plan carries",
    ),
    Rule(
        "plan-cycle",
        "plan",
        "program",
        "the dependency graph has a cycle; simulate() would abort after "
        "doing partial work",
    ),
    Rule(
        "plan-unreachable",
        "plan",
        "program",
        "a task can never become ready (it sits on or behind a cycle)",
    ),
    Rule(
        "plan-fifo-deadlock",
        "plan",
        "program",
        "under strict in-order (submission-order) stream semantics the "
        "plan deadlocks, even though the simulator's readiness reordering "
        "hides it",
    ),
    Rule(
        "plan-requires-alive-unknown",
        "plan",
        "program",
        "requires_alive names a resource that executes nothing in the "
        "plan; a typo here silently disables the death cascade",
    ),
    Rule(
        "plan-requires-alive-redundant",
        "plan",
        "program",
        "requires_alive lists the task's own executing resource",
    ),
    Rule(
        "plan-requires-alive-unrelated",
        "plan",
        "program",
        "requires_alive names a resource that neither the task nor its "
        "dependency closure ever executes on — the hazard guards nothing",
    ),
)

_BY_NAME = {rule.name: rule for rule in _RULES}


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in catalog order."""
    return _RULES


def rule_names() -> tuple[str, ...]:
    return tuple(rule.name for rule in _RULES)


def rule_by_name(name: str) -> Rule:
    if name not in _BY_NAME:
        raise KeyError(
            f"unknown rule {name!r}; choose from {', '.join(sorted(_BY_NAME))}"
        )
    return _BY_NAME[name]


def rules_in_family(family: str) -> tuple[Rule, ...]:
    if family not in FAMILIES:
        raise KeyError(
            f"unknown family {family!r}; choose from {', '.join(FAMILIES)}"
        )
    return tuple(rule for rule in _RULES if rule.family == family)
