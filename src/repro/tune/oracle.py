"""Bottleneck oracle: fold trace spans per phase into a roofline verdict.

ZKProphet's observation (PAPERS.md) is that GPU ZKP performance is
governed by a handful of *bottleneck dimensions* — a kernel is
atomics-bound, memory-bound, or sync-bound, and the profitable knob
depends on which.  The in-framework equivalent works over the
observability layer: every simulated run already produces a
:class:`~repro.observe.tracer.Tracer` whose spans carry the §3.2 phase
taxonomy (:func:`repro.observe.record.phase_category`), so the oracle is
a *fold*, not an instrumentation pass.

:func:`analyze_trace` groups spans by phase category and reduces each
group to a :class:`PhaseProfile`:

* ``busy_ms`` — summed span wall-time of the phase;
* ``envelope_ms`` — the phase's extent (last end minus first start);
* ``utilization`` — busy time over (makespan x participating tracks),
  the fraction of the run's track-time the phase consumed;
* ``parallel_efficiency`` — busy time over (envelope x tracks): 1.0
  means every participating track was saturated for the phase's whole
  extent, low values mean serialization or straggling inside the phase;
* ``bound`` — the bottleneck class, from the phase's semantics refined
  by the measured shape (:func:`classify_phase`).

The classification rules are deterministic and documented:

1. every phase starts from its semantic default — ``scatter`` is
   atomics-bound (Alg. 3 exists because bucket scatter hammers atomics),
   ``transfer`` and the EC-arithmetic phases are memory-bound (point
   limbs dominate traffic; ZKProphet's headline), ``launch``/``sync``/
   ``retry`` are sync-bound;
2. a multi-track phase whose ``parallel_efficiency`` drops below
   :data:`SYNC_EFFICIENCY_FLOOR` is re-classified **sync**-bound — its
   tracks spent most of the phase extent waiting on each other, so the
   binding resource is coordination, not the default;
3. with measured :class:`~repro.gpu.counters.EventCounters` attached
   (functional runs), a scatter whose atomics are almost entirely
   *shared*-memory atomics (fraction above
   :data:`SHARED_ATOMICS_MEMORY_FRACTION`) is re-classified
   **memory**-bound — the hierarchical scatter has already demoted the
   global-atomic bottleneck, leaving bandwidth as the binding term.

Reports are reconciled against the :mod:`repro.verify.observecheck`
invariants: the trace must pass :func:`~repro.verify.observecheck.verify_trace`
(and, when the producing timeline is supplied,
:func:`~repro.verify.observecheck.verify_trace_against_timeline`) before
its numbers are trusted; the audit outcome is part of the report.  The
JSON export is byte-deterministic (sorted keys, fixed rounding, spans
folded in sorted order) so oracle drift is caught by golden-report tests
the same way Chrome-trace drift already is.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.engine.timeline import Timeline
from repro.observe.tracer import Tracer
from repro.verify.observecheck import verify_trace, verify_trace_against_timeline

if TYPE_CHECKING:
    from repro.core.distmsm import DistMsmResult
    from repro.gpu.counters import EventCounters

__all__ = [
    "BOUND_ATOMICS",
    "BOUND_MEMORY",
    "BOUND_SYNC",
    "PhaseProfile",
    "BottleneckReport",
    "analyze_trace",
    "analyze_result",
    "classify_phase",
    "tracer_from_chrome",
]

BOUND_ATOMICS = "atomics"
BOUND_MEMORY = "memory"
BOUND_SYNC = "sync"

#: below this busy/(envelope x tracks) fraction, a multi-track phase is
#: re-classified sync-bound: its tracks mostly waited on each other
SYNC_EFFICIENCY_FLOOR = 0.5

#: above this shared/(shared+global) atomics fraction, a measured scatter
#: is re-classified memory-bound (the global-atomic bottleneck is gone)
SHARED_ATOMICS_MEMORY_FRACTION = 0.9

#: semantic default per phase category (first column of the roofline)
_DEFAULT_BOUND: dict[str, str] = {
    "scatter": BOUND_ATOMICS,
    "bucket-sum": BOUND_MEMORY,
    "bucket-reduce": BOUND_MEMORY,
    "window-reduce": BOUND_MEMORY,
    "reduce": BOUND_MEMORY,
    "transfer": BOUND_MEMORY,
    "compute": BOUND_MEMORY,
    "commit": BOUND_MEMORY,
    "verify": BOUND_MEMORY,
    "task": BOUND_MEMORY,
    "launch": BOUND_SYNC,
    "sync": BOUND_SYNC,
    "retry": BOUND_SYNC,
    "request": BOUND_SYNC,
    "shed": BOUND_SYNC,
}

#: categories that describe request life-cycles rather than resource
#: work; they are profiled but never elected primary bottleneck
_NON_RESOURCE_PHASES = frozenset({"request", "retry", "shed", "uncategorised"})

_ROUND = 9  # fixed rounding of every exported float (byte stability)


def _r(value: float) -> float:
    return round(value, _ROUND)


@dataclass(frozen=True)
class PhaseProfile:
    """One phase's folded span statistics and its bottleneck verdict."""

    phase: str
    bound: str
    busy_ms: float
    envelope_ms: float
    span_count: int
    tracks: tuple[str, ...]
    #: busy / (makespan x tracks): share of the run's track-time consumed
    utilization: float
    #: busy / (envelope x tracks): saturation inside the phase's extent
    parallel_efficiency: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "bound": self.bound,
            "busy_ms": _r(self.busy_ms),
            "envelope_ms": _r(self.envelope_ms),
            "span_count": self.span_count,
            "tracks": list(self.tracks),
            "utilization": _r(self.utilization),
            "parallel_efficiency": _r(self.parallel_efficiency),
        }


@dataclass(frozen=True)
class BottleneckReport:
    """The oracle's verdict on one traced run.

    ``phases`` are sorted by descending busy time (name-tie-broken);
    ``primary`` names the busiest *resource* phase — the dimension an
    auto-tuner should attack first.  ``audit_ok`` records whether the
    trace passed the :mod:`repro.verify.observecheck` invariants the
    report's numbers rest on.
    """

    subject: str
    makespan_ms: float
    phases: tuple[PhaseProfile, ...]
    track_utilization: tuple[tuple[str, float], ...]
    primary: str
    primary_bound: str
    audit_ok: bool
    audit_violations: int

    def phase(self, name: str) -> PhaseProfile | None:
        for profile in self.phases:
            if profile.phase == name:
                return profile
        return None

    def bound_ms(self) -> dict[str, float]:
        """Busy milliseconds per bottleneck class (resource phases only)."""
        totals: dict[str, float] = {}
        for profile in self.phases:
            if profile.phase in _NON_RESOURCE_PHASES:
                continue
            totals[profile.bound] = totals.get(profile.bound, 0.0) + profile.busy_ms
        return {k: _r(v) for k, v in sorted(totals.items())}

    def as_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "makespan_ms": _r(self.makespan_ms),
            "primary": self.primary,
            "primary_bound": self.primary_bound,
            "audit_ok": self.audit_ok,
            "audit_violations": self.audit_violations,
            "bound_ms": self.bound_ms(),
            "phases": [p.as_dict() for p in self.phases],
            "track_utilization": {
                track: _r(frac) for track, frac in self.track_utilization
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """One human-readable block (CLI / benchmark table material)."""
        lines = [
            f"bottleneck report for {self.subject!r}: makespan "
            f"{self.makespan_ms:.3f} ms, primary {self.primary} "
            f"({self.primary_bound}-bound), audit "
            f"{'ok' if self.audit_ok else f'{self.audit_violations} violation(s)'}"
        ]
        for p in self.phases:
            lines.append(
                f"  {p.phase:<14s} {p.bound:<8s} busy {p.busy_ms:10.3f} ms  "
                f"util {p.utilization:6.1%}  par-eff {p.parallel_efficiency:6.1%}  "
                f"({p.span_count} spans on {len(p.tracks)} tracks)"
            )
        return "\n".join(lines)


def classify_phase(
    phase: str,
    tracks: int,
    parallel_efficiency: float,
    counters: "EventCounters | None" = None,
) -> str:
    """The bottleneck class of one phase (rules in the module docstring)."""
    bound = _DEFAULT_BOUND.get(phase, BOUND_MEMORY)
    if phase in _NON_RESOURCE_PHASES:
        return bound
    if (
        phase == "scatter"
        and counters is not None
        and (counters.shared_atomics + counters.global_atomics) > 0
    ):
        shared_fraction = counters.shared_atomics / (
            counters.shared_atomics + counters.global_atomics
        )
        if shared_fraction > SHARED_ATOMICS_MEMORY_FRACTION:
            bound = BOUND_MEMORY
    if tracks >= 2 and parallel_efficiency < SYNC_EFFICIENCY_FLOOR:
        bound = BOUND_SYNC
    return bound


def analyze_trace(
    trace: Tracer,
    subject: str = "trace",
    timeline: Timeline | None = None,
    counters: "EventCounters | None" = None,
    strict: bool = False,
) -> BottleneckReport:
    """Fold one trace into a :class:`BottleneckReport`.

    ``timeline`` (when available) arms the full observecheck
    cross-examination — busy-time and makespan reconciliation against the
    engine schedule; without it only the trace-internal invariants run.
    ``counters`` refines the scatter classification on functional runs.
    ``strict=True`` raises instead of recording a failed audit.
    """
    audit = verify_trace(trace, subject=f"{subject} (oracle audit)")
    violations = len(audit.violations)
    if timeline is not None:
        cross = verify_trace_against_timeline(
            trace, timeline, subject=f"{subject} (oracle cross-audit)"
        )
        violations = max(violations, len(cross.violations))
    if strict and violations:
        raise ValueError(
            f"oracle refuses an unauditable trace for {subject!r}: "
            f"{violations} observecheck violation(s)"
        )

    makespan = trace.makespan_ms()
    by_phase: dict[str, list] = {}
    for span in sorted(
        trace.spans, key=lambda s: (s.start_ms, s.end_ms, s.track, s.name)
    ):
        by_phase.setdefault(span.cat or "uncategorised", []).append(span)

    profiles: list[PhaseProfile] = []
    for phase in sorted(by_phase):
        spans = by_phase[phase]
        busy = sum(s.duration_ms for s in spans)
        lo = min(s.start_ms for s in spans)
        hi = max(s.end_ms for s in spans)
        envelope = hi - lo
        tracks = tuple(sorted({s.track for s in spans}))
        track_time = makespan * len(tracks)
        phase_track_time = envelope * len(tracks)
        utilization = busy / track_time if track_time > 0 else 0.0
        efficiency = busy / phase_track_time if phase_track_time > 0 else 1.0
        profiles.append(
            PhaseProfile(
                phase=phase,
                bound=classify_phase(phase, len(tracks), efficiency, counters),
                busy_ms=busy,
                envelope_ms=envelope,
                span_count=len(spans),
                tracks=tracks,
                utilization=min(1.0, utilization),
                parallel_efficiency=min(1.0, efficiency),
            )
        )
    profiles.sort(key=lambda p: (-p.busy_ms, p.phase))

    busy_by_track = trace.busy_ms()
    track_utilization = tuple(
        (track, (busy_by_track[track] / makespan) if makespan > 0 else 0.0)
        for track in sorted(busy_by_track)
    )
    resource = [p for p in profiles if p.phase not in _NON_RESOURCE_PHASES]
    primary = resource[0] if resource else None
    return BottleneckReport(
        subject=subject,
        makespan_ms=makespan,
        phases=tuple(profiles),
        track_utilization=track_utilization,
        primary=primary.phase if primary else "",
        primary_bound=primary.bound if primary else "",
        audit_ok=violations == 0,
        audit_violations=violations,
    )


def analyze_result(
    result: "DistMsmResult",
    subject: str = "msm",
    strict: bool = False,
) -> BottleneckReport:
    """Oracle a finished :class:`~repro.core.distmsm.DistMsmResult`.

    Transcribes the result's timeline onto a fresh tracer (exactly what a
    traced run would have recorded) and analyzes it with the result's
    measured counters — the convenience entry the CLI and tuner use when
    no tracer was attached up front.
    """
    from repro.observe.record import record_timeline

    if result.timeline is None:
        raise ValueError("result carries no timeline to analyze")
    trace = Tracer(subject)
    record_timeline(trace, result.timeline)
    return analyze_trace(
        trace,
        subject=subject,
        timeline=result.timeline,
        counters=result.counters,
        strict=strict,
    )


def tracer_from_chrome(doc: Mapping[str, Any] | str) -> Tracer:
    """Rebuild a :class:`Tracer` from a Chrome trace-event export.

    The inverse of :func:`repro.observe.chrome.to_chrome_trace` for the
    event kinds the exporter emits (``M`` thread names, ``X`` complete
    spans, ``i`` instants, ``C`` counters; timestamps are microseconds).
    This is what lets the oracle run over the *committed* golden traces:
    classification drift then shows up as a golden-report diff.
    """
    if isinstance(doc, str):
        doc = json.loads(doc)
    meta = dict(doc.get("metadata", {}))
    trace = Tracer(str(meta.pop("label", "chrome")))
    trace.meta.update(meta)
    tracks: dict[int, str] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            tracks[event["tid"]] = event["args"]["name"]
    for event in doc.get("traceEvents", ()):
        ph = event.get("ph")
        if ph == "X":
            start = event["ts"] / 1000.0
            trace.add_span(
                event["name"],
                tracks.get(event["tid"], f"tid{event.get('tid', 0)}"),
                start,
                start + event.get("dur", 0.0) / 1000.0,
                cat=event.get("cat", ""),
                args=event.get("args"),
            )
        elif ph == "i":
            trace.instant(
                event["name"],
                tracks.get(event["tid"], f"tid{event.get('tid', 0)}"),
                event["ts"] / 1000.0,
                cat=event.get("cat", ""),
                args=event.get("args"),
            )
        elif ph == "C":
            trace.counter(
                event["name"], event["ts"] / 1000.0, event["args"]["value"]
            )
    return trace
