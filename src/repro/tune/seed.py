"""Write tuned plans into the serving layer's plan caches.

:mod:`repro.tune.search` finds a better config for one (system, curve,
n) workload; this module makes the *serving* stack actually route with
it.  The trick is in the cache key: :class:`~repro.serve.plancache.PlanCache`
keys entries by ``(curve, n, gpus, spec, config)`` where ``config`` is
the **serving engine's** config — so a tuned plan is built with a tuned
engine but installed under the key the server will look it up with
(:meth:`PlanCache.install`).  The server's data path is untouched: a
seeded shape is a plan-cache *hit* carrying tuned stage times, an
unseeded shape falls back to the analytic default exactly as before.

Three entry points:

* :func:`seed_server` — tunes every (workload x GPU-group-size) shape of
  one :class:`~repro.serve.server.MsmProofServer` and installs the
  winners into its plan cache;
* :func:`seed_cluster` — seeds every node's server of a
  :class:`~repro.cluster.router.ProofCluster`, plus the router's own
  control-plane cache (so routing *estimates* are tuned too — the router
  deliberately never shares planner memory with the data path);
* :func:`tuned_cached_plan` — the single-shape building block.

Every seeding returns a :class:`SeedReport` audit trail; the CLI
(``python -m repro tune``) and ``benchmarks/bench_tune.py`` render it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import CurveParams
from repro.gpu.cluster import MultiGpuSystem
from repro.serve.plancache import CachedPlan, PlanCache
from repro.tune.search import TunedPlan, tune_msm

if TYPE_CHECKING:
    from repro.cluster.router import ProofCluster
    from repro.serve.server import MsmProofServer

__all__ = ["SeedEntry", "SeedReport", "tuned_cached_plan", "seed_server", "seed_cluster"]

#: one workload shape: (curve, msm size)
Workload = tuple[CurveParams, int]


@dataclass(frozen=True)
class SeedEntry:
    """One installed plan: where it went and what it bought."""

    scope: str  # "server/group4", "node0/group2", "router/4gpu", ...
    plan: TunedPlan

    def as_dict(self) -> dict[str, Any]:
        return {"scope": self.scope, **self.plan.as_dict()}


@dataclass(frozen=True)
class SeedReport:
    """Audit trail of one seeding pass."""

    entries: tuple[SeedEntry, ...]

    @property
    def installed(self) -> int:
        return len(self.entries)

    @property
    def evaluations(self) -> int:
        return sum(e.plan.evaluations for e in self.entries)

    @property
    def best_speedup(self) -> float:
        return max((e.plan.speedup for e in self.entries), default=1.0)

    def as_dict(self) -> dict[str, Any]:
        return {
            "installed": self.installed,
            "evaluations": self.evaluations,
            "best_speedup": round(self.best_speedup, 6),
            "entries": [e.as_dict() for e in self.entries],
        }

    def render(self) -> str:
        lines = [
            f"seeded {self.installed} plan(s) "
            f"({self.evaluations} cost evaluations, best modelled speedup "
            f"{self.best_speedup:.3f}x)"
        ]
        for e in self.entries:
            p = e.plan
            lines.append(
                f"  {e.scope:<16s} {p.curve:<10s} n=2^{p.n.bit_length() - 1:<3d}"
                f" s={p.window_size:<3d} {p.config.scatter:<12s}"
                f" tpb>={p.config.threads_per_bucket_min:<4d}"
                f" cpu-reduce={str(p.config.bucket_reduce_on_cpu):<5s}"
                f" {p.default_ms:10.3f} -> {p.tuned_ms:10.3f} ms"
                f"  ({p.speedup:.3f}x)"
            )
        return "\n".join(lines)


def merge_reports(reports: Iterable[SeedReport]) -> SeedReport:
    entries: list[SeedEntry] = []
    for report in reports:
        entries.extend(report.entries)
    return SeedReport(entries=tuple(entries))


def tuned_cached_plan(
    system: MultiGpuSystem,
    curve: CurveParams,
    n: int,
    base: DistMsmConfig | None = None,
    seed: int = 0,
    budget: int = 96,
) -> tuple[TunedPlan, CachedPlan]:
    """Tune one shape and package the winner as a cache entry.

    The :class:`CachedPlan` carries the *tuned* engine's window size,
    work plan, and stage times — what the batcher schedules with once the
    entry is installed.
    """
    plan = tune_msm(system, curve, n, base=base, seed=seed, budget=budget)
    cached = PlanCache.build_plan(DistMsm(system, plan.config), curve, n)
    return plan, cached


def _group_system(server: "MsmProofServer", group_size: int) -> MultiGpuSystem:
    """The system a ``group_size``-GPU batch runs on (matches ``_engine_for``)."""
    return MultiGpuSystem(
        group_size,
        spec=server.system.spec,
        cpu=server.system.cpu,
        gpus_per_node=server.system.gpus_per_node,
    )


def _memoised_tune(
    memo: dict | None,
    system: MultiGpuSystem,
    curve: CurveParams,
    n: int,
    base: DistMsmConfig,
    seed: int,
    budget: int,
) -> tuple[TunedPlan, CachedPlan]:
    """Share tuning work across identical shapes (e.g. a cluster's nodes)."""
    if memo is None:
        return tuned_cached_plan(system, curve, n, base=base, seed=seed, budget=budget)
    key = (system.num_gpus, system.spec.name, base, curve.name, n, seed, budget)
    hit = memo.get(key)
    if hit is None:
        hit = tuned_cached_plan(system, curve, n, base=base, seed=seed, budget=budget)
        memo[key] = hit
    return hit


def seed_server(
    server: "MsmProofServer",
    workloads: Sequence[Workload],
    seed: int = 0,
    budget: int = 96,
    scope_prefix: str = "server",
    memo: dict | None = None,
) -> SeedReport:
    """Tune and install every (workload x group-size) shape of ``server``.

    Installation is keyed by an engine equivalent to the server's own
    group engine (same GPU count, spec, and config), so the very next
    ``lookup`` for a seeded shape hits the tuned plan with no planning
    latency charged.  ``memo`` (optional, shared by :func:`seed_cluster`)
    deduplicates the tuning work across identical shapes.
    """
    entries: list[SeedEntry] = []
    for group_size in sorted({len(g) for g in server.groups}):
        system = _group_system(server, group_size)
        lookup_engine = DistMsm(system, server.config)
        for curve, n in workloads:
            plan, cached = _memoised_tune(
                memo, system, curve, n, server.config, seed, budget
            )
            server.plan_cache.install(lookup_engine, curve, n, cached)
            entries.append(
                SeedEntry(scope=f"{scope_prefix}/group{group_size}", plan=plan)
            )
    return SeedReport(entries=tuple(entries))


def seed_cluster(
    cluster: "ProofCluster",
    workloads: Sequence[Workload],
    seed: int = 0,
    budget: int = 96,
) -> SeedReport:
    """Seed every node's plan cache and the router's control-plane cache.

    Nodes get full tuned plans on their data path; the router cache gets
    the same tuned entries under its own estimate-engine keys so its
    feasibility/routing ``service_ms`` estimates agree with what seeded
    nodes will actually do.  Node and router caches stay disjoint
    objects, preserving the per-node hit-rate accounting.
    """
    memo: dict = {}
    reports = [
        seed_server(
            node.server,
            workloads,
            seed=seed,
            budget=budget,
            scope_prefix=f"node{node.node_id}",
            memo=memo,
        )
        for node in cluster.nodes
    ]

    router_entries: list[SeedEntry] = []
    for gpus in sorted({node.system.num_gpus for node in cluster.nodes}):
        system = MultiGpuSystem(gpus, gpus_per_node=gpus)
        lookup_engine = DistMsm(system, cluster.config)
        for curve, n in workloads:
            plan, cached = _memoised_tune(
                memo, system, curve, n, cluster.config, seed, budget
            )
            cluster.router_cache.install(lookup_engine, curve, n, cached)
            router_entries.append(
                SeedEntry(scope=f"router/{gpus}gpu", plan=plan)
            )
    reports.append(SeedReport(entries=tuple(router_entries)))
    return merge_reports(reports)
