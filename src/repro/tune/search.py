"""Deterministic, budget-capped plan search over the DistMSM knob space.

The §3.1 planner picks the window size by minimizing the per-thread
workload model — one knob, one closed form.  The engine exposes more
policy than that (:class:`~repro.core.config.DistMsmConfig`): scatter
strategy, bucket-sum thread floor, host bucket-reduce offload, and the
serving layer adds batch-close triggers
(:class:`~repro.serve.batcher.BatchPolicy`).  These knobs interact —
e.g. dropping ``threads_per_bucket_min`` changes the optimal window —
so per-knob closed forms compose suboptimally.

The tuner closes the loop with the cheapest honest search that fits the
CI budget: **coordinate descent with seeded neighborhood restarts** over
an explicit finite grid per knob, scoring candidates through the
:class:`~repro.core.backends.AnalyticBackend` (every evaluation is a
full engine estimate, ~ms each, fully deterministic).  Three properties
are load-bearing and property-tested (``tests/tune``):

* **never worse** — the analytic default is evaluated first and the
  returned state is the argmin over *everything* evaluated, so under its
  own cost model the tuner cannot lose to the default;
* **deterministic per seed** — knob order is fixed, per-knob scans visit
  values in declaration order, ties keep the incumbent, and the only
  randomness (neighborhood restarts) comes from one ``random.Random(seed)``;
* **valid by construction** — candidate configs are built with
  ``dataclasses.replace`` on a validated :class:`DistMsmConfig`, so every
  emitted config re-runs ``__post_init__`` validation.

Winners can optionally be *validated* with the bit-exact
:class:`~repro.core.backends.FunctionalBackend`
(:func:`validate_tuned`) — tuning must only ever change the schedule,
never the resulting group element.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Sequence

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.params import CurveParams
from repro.gpu.cluster import MultiGpuSystem

__all__ = [
    "Knob",
    "SearchResult",
    "TunedPlan",
    "coordinate_search",
    "msm_knobs",
    "evaluate_config",
    "tune_msm",
    "validate_tuned",
    "tune_serve_policy",
    "TunedServePolicy",
]

State = tuple[tuple[str, Any], ...]


@dataclass(frozen=True)
class Knob:
    """One search dimension: a name and its finite, ordered value grid."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"knob {self.name!r} has an empty value grid")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ValueError(f"knob {self.name!r} has duplicate values")


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one :func:`coordinate_search` run."""

    best_state: State
    best_cost: float
    initial_cost: float
    evaluations: int
    #: (state, cost) in first-evaluation order — the audit trail
    history: tuple[tuple[State, float], ...]

    @property
    def improvement(self) -> float:
        """initial / best (>= 1.0 by the never-worse guarantee)."""
        return self.initial_cost / self.best_cost if self.best_cost > 0 else 1.0


def _as_state(assignment: Mapping[str, Any], knobs: Sequence[Knob]) -> State:
    return tuple((k.name, assignment[k.name]) for k in knobs)


def coordinate_search(
    knobs: Sequence[Knob],
    initial: Mapping[str, Any],
    cost_fn: Callable[[dict[str, Any]], float],
    seed: int = 0,
    budget: int = 96,
    restarts: int = 4,
) -> SearchResult:
    """Coordinate descent + seeded neighborhood restarts, budget-capped.

    Starting from ``initial`` (which must assign every knob a value on
    its grid or not at all — missing knobs start at their first grid
    value), repeatedly sweep the knobs in declaration order; for each
    knob evaluate every grid value with the others held fixed and move
    to the strict argmin (ties keep the incumbent).  When a full sweep
    makes no move, perturb two knobs at seeded random and descend again
    (``restarts`` times).  ``budget`` caps *distinct* cost evaluations —
    revisits hit a memo and are free — so the search degrades gracefully
    rather than blowing the CI envelope.  Returns the argmin over every
    state evaluated, which is what makes the never-worse guarantee
    unconditional.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    names = [k.name for k in knobs]
    if len(set(names)) != len(names):
        raise ValueError("duplicate knob names")
    grid = {k.name: k.values for k in knobs}
    current: dict[str, Any] = {
        k.name: initial.get(k.name, k.values[0]) for k in knobs
    }
    for k in knobs:
        if not any(current[k.name] == v for v in k.values):
            raise ValueError(
                f"initial value {current[k.name]!r} for knob {k.name!r} "
                f"is not on its grid"
            )

    memo: dict[State, float] = {}
    history: list[tuple[State, float]] = []

    def cost_of(assignment: dict[str, Any]) -> float | None:
        state = _as_state(assignment, knobs)
        if state in memo:
            return memo[state]
        if len(memo) >= budget:
            return None  # budget exhausted: unknown states stay unexplored
        cost = cost_fn(dict(assignment))
        memo[state] = cost
        history.append((state, cost))
        return cost

    initial_cost = cost_of(current)
    assert initial_cost is not None  # budget >= 1 guarantees the first eval
    rng = random.Random(seed)

    def descend(state: dict[str, Any]) -> dict[str, Any]:
        while True:
            moved = False
            for knob in knobs:
                incumbent = state[knob.name]
                best_value, best_cost = incumbent, cost_of(state)
                if best_cost is None:
                    return state
                for value in knob.values:
                    if value == incumbent:
                        continue
                    probe = cost_of({**state, knob.name: value})
                    if probe is not None and probe < best_cost:
                        best_value, best_cost = value, probe
                if best_value != incumbent:
                    state = {**state, knob.name: best_value}
                    moved = True
            if not moved:
                return state

    state = descend(current)
    for _ in range(restarts):
        if len(memo) >= budget:
            break
        perturbed = dict(state)
        for knob in rng.sample(list(knobs), k=min(2, len(knobs))):
            perturbed[knob.name] = rng.choice(grid[knob.name])
        candidate = descend(perturbed)
        state_cost = memo[_as_state(state, knobs)]
        cand_cost = memo.get(_as_state(candidate, knobs))
        if cand_cost is not None and cand_cost < state_cost:
            state = candidate

    best_state, best_cost = min(
        memo.items(), key=lambda item: (item[1], history_index(history, item[0]))
    )
    return SearchResult(
        best_state=best_state,
        best_cost=best_cost,
        initial_cost=initial_cost,
        evaluations=len(memo),
        history=tuple(history),
    )


def history_index(history: list[tuple[State, float]], state: State) -> int:
    for i, (s, _) in enumerate(history):
        if s == state:
            return i
    return len(history)


# -- MSM plan tuning ----------------------------------------------------------

#: feasible window grid: the union of both scatter strategies' auto-tune
#: ranges (hierarchical caps at 14 per Fig. 11, naive extends to 22);
#: ``None`` is the §3.1 analytic auto-pick itself
_WINDOW_GRID: tuple[Any, ...] = (None, *range(5, 17))


def msm_knobs(base: DistMsmConfig) -> tuple[Knob, ...]:
    """The default MSM search space, anchored at ``base``'s values.

    Every grid includes the base config's own value, so the search's
    initial state is always on-grid and the never-worse guarantee spans
    exactly the knobs being searched.
    """

    def with_base(name: str, values: tuple[Any, ...]) -> Knob:
        current = getattr(base, name)
        if not any(current == v for v in values):
            values = (current, *values)
        return Knob(name, values)

    return (
        with_base("window_size", _WINDOW_GRID),
        with_base("scatter", ("hierarchical", "naive")),
        with_base("threads_per_bucket_min", (1, 8, 32, 128)),
        with_base("bucket_reduce_on_cpu", (True, False)),
    )


def evaluate_config(
    system: MultiGpuSystem,
    curve: CurveParams,
    n: int,
    config: DistMsmConfig,
) -> float:
    """The tuner's cost model: the analytic end-to-end makespan (ms).

    Valid-but-infeasible points of the knob grid (e.g. a hierarchical
    scatter whose per-block counters overflow shared memory — the very
    cliff that caps the §3.1 auto-tune at s = 14) score ``inf`` rather
    than raising: the search walks around the cliff instead of dying on
    it, and an infeasible point can never be elected the winner because
    the finite default is always evaluated first.
    """
    from repro.gpu.device import SharedMemoryExceeded

    try:
        return DistMsm(system, config).estimate(curve, n).time_ms
    except SharedMemoryExceeded:
        return float("inf")


@dataclass(frozen=True)
class TunedPlan:
    """One tuning outcome: the winning config and its modelled gain."""

    curve: str
    n: int
    num_gpus: int
    config: DistMsmConfig
    window_size: int
    default_ms: float
    tuned_ms: float
    evaluations: int
    seed: int

    @property
    def speedup(self) -> float:
        """Modelled default/tuned makespan ratio (>= 1.0 by construction)."""
        return self.default_ms / self.tuned_ms if self.tuned_ms > 0 else 1.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "curve": self.curve,
            "n": self.n,
            "num_gpus": self.num_gpus,
            "window_size": self.window_size,
            "scatter": self.config.scatter,
            "threads_per_bucket_min": self.config.threads_per_bucket_min,
            "bucket_reduce_on_cpu": self.config.bucket_reduce_on_cpu,
            "default_ms": round(self.default_ms, 6),
            "tuned_ms": round(self.tuned_ms, 6),
            "tuned_speedup": round(self.speedup, 6),
            "evaluations": self.evaluations,
            "seed": self.seed,
        }


def tune_msm(
    system: MultiGpuSystem,
    curve: CurveParams,
    n: int,
    base: DistMsmConfig | None = None,
    knobs: Sequence[Knob] | None = None,
    seed: int = 0,
    budget: int = 96,
) -> TunedPlan:
    """Tune one (system, curve, n) workload; returns the winning plan.

    The search starts at ``base`` (the analytic default when omitted) and
    scores candidates with :func:`evaluate_config`; the result's
    ``default_ms`` is the base config's own score, so ``speedup`` is the
    honest tuned-vs-analytic ratio under the shared cost model.
    """
    base = base if base is not None else DistMsmConfig()
    knob_list = tuple(knobs) if knobs is not None else msm_knobs(base)
    initial = {k.name: getattr(base, k.name) for k in knob_list}

    def cost(assignment: dict[str, Any]) -> float:
        return evaluate_config(system, curve, n, replace(base, **assignment))

    result = coordinate_search(
        knob_list, initial, cost, seed=seed, budget=budget
    )
    tuned_config = replace(base, **dict(result.best_state))
    engine = DistMsm(system, tuned_config)
    return TunedPlan(
        curve=curve.name,
        n=n,
        num_gpus=system.num_gpus,
        config=tuned_config,
        window_size=engine.window_size_for(curve, n),
        default_ms=result.initial_cost,
        tuned_ms=result.best_cost,
        evaluations=result.evaluations,
        seed=seed,
    )


def validate_tuned(
    system: MultiGpuSystem,
    curve: CurveParams,
    n: int,
    base: DistMsmConfig,
    tuned: DistMsmConfig,
    seed: int = 0,
) -> bool:
    """Bit-exact winner validation through the functional backend.

    Executes one seeded MSM instance under both configs and compares the
    resulting group elements.  Returns ``True`` when they match exactly;
    raises :class:`ValueError` otherwise — a tuned plan that changes the
    *answer* is a bug, not a slow plan.  Meant for toy-curve sizes.
    """
    from repro.curves.sampling import msm_instance

    scalars, points = msm_instance(curve, n, seed=seed)
    reference = DistMsm(system, base).execute(scalars, points, curve).point
    candidate = DistMsm(system, tuned).execute(scalars, points, curve).point
    if reference != candidate:
        raise ValueError(
            f"tuned config changed the MSM result on {curve.name} (n={n}): "
            f"{reference} != {candidate}"
        )
    return True


# -- serving-policy tuning ----------------------------------------------------


@dataclass(frozen=True)
class TunedServePolicy:
    """One batch-trigger tuning outcome for a serving deployment."""

    max_batch_size: int
    max_wait_ms: float
    default_p95_ms: float
    tuned_p95_ms: float
    evaluations: int
    seed: int

    @property
    def improvement(self) -> float:
        return (
            self.default_p95_ms / self.tuned_p95_ms if self.tuned_p95_ms > 0 else 1.0
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "default_p95_ms": round(self.default_p95_ms, 6),
            "tuned_p95_ms": round(self.tuned_p95_ms, 6),
            "p95_improvement": round(self.improvement, 6),
            "evaluations": self.evaluations,
            "seed": self.seed,
        }


def tune_serve_policy(
    num_gpus: int,
    curve: CurveParams,
    request_count: int = 12,
    rate_rps: float = 200.0,
    sizes: int | tuple[int, ...] = 1 << 14,
    seed: int = 0,
    budget: int = 16,
    config: DistMsmConfig | None = None,
) -> TunedServePolicy:
    """Tune the batcher's close triggers against a seeded Poisson workload.

    Searches ``ServeConfig.max_batch_size`` / ``max_wait_ms`` (the
    :class:`~repro.serve.batcher.BatchPolicy` size and age triggers),
    scoring each candidate by the served p95 latency of one reproducible
    open-loop trace.  Each evaluation runs a fresh
    :class:`~repro.serve.server.MsmProofServer` so plan caches never leak
    between candidates.
    """
    from repro.serve.queue import poisson_trace
    from repro.serve.server import MsmProofServer, ServeConfig

    system = MultiGpuSystem(num_gpus)
    base = ServeConfig()
    knob_list = (
        Knob("max_batch_size", (1, 2, 4, base.max_batch_size, 16)),
        Knob("max_wait_ms", (0.5, 1.0, base.max_wait_ms, 4.0, 8.0)),
    )
    workload = poisson_trace(curve, request_count, rate_rps, seed, sizes=sizes)

    def cost(assignment: dict[str, Any]) -> float:
        serve_config = replace(base, **assignment)
        server = MsmProofServer(
            system, config=config or DistMsmConfig(), serve_config=serve_config
        )
        metrics = server.serve(list(workload)).metrics
        return metrics.p95_ms

    result = coordinate_search(
        knob_list,
        {"max_batch_size": base.max_batch_size, "max_wait_ms": base.max_wait_ms},
        cost,
        seed=seed,
        budget=budget,
        restarts=1,
    )
    best = dict(result.best_state)
    return TunedServePolicy(
        max_batch_size=best["max_batch_size"],
        max_wait_ms=best["max_wait_ms"],
        default_p95_ms=result.initial_cost,
        tuned_p95_ms=result.best_cost,
        evaluations=result.evaluations,
        seed=seed,
    )
