"""repro.tune — bottleneck oracle + deterministic plan auto-tuner.

Closes the loop from the observability layer back into plan choice:

* :mod:`repro.tune.oracle` folds trace spans per §3.2 phase into a typed
  :class:`BottleneckReport` (atomics-/memory-/sync-bound verdicts with
  utilization fractions), reconciled against the
  :mod:`repro.verify.observecheck` invariants;
* :mod:`repro.tune.search` runs a seeded, budget-capped coordinate
  search over the :class:`~repro.core.config.DistMsmConfig` knob space
  (and the serving batch triggers), scoring through the analytic backend
  and optionally validating winners bit-exactly;
* :mod:`repro.tune.seed` installs the winners into
  :class:`~repro.serve.plancache.PlanCache` so ``MsmProofServer`` and
  ``ProofCluster`` route with tuned rather than analytic defaults.

CLI: ``python -m repro tune --curve BN254 --log-n 18 --gpus 4``.
See DESIGN.md §16.
"""

from repro.tune.oracle import (
    BOUND_ATOMICS,
    BOUND_MEMORY,
    BOUND_SYNC,
    BottleneckReport,
    PhaseProfile,
    analyze_result,
    analyze_trace,
    classify_phase,
    tracer_from_chrome,
)
from repro.tune.search import (
    Knob,
    SearchResult,
    TunedPlan,
    TunedServePolicy,
    coordinate_search,
    evaluate_config,
    msm_knobs,
    tune_msm,
    tune_serve_policy,
    validate_tuned,
)
from repro.tune.seed import (
    SeedEntry,
    SeedReport,
    seed_cluster,
    seed_server,
    tuned_cached_plan,
)

__all__ = [
    "BOUND_ATOMICS",
    "BOUND_MEMORY",
    "BOUND_SYNC",
    "BottleneckReport",
    "Knob",
    "PhaseProfile",
    "SearchResult",
    "SeedEntry",
    "SeedReport",
    "TunedPlan",
    "TunedServePolicy",
    "analyze_result",
    "analyze_trace",
    "classify_phase",
    "coordinate_search",
    "evaluate_config",
    "msm_knobs",
    "seed_cluster",
    "seed_server",
    "tracer_from_chrome",
    "tune_msm",
    "tune_serve_policy",
    "tuned_cached_plan",
    "validate_tuned",
]
