"""Tensor-core availability and throughput helpers.

The numerics of TC big-integer multiplication live in
:mod:`repro.kernels.montmul_tc`; this module answers the hardware-side
questions the timing model asks: does this GPU have int8 MMA units, and at
what rate relative to its CUDA cores (the paper's "8x" on A100)?
"""

from __future__ import annotations

from repro.gpu.specs import GpuSpec


def tc_available(spec: GpuSpec) -> bool:
    """Whether this GPU exposes int8 matrix units usable for the workload."""
    return spec.tc_int8_tops > 0


def tc_advantage(spec: GpuSpec) -> float:
    """Tensor-core int32-equivalent throughput over CUDA cores.

    The paper's A100 example: 624 int8 TOPS = 156 int32-equivalent TOPS,
    8x the 19.5 TOPS CUDA cores.
    """
    if not tc_available(spec):
        return 0.0
    return spec.tc_int32_equiv_tops / spec.int32_tops


def mma_tile_ops(m: int = 16, n: int = 8, k: int = 32) -> int:
    """int8 MACs in one mma.sync tile (A100's 16x8x32 int8 shape)."""
    return m * n * k
