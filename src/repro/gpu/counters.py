"""Event counters shared by the functional simulator and the analytic model.

Every phase of every engine reports its work through an
:class:`EventCounters` instance.  On small inputs the functional simulator
*measures* these counts; for paper-scale inputs the same fields are filled by
closed-form formulas — property tests check that the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class EventCounters:
    """Work tallies for one execution (one GPU or the whole system)."""

    # elliptic-curve operations
    pacc: int = 0
    padd: int = 0
    pdbl: int = 0

    # scatter machinery
    global_atomics: int = 0
    shared_atomics: int = 0
    prefix_sums: int = 0  # block-level parallel prefix sums executed
    block_syncs: int = 0

    # memory traffic (bytes)
    device_bytes: int = 0
    shared_bytes: int = 0
    host_transfer_bytes: int = 0

    # host-side work
    cpu_padd: int = 0
    cpu_pdbl: int = 0

    # kernel launches (fixed overhead each)
    kernel_launches: int = 0

    def merge(self, other: "EventCounters") -> "EventCounters":
        """Accumulate another counter into this one (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "EventCounters":
        """An independent copy of this counter set."""
        out = EventCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name))
        return out

    def scaled(self, factor: float) -> "EventCounters":
        """A copy with every tally multiplied by ``factor`` (rounded)."""
        out = EventCounters()
        for f in fields(self):
            setattr(out, f.name, int(round(getattr(self, f.name) * factor)))
        return out

    @property
    def gpu_ec_ops(self) -> int:
        return self.pacc + self.padd + self.pdbl

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def record_into(self, registry, prefix: str = "") -> None:
        """Fold these tallies into a metrics registry (one counter per
        field, named ``{prefix}{field}``).

        ``registry`` is any object with ``count(name, delta)`` —
        duck-typed so this module stays import-free of
        :mod:`repro.observe.stats` (which folds the other way via
        ``record_event_counters``).
        """
        for name, value in self.as_dict().items():
            registry.count(f"{prefix}{name}", float(value))

    def __repr__(self):
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"EventCounters({nonzero})"
