"""Analytic timing: kernel descriptors + event counts -> milliseconds.

The mapping is mechanistic — word-operation counts come from the real
Montgomery implementations, register pressure from the real scheduler, and
occupancy from the CUDA rules — with four calibration constants
(`repro.gpu.specs`): occupancy saturation, register-cap spill penalty,
sustained-efficiency, and the HIP platform factor.  EXPERIMENTS.md records
how the calibrated model compares against every published number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.occupancy import OccupancyResult, occupancy_for
from repro.gpu.specs import (
    GpuSpec,
    HIP_EFFICIENCY,
    KERNEL_EFFICIENCY,
    OCC_SATURATION_K,
    REG_CAP_PENALTY_COEF,
    SPILL_TRAFFIC_VISIBLE,
    TC_TRAFFIC_VISIBLE,
    TC_UTILIZATION,
)
from repro.kernels.padd_kernel import KernelDescriptor, KernelOptimisations

#: int8 MACs equivalent to one 32x32-bit multiply on tensor cores.
INT8_MACS_PER_WORD_MUL = 16

#: default thread-block size for EC arithmetic kernels
EC_THREADS_PER_BLOCK = 256

#: fraction of overlapped memory/compute time still visible as stalls
MEM_OVERLAP_RESIDUE = 0.3


def occupancy_efficiency(occupancy: float, forced_spill: bool = False, regs: int = 0, cap: int = 255) -> float:
    """Sustained-throughput fraction achieved at a given occupancy.

    Saturating in occupancy (latency hiding needs only a few resident warps
    per scheduler), normalised so full occupancy gives 1.0; kernels that
    blow the per-thread register cap pay a local-memory spill penalty
    proportional to the overflow.
    """
    if not 0.0 < occupancy <= 1.0:
        raise ValueError(f"occupancy must be in (0, 1], got {occupancy}")
    eff = occupancy * (1.0 + OCC_SATURATION_K) / (occupancy + OCC_SATURATION_K)
    if forced_spill and regs > cap:
        eff /= 1.0 + REG_CAP_PENALTY_COEF * (regs - cap) / cap
    return eff


@dataclass(frozen=True)
class EcOpCost:
    """Per-EC-operation cost components for one kernel configuration."""

    cuda_instructions: float  # int32 instruction slots on CUDA cores
    tc_int8_ops: float  # int8 MACs on tensor cores
    overlap_traffic_bytes: float  # point prefetches (hide behind compute)
    serial_traffic_bytes: float  # TC fragment round-trips (dependency chain)
    shm_traffic_bytes: float  # explicit spill moves

    @property
    def device_traffic_bytes(self) -> float:
        return self.overlap_traffic_bytes + self.serial_traffic_bytes


def ec_op_cost(desc: KernelDescriptor, op: str, spec: GpuSpec) -> EcOpCost:
    """Cost components of one PADD / PACC / PDBL under a kernel config."""
    muls, adds = desc.word_ops_per_modmul()
    limbs = desc.curve.num_limbs
    nmm = desc.modmuls(op)

    share = desc.tc_offload_share if spec.tc_int8_tops > 0 else 0.0
    # the m x n offload is dependency-bound (m is word-serial), so only a
    # small fraction of the offloaded work leaves the critical path
    cuda_instr = nmm * (muls + adds / 2.0) * (1.0 - share * TC_UTILIZATION)
    tc_ops = nmm * muls * share * INT8_MACS_PER_WORD_MUL

    serial_traffic = 0.0
    if share > 0 and not desc.opts.tc_compaction:
        # naive path: raw uint32 fragments round-trip through device memory
        # *inside* the reduction's dependency chain; only part of the raw
        # byte count surfaces as stall time, but what does cannot overlap
        serial_traffic = nmm * (2 * (8 * limbs) * 4) * TC_TRAFFIC_VISIBLE
    overlap_traffic = 0.0
    if op == "pacc":
        overlap_traffic = 2 * limbs * 4  # prefetchable affine point load

    shm_traffic = 0.0
    plan = desc.spill_plan(op)
    if plan is not None:
        # LDS/STS dual-issues with the integer pipe; only part is visible
        shm_traffic = plan.transfers * limbs * 4 * SPILL_TRAFFIC_VISIBLE
    return EcOpCost(cuda_instr, tc_ops, overlap_traffic, serial_traffic, shm_traffic)


def kernel_occupancy(desc: KernelDescriptor, op: str, spec: GpuSpec) -> OccupancyResult:
    """Occupancy of the EC kernel, including explicit-spill shared memory."""
    regs = desc.registers_per_thread(op)
    shm_bytes = 0
    plan = desc.spill_plan(op)
    if plan is not None:
        shm_bytes = plan.peak_shm_bigints * desc.curve.num_limbs * 4 * EC_THREADS_PER_BLOCK
    return occupancy_for(spec, regs, shm_bytes, EC_THREADS_PER_BLOCK)


def sustained_int32_rate(
    desc: KernelDescriptor,
    op: str,
    spec: GpuSpec,
    active_threads: int | None = None,
    api: str = "cuda",
) -> float:
    """Sustained int32 op/s on CUDA cores for this kernel on this GPU.

    The HIP toolchain penalty applies only to HIP-compiled kernels running
    on the AMD platform (the paper's DistMSM-on-6900XT case); OpenCL and
    native code do not pay it.
    """
    occ = kernel_occupancy(desc, op, spec)
    eff = occupancy_efficiency(
        occ.occupancy,
        forced_spill=occ.forced_local_spill,
        regs=occ.regs_per_thread,
        cap=spec.max_regs_per_thread,
    )
    platform = HIP_EFFICIENCY if (spec.platform == "hip" and api == "hip") else 1.0
    rate = spec.int32_tops * 1e12 * eff * KERNEL_EFFICIENCY * platform
    if active_threads is not None:
        capacity = spec.sms * occ.threads_per_sm
        rate *= min(1.0, active_threads / max(1, capacity))
    return rate


def ec_ops_time_ms(
    desc: KernelDescriptor,
    op: str,
    count: float,
    spec: GpuSpec,
    active_threads: int | None = None,
    api: str = "cuda",
) -> float:
    """Wall time for ``count`` EC operations of one type on one GPU.

    CUDA and tensor-core work overlap (different execution units, different
    warps), and point prefetches largely hide behind arithmetic — only a
    residue of the overlapped memory time surfaces as stalls.
    """
    if count <= 0:
        return 0.0
    cost = ec_op_cost(desc, op, spec)
    cuda_rate = sustained_int32_rate(desc, op, spec, active_threads, api)
    cuda_s = count * cost.cuda_instructions / cuda_rate
    tc_s = 0.0
    if cost.tc_int8_ops > 0:
        tc_s = count * cost.tc_int8_ops / (spec.tc_int8_tops * 1e12 * KERNEL_EFFICIENCY)
    mem_s = count * cost.overlap_traffic_bytes / (spec.mem_bw_gbps * 1e9)
    serial_s = count * cost.serial_traffic_bytes / (spec.mem_bw_gbps * 1e9)
    shm_s = count * cost.shm_traffic_bytes / (spec.mem_bw_gbps * 1e9 * spec.shm_bw_factor)
    compute_s = max(cuda_s, tc_s)
    total_s = max(compute_s, mem_s) + MEM_OVERLAP_RESIDUE * min(compute_s, mem_s)
    return (total_s + serial_s + shm_s) * 1e3


def ec_op_rate(desc: KernelDescriptor, op: str, spec: GpuSpec) -> float:
    """EC operations per second for a fully occupied GPU."""
    return 1e3 / ec_ops_time_ms(desc, op, 1.0, spec) / 1.0


def reference_gpu_padd_rate(spec: GpuSpec) -> float:
    """Anchor rate (PACC/s, BLS12-381, fully optimised) for CPU scaling."""
    from repro.curves.params import curve_by_name

    desc = KernelDescriptor(curve_by_name("BLS12-381"), KernelOptimisations.all())
    return ec_op_rate(desc, "pacc", spec)


def cpu_ec_time_ms(padd_count: float, pdbl_count: float, cpu_rate: float) -> float:
    """Host-side EC arithmetic time (bucket-reduce / window-reduce)."""
    if cpu_rate <= 0:
        raise ValueError("cpu_rate must be positive")
    return (padd_count + 1.2 * pdbl_count) / cpu_rate * 1e3


def pipelined_cpu_visible_ms(cpu_ms: float, gpu_busy_ms: float, stages: int) -> float:
    """Visible CPU time after per-stage flow-shop overlap (paper §3.2.3).

    Per-stage CPU reduces hide behind the GPUs' work on subsequent stages;
    what stays visible is the tail stage plus any backlog beyond the
    overlappable GPU time — the first stage's GPU fill cannot overlap
    (two-machine flow-shop makespan).
    """
    if stages <= 1:
        return cpu_ms
    per_stage = cpu_ms / stages
    overlappable = gpu_busy_ms * (stages - 1) / stages
    return per_stage + max(0.0, cpu_ms - per_stage - overlappable)


def host_transfer_time_ms(num_bytes: float, spec: GpuSpec) -> float:
    """PCIe transfer time for result collection."""
    return num_bytes / (spec.pcie_gbps * 1e9) * 1e3


def launch_overhead_ms(launches: int, spec: GpuSpec) -> float:
    return launches * spec.kernel_launch_us * 1e-3


def memory_read_time_ms(num_bytes: float, spec: GpuSpec) -> float:
    """Streaming device-memory read time (scatter's coefficient fetches)."""
    return num_bytes / (spec.mem_bw_gbps * 1e9) * 1e3
