"""Memory-access traces of the functional GPU simulator.

The simulator executes scatter and bucket-sum serially, but the algorithms
it executes are massively parallel: every shared/global access belongs to a
specific (block, thread) and is ordered against other accesses only by the
synchronisation the kernel actually performs.  A :class:`MemoryTrace`
records that structure — who touched which address, atomically or not, and
where the barriers fell — so an independent checker (``repro.verify``) can
rebuild the happens-before relation and prove the absence of data races,
instead of trusting that the serial execution order was a coincidence-free
stand-in for the parallel one.

Address model: every traced array lives in a named *region* of an address
space (``"shared"`` is per-block, ``"global"`` is device-wide); an address
is ``(space, region, index)``.  Regions keep unrelated allocations from
aliasing without a full pointer model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Space(str, Enum):
    """Address space of one access."""

    SHARED = "shared"
    GLOBAL = "global"


class Kind(str, Enum):
    """What the access does to the location."""

    READ = "read"
    WRITE = "write"
    RMW = "rmw"  # read-modify-write (atomic or a racy plain equivalent)

    @property
    def writes(self) -> bool:
        return self is not Kind.READ


@dataclass(frozen=True)
class MemoryEvent:
    """One memory access by one simulated thread.

    ``seq`` is the global serial position in the trace; within a thread it
    is also the program order.  ``epoch`` counts the block-wide barriers the
    owning block has executed before this access.
    """

    seq: int
    space: Space
    region: str
    address: int
    kind: Kind
    atomic: bool
    block: int
    thread: int
    epoch: int

    @property
    def warp(self) -> int:
        return self.thread // 32

    def location(self) -> str:
        return f"{self.space.value}:{self.region}[{self.address}]"

    def __repr__(self) -> str:
        tag = "atomic " if self.atomic else ""
        return (
            f"<{tag}{self.kind.value} {self.location()} "
            f"by block {self.block} thread {self.thread} epoch {self.epoch}>"
        )


@dataclass(frozen=True)
class BarrierEvent:
    """One block-wide barrier (``__syncthreads``)."""

    seq: int
    block: int
    epoch: int  # the epoch this barrier *closes*


@dataclass
class MemoryTrace:
    """Recorder for the simulator's shared/global memory activity."""

    events: list[MemoryEvent] = field(default_factory=list)
    barriers: list[BarrierEvent] = field(default_factory=list)
    _seq: int = 0
    _epochs: dict[int, int] = field(default_factory=dict)

    def record(
        self,
        space: Space,
        region: str,
        address: int,
        kind: Kind,
        *,
        atomic: bool,
        block: int,
        thread: int,
    ) -> None:
        self.events.append(
            MemoryEvent(
                seq=self._seq,
                space=space,
                region=region,
                address=address,
                kind=kind,
                atomic=atomic,
                block=block,
                thread=thread,
                epoch=self._epochs.get(block, 0),
            )
        )
        self._seq += 1

    def barrier(self, block: int) -> None:
        """Advance ``block``'s epoch: a block-wide execution barrier."""
        epoch = self._epochs.get(block, 0)
        self.barriers.append(BarrierEvent(seq=self._seq, block=block, epoch=epoch))
        self._seq += 1
        self._epochs[block] = epoch + 1

    def epoch_of(self, block: int) -> int:
        return self._epochs.get(block, 0)

    def __len__(self) -> int:
        return len(self.events)
