"""Occupancy calculation: registers / shared memory -> resident threads.

Follows the CUDA occupancy rules the paper's §4.2 reasoning relies on: a
thread block's register and shared-memory demands bound how many threads an
SM can keep resident; occupancy in turn bounds latency hiding and therefore
sustained throughput (the efficiency mapping lives in
:mod:`repro.gpu.timing`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import GpuSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy outcome for one kernel configuration."""

    threads_per_sm: int
    occupancy: float  # resident threads / max threads, in [0, 1]
    limited_by: str  # "registers" | "shared_memory" | "threads"
    regs_per_thread: int
    forced_local_spill: bool  # demanded more than the per-thread cap


def occupancy_for(
    spec: GpuSpec,
    regs_per_thread: int,
    shm_per_block_bytes: int = 0,
    threads_per_block: int = 256,
) -> OccupancyResult:
    """Resident threads per SM for a kernel's resource demands.

    Register demand beyond the hardware cap cannot reduce occupancy further —
    the compiler pins usage at the cap and spills the excess to local memory
    (flagged via ``forced_local_spill``; the timing model charges for it).
    """
    if regs_per_thread <= 0:
        raise ValueError("regs_per_thread must be positive")
    if threads_per_block <= 0 or threads_per_block % spec.warp_size:
        raise ValueError("threads_per_block must be a positive warp multiple")

    forced_spill = regs_per_thread > spec.max_regs_per_thread
    effective_regs = min(regs_per_thread, spec.max_regs_per_thread)

    by_regs = spec.registers_per_sm // effective_regs
    by_threads = spec.max_threads_per_sm
    limits = {"registers": by_regs, "threads": by_threads}

    if shm_per_block_bytes > 0:
        shm_per_sm = spec.shared_mem_per_sm_kb * 1024
        blocks_by_shm = shm_per_sm // shm_per_block_bytes
        limits["shared_memory"] = blocks_by_shm * threads_per_block

    limiting = min(limits, key=limits.get)
    threads = min(limits.values())
    # warp granularity
    threads = (threads // spec.warp_size) * spec.warp_size
    threads = min(threads, spec.max_threads_per_sm)
    return OccupancyResult(
        threads_per_sm=threads,
        occupancy=threads / spec.max_threads_per_sm,
        limited_by=limiting,
        regs_per_thread=regs_per_thread,
        forced_local_spill=forced_spill,
    )
