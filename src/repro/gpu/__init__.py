"""Simulated multi-GPU substrate.

The paper's artifact is CUDA/HIP on DGX A100 nodes; here the hardware is
replaced by a two-layer model (DESIGN.md §2):

* a *functional* layer (:mod:`repro.gpu.device`) that executes the real
  algorithms with thread-block/shared-memory semantics, producing bit-exact
  results and true event counts;
* an *analytic* layer (:mod:`repro.gpu.timing`) that maps event counts and
  kernel descriptors to milliseconds through occupancy and throughput models
  calibrated against the paper's published figures.
"""

from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.counters import EventCounters
from repro.gpu.occupancy import OccupancyResult, occupancy_for
from repro.gpu.specs import AMD_6900XT, DGX_A100, GpuSpec, HostCpuSpec, NVIDIA_A100, RTX_4090

__all__ = [
    "MultiGpuSystem",
    "EventCounters",
    "OccupancyResult",
    "occupancy_for",
    "GpuSpec",
    "HostCpuSpec",
    "NVIDIA_A100",
    "RTX_4090",
    "AMD_6900XT",
    "DGX_A100",
]
