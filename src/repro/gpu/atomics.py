"""Atomic-operation contention model (paper §3.1 / §3.2.1).

The cost of an atomic RMW "generally scales with the number of simultaneous
writes to a memory address" (the paper cites Elteir et al.).  Two regimes
matter for the scatter step:

* *throughput-limited*: plenty of distinct addresses — each atomic costs its
  base latency, hidden by massive parallelism;
* *serialisation-limited*: many writers per address — same-address atomics
  retry at roughly the L2 round-trip latency, so a window with ``2^s``
  buckets serialises ``N / 2^s`` operations per counter.

The second regime is exactly why the naive scatter collapses at the small
window sizes multi-GPU scaling wants (Fig. 11), and why the hierarchical
scheme stages traffic through shared memory where the serialisation unit is
a thread block, not the whole GPU.
"""

from __future__ import annotations

from repro.gpu.specs import (
    GLOBAL_ATOMIC_BASE_NS,
    GLOBAL_ATOMIC_SERIAL_NS,
    SHARED_ATOMIC_BASE_NS,
    SHARED_ATOMIC_SERIAL_NS,
    GpuSpec,
)


def expected_conflicts(active_threads: int, num_addresses: int) -> float:
    """Expected simultaneous writers per address under uniform hashing."""
    if num_addresses <= 0:
        raise ValueError("num_addresses must be positive")
    if active_threads < 0:
        raise ValueError("active_threads must be non-negative")
    return active_threads / num_addresses


def global_serialization_ms(global_atomics: float, num_addresses: int) -> float:
    """Serialisation-limited time: per-address queue at L2 latency."""
    if num_addresses <= 0:
        raise ValueError("num_addresses must be positive")
    return (global_atomics / num_addresses) * GLOBAL_ATOMIC_SERIAL_NS * 1e-6


def scatter_atomic_time_ms(
    spec: GpuSpec,
    global_atomics: float,
    shared_atomics: float,
    active_threads: int,
    num_buckets: int,
    threads_per_block: int = 1024,
) -> float:
    """Wall time of the scatter step's atomics on one GPU.

    The global-atomic cost is the max of the throughput-limited and
    serialisation-limited regimes; shared atomics serialise per block, and
    blocks proceed in parallel waves across the SMs.
    """
    concurrency = max(1, min(active_threads, spec.concurrent_threads))
    throughput_ms = (
        (global_atomics * GLOBAL_ATOMIC_BASE_NS + shared_atomics * SHARED_ATOMIC_BASE_NS)
        / concurrency
    ) * 1e-6
    global_ms = max(
        throughput_ms, global_serialization_ms(global_atomics, num_buckets)
    )
    resident_blocks = max(1, concurrency // threads_per_block)
    shared_ms = (
        (shared_atomics / num_buckets) * SHARED_ATOMIC_SERIAL_NS / resident_blocks
    ) * 1e-6
    return global_ms + shared_ms
