"""Atomic-operation contention model (paper §3.1 / §3.2.1).

The cost of an atomic RMW "generally scales with the number of simultaneous
writes to a memory address" (the paper cites Elteir et al.).  Two regimes
matter for the scatter step:

* *throughput-limited*: plenty of distinct addresses — each atomic costs its
  base latency, hidden by massive parallelism;
* *serialisation-limited*: many writers per address — same-address atomics
  retry at roughly the L2 round-trip latency, so a window with ``2^s``
  buckets serialises ``N / 2^s`` operations per counter.

The second regime is exactly why the naive scatter collapses at the small
window sizes multi-GPU scaling wants (Fig. 11), and why the hierarchical
scheme stages traffic through shared memory where the serialisation unit is
a thread block, not the whole GPU.
"""

from __future__ import annotations

from repro.gpu.specs import (
    GLOBAL_ATOMIC_BASE_NS,
    GLOBAL_ATOMIC_SERIAL_NS,
    SHARED_ATOMIC_BASE_NS,
    SHARED_ATOMIC_SERIAL_NS,
    GpuSpec,
)


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def validate_contention(
    num_addresses: int,
    active_threads: int | None = None,
    global_atomics: float | None = None,
    shared_atomics: float | None = None,
    threads_per_block: int | None = None,
) -> None:
    """Shared input validation for every contention-model entry point.

    Each helper divides by ``num_addresses`` (and some by
    ``threads_per_block``); all of them silently accepted inconsistent
    combinations before this guard existed — e.g. zero active threads with
    a huge address count passed :func:`expected_conflicts` while the same
    arguments crashed or produced nonsense downstream.
    """
    _require_positive("num_addresses", num_addresses)
    if active_threads is not None:
        _require_non_negative("active_threads", active_threads)
    if global_atomics is not None:
        _require_non_negative("global_atomics", global_atomics)
    if shared_atomics is not None:
        _require_non_negative("shared_atomics", shared_atomics)
    if threads_per_block is not None:
        _require_positive("threads_per_block", threads_per_block)


def expected_conflicts(active_threads: int, num_addresses: int) -> float:
    """Expected simultaneous writers per address under uniform hashing."""
    validate_contention(num_addresses, active_threads=active_threads)
    return active_threads / num_addresses


def global_serialization_ms(global_atomics: float, num_addresses: int) -> float:
    """Serialisation-limited time: per-address queue at L2 latency."""
    validate_contention(num_addresses, global_atomics=global_atomics)
    return (global_atomics / num_addresses) * GLOBAL_ATOMIC_SERIAL_NS * 1e-6


def scatter_atomic_time_ms(
    spec: GpuSpec,
    global_atomics: float,
    shared_atomics: float,
    active_threads: int,
    num_buckets: int,
    threads_per_block: int = 1024,
) -> float:
    """Wall time of the scatter step's atomics on one GPU.

    The global-atomic cost is the max of the throughput-limited and
    serialisation-limited regimes; shared atomics serialise per block, and
    blocks proceed in parallel waves across the SMs.
    """
    validate_contention(
        num_buckets,
        active_threads=active_threads,
        global_atomics=global_atomics,
        shared_atomics=shared_atomics,
        threads_per_block=threads_per_block,
    )
    concurrency = max(1, min(active_threads, spec.concurrent_threads))
    throughput_ms = (
        (global_atomics * GLOBAL_ATOMIC_BASE_NS + shared_atomics * SHARED_ATOMIC_BASE_NS)
        / concurrency
    ) * 1e-6
    global_ms = max(
        throughput_ms, global_serialization_ms(global_atomics, num_buckets)
    )
    resident_blocks = max(1, concurrency // threads_per_block)
    shared_ms = (
        (shared_atomics / num_buckets) * SHARED_ATOMIC_SERIAL_NS / resident_blocks
    ) * 1e-6
    return global_ms + shared_ms
