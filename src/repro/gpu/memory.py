"""Device-memory footprint model: does an MSM instance even fit?

Capacity is the silent constraint behind several of the paper's design
points: precomputation multiplies the point storage by the window count
(fine for Yrrid at BLS12-377, ruinous for 753-bit curves at N = 2^28), and
bucket storage scales with ``2^s`` per resident window.  The engine uses
this model to reject configurations that exceed the GPU's memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import DistMsmConfig
from repro.curves.params import CurveParams
from repro.curves.scalar import num_windows
from repro.gpu.specs import GpuSpec, NVIDIA_A100

#: device memory of the evaluation GPUs (bytes); A100 80GB
DEVICE_MEMORY_BYTES = {
    "NVIDIA A100 80GB": 80 << 30,
    "NVIDIA RTX 4090": 24 << 30,
    "AMD Radeon 6900XT": 16 << 30,
}


@dataclass(frozen=True)
class MemoryFootprint:
    """Byte budget of one GPU's share of an MSM."""

    points_bytes: int
    scalars_bytes: int
    buckets_bytes: int
    scratch_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.points_bytes
            + self.scalars_bytes
            + self.buckets_bytes
            + self.scratch_bytes
        )

    def fits(self, spec: GpuSpec = NVIDIA_A100) -> bool:
        capacity = DEVICE_MEMORY_BYTES.get(spec.name)
        if capacity is None:
            raise KeyError(f"no memory capacity recorded for {spec.name}")
        return self.total_bytes <= capacity


def affine_point_bytes(curve: CurveParams) -> int:
    """Two base-field coordinates."""
    return 2 * curve.num_limbs * 4


def xyzz_point_bytes(curve: CurveParams) -> int:
    """Four base-field coordinates."""
    return 4 * curve.num_limbs * 4


def msm_footprint(
    curve: CurveParams,
    n: int,
    config: DistMsmConfig | None = None,
    num_gpus: int = 1,
    window_size: int | None = None,
) -> MemoryFootprint:
    """Per-GPU memory footprint of an MSM under a configuration.

    Points are replicated per GPU for window-distributed strategies and
    sliced for the N-dim strategy; precomputation multiplies the point
    storage by the window count.
    """
    if n <= 0 or num_gpus <= 0:
        raise ValueError("n and num_gpus must be positive")
    config = config or DistMsmConfig()
    s = window_size if window_size is not None else (config.window_size or 14)
    n_win = num_windows(curve.scalar_bits, s)
    buckets = ((1 << (s - 1)) + 1) if config.signed_digits else (1 << s)

    points_per_gpu = math.ceil(n / num_gpus) if config.multi_gpu == "ndim" else n
    point_copies = (n_win + 1) if config.precompute else 1
    points_bytes = points_per_gpu * point_copies * affine_point_bytes(curve)

    scalars_bytes = points_per_gpu * math.ceil(curve.scalar_bits / 8)
    # scattered point ids (one uint32 per point per resident window) plus
    # the bucket accumulators
    resident_windows = 1 if config.precompute else max(1, math.ceil(n_win / num_gpus))
    buckets_bytes = (
        buckets * resident_windows * xyzz_point_bytes(curve)
        + points_per_gpu * 4
    )
    scratch_bytes = points_per_gpu * 4  # digit staging
    return MemoryFootprint(points_bytes, scalars_bytes, buckets_bytes, scratch_bytes)


def max_feasible_log_n(
    curve: CurveParams,
    config: DistMsmConfig | None = None,
    num_gpus: int = 1,
    spec: GpuSpec = NVIDIA_A100,
) -> int:
    """Largest ``log2(N)`` that fits in device memory."""
    log_n = 1
    while log_n < 40:
        fp = msm_footprint(curve, 1 << (log_n + 1), config, num_gpus)
        if not fp.fits(spec):
            break
        log_n += 1
    return log_n
