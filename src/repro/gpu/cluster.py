"""The multi-GPU system: N simulated GPUs plus the host CPU.

Mirrors the paper's platform model: DGX nodes of 8 A100s with dual Rome
CPUs; configurations beyond one node are handled the way the paper's §5.1
does (node-sized slices execute independently; the slowest slice's time is
reported).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import EventCounters
from repro.gpu.device import SimulatedGpu
from repro.gpu.specs import AMD_ROME_7742, GpuSpec, HostCpuSpec, NVIDIA_A100


@dataclass
class MultiGpuSystem:
    """A cluster of identical GPUs with one host CPU per 8-GPU node."""

    num_gpus: int
    spec: GpuSpec = NVIDIA_A100
    cpu: HostCpuSpec = AMD_ROME_7742
    gpus_per_node: int = 8
    gpus: list = field(init=False)

    def __post_init__(self):
        if self.num_gpus <= 0:
            raise ValueError(f"need at least one GPU, got {self.num_gpus}")
        if self.gpus_per_node <= 0:
            raise ValueError(f"need at least one GPU per node, got {self.gpus_per_node}")
        self.gpus = [SimulatedGpu(self.spec, gpu_id=i) for i in range(self.num_gpus)]

    @property
    def nodes(self) -> int:
        """DGX nodes involved (``gpus_per_node`` GPUs each)."""
        return -(-self.num_gpus // self.gpus_per_node)

    @property
    def concurrent_threads_per_gpu(self) -> int:
        return self.spec.concurrent_threads

    def total_counters(self) -> EventCounters:
        """Aggregate event counters across all GPUs."""
        total = EventCounters()
        for gpu in self.gpus:
            total.merge(gpu.counters)
        return total

    def reset_counters(self) -> None:
        for gpu in self.gpus:
            gpu.counters = EventCounters()

    def resources(self):
        """The engine's typed resource set for this cluster.

        One compute stream per GPU, one transfer channel per DGX node, one
        host CPU — the units :func:`repro.engine.timeline.simulate`
        schedules tasks onto.  Imported lazily: engine depends on core,
        which depends on this module.
        """
        from repro.engine.resources import system_resources

        return system_resources(self.num_gpus, self.gpus_per_node)

    def cpu_padd_rate(self) -> float:
        """Host PADD throughput (ops/s), from the paper's 128x GPU:CPU ratio.

        One A100 sustains roughly ``N_T`` concurrent PADD chains; we anchor
        the CPU rate to the modelled GPU PACC rate for BLS12-381 divided by
        the paper's ratio.  The circular import with timing is avoided by
        deferring the lookup.
        """
        from repro.gpu.timing import reference_gpu_padd_rate

        return reference_gpu_padd_rate(self.spec) / self.cpu.gpu_padd_speed_ratio

    def __repr__(self):
        return f"MultiGpuSystem({self.num_gpus} x {self.spec.name})"
