"""Functional GPU execution contexts: thread blocks and shared memory.

These classes give the algorithm implementations (hierarchical bucket
scatter, bucket-sum) real block/shared-memory semantics to run against:
capacity limits are enforced and every atomic / sync / prefix-sum is
counted.  They execute the actual computation — the outputs feed the same
code paths as the serial reference, so correctness is testable end to end.

When a :class:`~repro.gpu.trace.MemoryTrace` is attached to the GPU, every
shared/global access additionally records *which simulated thread of which
block* performed it and whether it was atomic, and every ``syncthreads``
records a barrier.  The ``repro.verify`` race detector replays those traces
to prove the scatter and bucket-sum schemes free of unsynchronised
same-address conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import EventCounters
from repro.gpu.specs import GpuSpec
from repro.gpu.trace import Kind, MemoryTrace, Space


class SharedMemoryExceeded(Exception):
    """Raised when a block's shared-memory allocations exceed capacity.

    The paper hits exactly this wall: the hierarchical scatter "fails to
    execute" for window sizes above 14 (Fig. 11).
    """


@dataclass
class SharedMemory:
    """A thread block's shared memory: capacity-checked word allocations."""

    capacity_bytes: int
    counters: EventCounters
    block_id: int = 0
    tracer: MemoryTrace | None = None
    _allocated: int = 0
    #: id(array) -> (region name, base word offset); aliased arrays share
    #: a region so the race detector sees them as the same storage
    _regions: dict[int, tuple[str, int]] = field(default_factory=dict)

    def alloc_words(self, count: int, name: str = "shm") -> list[int]:
        """Allocate ``count`` 32-bit words, zero-initialised."""
        needed = 4 * count
        if self._allocated + needed > self.capacity_bytes:
            raise SharedMemoryExceeded(
                f"requested {needed} B with {self._allocated} B in use "
                f"(capacity {self.capacity_bytes} B)"
            )
        base = self._allocated // 4
        self._allocated += needed
        array = [0] * count
        self._regions[id(array)] = (name, base)
        return array

    def alias(self, clone: list[int], source: list[int]) -> list[int]:
        """Register ``clone`` as occupying ``source``'s storage.

        Real kernels reuse the counter array for derived values (the prefix
        sum runs in place); the serial simulator keeps them as separate
        Python lists but the trace must show one region, or the race
        detector would miss conflicts between the two views.
        """
        region = self._regions.get(id(source))
        if region is not None:
            self._regions[id(clone)] = region
        return clone

    @property
    def bytes_in_use(self) -> int:
        return self._allocated

    def _trace(self, array: list[int], index: int, kind: Kind, atomic: bool, thread: int) -> None:
        if self.tracer is None:
            return
        region, base = self._regions.get(id(array), ("shm", 0))
        self.tracer.record(
            Space.SHARED,
            region,
            base + index,
            kind,
            atomic=atomic,
            block=self.block_id,
            thread=thread,
        )

    def atomic_inc(self, array: list[int], index: int, thread: int = 0) -> int:
        """Shared-memory atomic increment; returns the previous value."""
        old = array[index]
        array[index] = old + 1
        self.counters.shared_atomics += 1
        self._trace(array, index, Kind.RMW, True, thread)
        return old

    def write(self, array: list[int], index: int, value: int, thread: int = 0) -> None:
        """Plain (non-atomic) shared-memory store."""
        array[index] = value
        self._trace(array, index, Kind.WRITE, False, thread)

    def read(self, array: list[int], index: int, thread: int = 0) -> int:
        """Plain shared-memory load."""
        self._trace(array, index, Kind.READ, False, thread)
        return array[index]


@dataclass
class ThreadBlock:
    """One thread block of the functional simulator."""

    block_id: int
    num_threads: int
    shared: SharedMemory
    counters: EventCounters
    tracer: MemoryTrace | None = None

    def syncthreads(self) -> None:
        self.counters.block_syncs += 1
        if self.tracer is not None:
            self.tracer.barrier(self.block_id)

    def parallel_prefix_sum(self, array: list[int]) -> list[int]:
        """Exclusive prefix sum across the block (one counted primitive).

        The result aliases the input array's storage — real kernels scan in
        place — so the trace keeps both views in one region.
        """
        self.counters.prefix_sums += 1
        out = []
        total = 0
        for v in array:
            out.append(total)
            total += v
        return self.shared.alias(out, array)


@dataclass
class SimulatedGpu:
    """One GPU of the cluster: spec, counters, and block factory."""

    spec: GpuSpec
    gpu_id: int = 0
    counters: EventCounters = field(default_factory=EventCounters)
    #: shared memory available to one scatter block; the paper's example
    #: uses 128 KB for point-id storage in a 1024-thread block.
    scatter_shm_bytes: int = 128 * 1024
    #: optional memory-access recorder consumed by ``repro.verify``
    tracer: MemoryTrace | None = None

    def new_block(self, block_id: int, num_threads: int) -> ThreadBlock:
        if num_threads <= 0 or num_threads % self.spec.warp_size:
            raise ValueError("block size must be a positive warp multiple")
        shm = SharedMemory(
            self.scatter_shm_bytes,
            self.counters,
            block_id=block_id,
            tracer=self.tracer,
        )
        return ThreadBlock(block_id, num_threads, shm, self.counters, tracer=self.tracer)

    def _trace_global(
        self, region: str, address: int, kind: Kind, atomic: bool, block: int, thread: int
    ) -> None:
        if self.tracer is not None:
            self.tracer.record(
                Space.GLOBAL, region, address, kind, atomic=atomic, block=block, thread=thread
            )

    def global_atomic_add(
        self,
        array: list[int],
        index: int,
        value: int = 1,
        region: str = "global",
        block: int = 0,
        thread: int = 0,
    ) -> int:
        """Device-memory atomic add; returns the previous value."""
        old = array[index]
        array[index] = old + value
        self.counters.global_atomics += 1
        self._trace_global(region, index, Kind.RMW, True, block, thread)
        return old

    def global_unsynced_add(
        self,
        array: list[int],
        index: int,
        value: int = 1,
        region: str = "global",
        block: int = 0,
        thread: int = 0,
    ) -> int:
        """A *plain* read-modify-write on device memory — a data race.

        Exists only as a fault-injection path for the ``repro.verify`` race
        detector (the "naive scatter without atomics" fixture); nothing in
        the engine itself calls it.
        """
        old = array[index]
        array[index] = old + value
        self._trace_global(region, index, Kind.RMW, False, block, thread)
        return old

    def global_write(
        self,
        array: list[int],
        index: int,
        value: int,
        region: str = "global",
        block: int = 0,
        thread: int = 0,
    ) -> None:
        """Plain device-memory store."""
        array[index] = value
        self._trace_global(region, index, Kind.WRITE, False, block, thread)

    def launch(self) -> None:
        """Record one kernel launch (fixed host-side overhead each)."""
        self.counters.kernel_launches += 1
