"""Functional GPU execution contexts: thread blocks and shared memory.

These classes give the algorithm implementations (hierarchical bucket
scatter, bucket-sum) real block/shared-memory semantics to run against:
capacity limits are enforced and every atomic / sync / prefix-sum is
counted.  They execute the actual computation — the outputs feed the same
code paths as the serial reference, so correctness is testable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import EventCounters
from repro.gpu.specs import GpuSpec


class SharedMemoryExceeded(Exception):
    """Raised when a block's shared-memory allocations exceed capacity.

    The paper hits exactly this wall: the hierarchical scatter "fails to
    execute" for window sizes above 14 (Fig. 11).
    """


@dataclass
class SharedMemory:
    """A thread block's shared memory: capacity-checked word allocations."""

    capacity_bytes: int
    counters: EventCounters
    _allocated: int = 0

    def alloc_words(self, count: int) -> list[int]:
        """Allocate ``count`` 32-bit words, zero-initialised."""
        needed = 4 * count
        if self._allocated + needed > self.capacity_bytes:
            raise SharedMemoryExceeded(
                f"requested {needed} B with {self._allocated} B in use "
                f"(capacity {self.capacity_bytes} B)"
            )
        self._allocated += needed
        return [0] * count

    @property
    def bytes_in_use(self) -> int:
        return self._allocated

    def atomic_inc(self, array: list[int], index: int) -> int:
        """Shared-memory atomic increment; returns the previous value."""
        old = array[index]
        array[index] = old + 1
        self.counters.shared_atomics += 1
        return old


@dataclass
class ThreadBlock:
    """One thread block of the functional simulator."""

    block_id: int
    num_threads: int
    shared: SharedMemory
    counters: EventCounters

    def syncthreads(self) -> None:
        self.counters.block_syncs += 1

    def parallel_prefix_sum(self, array: list[int]) -> list[int]:
        """Exclusive prefix sum across the block (one counted primitive)."""
        self.counters.prefix_sums += 1
        out = []
        total = 0
        for v in array:
            out.append(total)
            total += v
        return out


@dataclass
class SimulatedGpu:
    """One GPU of the cluster: spec, counters, and block factory."""

    spec: GpuSpec
    gpu_id: int = 0
    counters: EventCounters = field(default_factory=EventCounters)
    #: shared memory available to one scatter block; the paper's example
    #: uses 128 KB for point-id storage in a 1024-thread block.
    scatter_shm_bytes: int = 128 * 1024

    def new_block(self, block_id: int, num_threads: int) -> ThreadBlock:
        if num_threads <= 0 or num_threads % self.spec.warp_size:
            raise ValueError("block size must be a positive warp multiple")
        shm = SharedMemory(self.scatter_shm_bytes, self.counters)
        return ThreadBlock(block_id, num_threads, shm, self.counters)

    def global_atomic_add(self, array: list[int], index: int, value: int = 1) -> int:
        """Device-memory atomic add; returns the previous value."""
        old = array[index]
        array[index] = old + value
        self.counters.global_atomics += 1
        return old

    def launch(self) -> None:
        """Record one kernel launch (fixed host-side overhead each)."""
        self.counters.kernel_launches += 1
