"""Hardware specifications for the GPUs and hosts the paper evaluates.

Figures mirror the hardware panel of the paper's Fig. 9 (A100 vs RTX4090 vs
AMD 6900XT) and the DGX host used in §5.1.  Calibration constants that map
modelled work to wall-clock time live at the bottom; they are the *only*
free parameters of the timing model and are documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """One GPU model.

    Attributes
    ----------
    sms: streaming multiprocessors (compute units for AMD).
    max_threads_per_sm / registers_per_sm / shared_mem_per_sm_kb:
        occupancy limits per SM.
    int32_tops: CUDA-core int32 throughput, tera-ops/s.
    tc_int8_tops: tensor-core int8 throughput (0 = no int8 MMA units).
    mem_bw_gbps: device memory bandwidth.
    shm_bw_factor: shared-memory bandwidth relative to device memory.
    pcie_gbps: host link bandwidth (for result collection).
    kernel_launch_us: host-side launch + sync latency per kernel.
    max_regs_per_thread: the ISA cap; exceeding it forces local-memory spill.
    platform: "cuda" | "hip" — the paper notes a HIP efficiency penalty.
    """

    name: str
    sms: int
    max_threads_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm_kb: int
    int32_tops: float
    tc_int8_tops: float
    mem_bw_gbps: float
    pcie_gbps: float = 25.0
    shm_bw_factor: float = 10.0
    kernel_launch_us: float = 12.0
    max_regs_per_thread: int = 255
    warp_size: int = 32
    platform: str = "cuda"

    @property
    def concurrent_threads(self) -> int:
        """N_T: threads the whole GPU can keep resident at full occupancy."""
        return self.sms * self.max_threads_per_sm

    @property
    def tc_int32_equiv_tops(self) -> float:
        """int8 TC throughput expressed as 32x32-bit multiplies per second.

        A 32x32 multiply decomposes into 16 int8 MACs, and int8 TOPS counts
        MACs, so the equivalent int32 rate is one quarter of the int8 rate
        divided by 4 (the paper's A100 example: 624 int8 TOPS = 156 int32
        TOPS, an 8x advantage over the 19.5 TOPS CUDA cores).
        """
        return self.tc_int8_tops / 4.0


@dataclass(frozen=True)
class HostCpuSpec:
    """The host CPU that runs bucket-reduce and window-reduce for DistMSM."""

    name: str
    cores: int
    # paper §3.2.3: "a GPU could be up to 128x faster than a high-end CPU";
    # we express the CPU as a PADD rate relative to one A100.
    gpu_padd_speed_ratio: float = 128.0


NVIDIA_A100 = GpuSpec(
    name="NVIDIA A100 80GB",
    sms=108,
    max_threads_per_sm=2048,
    registers_per_sm=65536,
    shared_mem_per_sm_kb=164,
    int32_tops=19.5,
    tc_int8_tops=624.0,
    mem_bw_gbps=2039.0,
    platform="cuda",
)

RTX_4090 = GpuSpec(
    name="NVIDIA RTX 4090",
    sms=128,
    max_threads_per_sm=1536,
    registers_per_sm=65536,
    shared_mem_per_sm_kb=100,
    int32_tops=41.3,  # paper: 2.12x the A100's CUDA-core integer throughput
    tc_int8_tops=660.6,
    mem_bw_gbps=1008.0,
    platform="cuda",
)

AMD_6900XT = GpuSpec(
    name="AMD Radeon 6900XT",
    sms=80,
    max_threads_per_sm=2048,
    registers_per_sm=65536,
    shared_mem_per_sm_kb=64,
    int32_tops=11.5,  # markedly lower integer throughput (paper Fig. 9)
    tc_int8_tops=0.0,  # no int8 matrix units usable for this workload
    mem_bw_gbps=512.0,
    platform="hip",
)

AMD_ROME_7742 = HostCpuSpec(name="2x AMD Rome 7742", cores=128)

#: The evaluation platform: an NVIDIA DGX with 8 A100s and dual Rome CPUs.
DGX_A100 = {
    "gpu": NVIDIA_A100,
    "cpu": AMD_ROME_7742,
    "gpus_per_node": 8,
}


def spec_by_name(name: str) -> GpuSpec:
    """Look up one of the three evaluated GPUs by (partial) name."""
    for spec in (NVIDIA_A100, RTX_4090, AMD_6900XT):
        if name.lower() in spec.name.lower():
            return spec
    raise KeyError(f"unknown GPU {name!r}")


# -- calibration constants (the timing model's only free parameters) --------

#: Occupancy -> efficiency saturation constant: eff = occ / (occ + K).
OCC_SATURATION_K = 0.1285

#: Penalty slope when a kernel exceeds the per-thread register cap and the
#: compiler spills to local (device) memory.
REG_CAP_PENALTY_COEF = 3.3

#: Fraction of peak integer throughput a hand-tuned big-integer kernel
#: sustains (instruction mix, dependencies, memory stalls).  Calibrated so
#: modelled compute-bound Table 3 cells track the paper's DistMSM column.
KERNEL_EFFICIENCY = 0.686

#: Fraction of the tensor-core-offloaded multiplies that actually leave the
#: CUDA cores' critical path.  The m x n product depends on the reduction
#: multiplier m, which is word-serial, so the theoretical ~48% offload
#: realises only a small net gain (paper Fig. 12: ~5%).
TC_UTILIZATION = 0.105

#: Fraction of the raw tensor-core fragment traffic that is visible as HBM
#: stall time on the naive (uncompacted) path; the rest hits L2 / overlaps
#: with compute.  Calibrated to Fig. 12's -6.8% naive-TC slowdown.
TC_TRAFFIC_VISIBLE = 0.019

#: HIP platform efficiency relative to CUDA/OpenCL (paper Fig. 9 discussion).
HIP_EFFICIENCY = 0.82

#: Fraction of explicit-spill shared-memory traffic visible as stall time
#: (LDS/STS dual-issues with the integer pipe).
SPILL_TRAFFIC_VISIBLE = 0.35

#: Atomic cost model: amortised throughput cost per op, plus the
#: serialisation latency paid when many writers hit the *same* address —
#: a contended global atomic retries at roughly the L2 round-trip latency.
GLOBAL_ATOMIC_BASE_NS = 0.35
GLOBAL_ATOMIC_SERIAL_NS = 180.0
SHARED_ATOMIC_BASE_NS = 0.06
SHARED_ATOMIC_SERIAL_NS = 30.0
