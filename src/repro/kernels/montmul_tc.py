"""Montgomery multiplication with tensor cores (paper §4.3) — real numerics.

Tensor cores multiply uint8 matrices with uint32 accumulation.  The trick:
a big integer is a polynomial in base 2^8, so the product ``m x n`` (with the
modulus ``n`` constant) is a convolution of byte digits — expressible as a
vector-matrix product against a banded Toeplitz matrix built from ``n``'s
bytes once, offline.

This module builds that matrix, performs the product with numpy (standing in
for the MMA unit, bit-exact), and checks the structural claims the paper
makes: every uint32 output has at most ~23 significant bits, and adjacent
outputs sit at 8-bit base offsets so the vector compacts losslessly
(:mod:`repro.kernels.compaction`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fields.limbs import WORD_BITS
from repro.fields.montgomery import MontgomeryContext


def int_to_bytes_vector(value: int, num_bytes: int) -> np.ndarray:
    """Little-endian base-256 digits of ``value`` as a uint8 vector."""
    if value < 0:
        raise ValueError("negative values cannot be byte-decomposed")
    if value >> (8 * num_bytes):
        raise ValueError(f"value does not fit in {num_bytes} bytes")
    return np.array(
        [(value >> (8 * i)) & 0xFF for i in range(num_bytes)], dtype=np.uint8
    )


def bytes_vector_to_int(vec: np.ndarray) -> int:
    return sum(int(b) << (8 * i) for i, b in enumerate(vec))


def constant_operand_matrix(constant: int, num_bytes: int) -> np.ndarray:
    """The byte matrix for a constant right operand (paper Fig. 6).

    ``matB[j, i]`` holds byte ``i - j`` of the constant, so a left byte
    vector ``a`` satisfies ``(a @ matB)[i] == sum_j a_j * n_{i-j}`` — the
    convolution that defines the product's base-256 accumulators.  Building
    this layout is expensive, which is why it only pays off for constants
    (the modulus ``n`` in Montgomery reduction).
    """
    n_bytes = int_to_bytes_vector(constant, num_bytes)
    out_cols = 2 * num_bytes
    mat = np.zeros((num_bytes, out_cols), dtype=np.uint8)
    for j in range(num_bytes):
        mat[j, j : j + num_bytes] = n_bytes
    return mat


def tensor_core_multiply(a: int, mat_b: np.ndarray) -> np.ndarray:
    """Multiply via the byte matrix: returns the uint32 accumulator vector.

    Each output element accumulates at most ``num_bytes`` uint8*uint8
    products, so it fits comfortably in uint32 — the paper's "at most 23
    significant bits" for ≤ 95-byte operands.
    """
    num_bytes = mat_b.shape[0]
    a_vec = int_to_bytes_vector(a, num_bytes).astype(np.int64)
    acc = a_vec @ mat_b.astype(np.int64)
    if acc.max(initial=0) >= (1 << 32):
        raise AssertionError("tensor-core accumulator overflowed uint32")
    return acc.astype(np.uint32)


def accumulators_to_int(acc: np.ndarray) -> int:
    """Resolve the base-256 accumulator vector into the integer product."""
    return sum(int(c) << (8 * i) for i, c in enumerate(acc))


def max_significant_bits(num_bytes: int) -> int:
    """Worst-case significant bits of one uint32 accumulator element."""
    return (num_bytes * 255 * 255).bit_length()


@dataclass
class TcMontMulResult:
    """Outputs of one tensor-core Montgomery multiplication."""

    product: int  # the Montgomery product (ordinary integer)
    tc_accumulators: np.ndarray  # raw uint32 outputs of the m x n MMA
    mma_ops: int  # uint8 multiply-accumulate count on tensor cores
    cuda_mul_ops: int  # 32x32 multiplies left on CUDA cores


class TensorCoreMontgomery:
    """SOS Montgomery multiplication with the ``m x n`` step on tensor cores.

    The first wide multiplication ``A x B`` stays on CUDA cores (both operands
    vary), the reduction multiplication ``m x n`` runs as a byte-matrix
    product against the precomputed matrix of the constant modulus.
    """

    def __init__(self, ctx: MontgomeryContext):
        self.ctx = ctx
        self.num_bytes = ctx.num_limbs * (WORD_BITS // 8)
        self.mat_n = constant_operand_matrix(ctx.modulus, self.num_bytes)

    def reduction_m(self, c: int) -> int:
        """The full-width reduction multiplier ``m = -C * n^{-1} mod R``.

        Word-serial on a GPU (each ``m`` word depends on prior reduction
        carries); cheap because only low words are touched.
        """
        r = self.ctx.r
        n_prime = (-pow(self.ctx.modulus, -1, r)) % r
        return (c % r) * n_prime % r

    def multiply(self, a_mont: int, b_mont: int) -> TcMontMulResult:
        """Montgomery-multiply with the reduction product on tensor cores."""
        n_limbs = self.ctx.num_limbs
        c = a_mont * b_mont  # CUDA-core schoolbook product
        m = self.reduction_m(c)
        acc = tensor_core_multiply(m, self.mat_n)  # TC: m x n
        mn = accumulators_to_int(acc)
        t = c + mn
        if t % self.ctx.r:
            raise AssertionError("Montgomery reduction not exact")
        u = t >> (WORD_BITS * n_limbs)
        if u >= self.ctx.modulus:
            u -= self.ctx.modulus
        return TcMontMulResult(
            product=u,
            tc_accumulators=acc,
            mma_ops=self.num_bytes * self.num_bytes,
            cuda_mul_ops=n_limbs * n_limbs + n_limbs,
        )
