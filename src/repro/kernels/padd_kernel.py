"""Kernel descriptors: curve x optimisation flags -> resource/cost figures.

This is the bridge between the paper's §4 kernel techniques and the GPU
timing model.  A :class:`KernelDescriptor` aggregates, for one curve and one
set of optimisation toggles (the exact toggles of Fig. 12):

* peak live big integers and registers per thread (driving occupancy),
* modular multiplications per PADD/PACC/PDBL,
* word-level multiply/add counts per modular multiplication,
* tensor-core offload share and its memory-traffic factor,
* explicit-spill shared-memory traffic.

Everything that can be computed from first principles is (scheduler results,
Montgomery op counts, spill plans); hardware throughput mapping lives in
:mod:`repro.gpu.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.curves.params import CurveParams
from repro.curves.point import PACC_MODMULS, PADD_MODMULS, PDBL_MODMULS
from repro.fields.limbs import OpCounter, to_limbs
from repro.fields.montgomery import MontgomeryContext
from repro.kernels.dag import (
    build_pacc_dag,
    build_padd_dag,
    build_pdbl_dag,
    entry_live,
    peak_live,
)
from repro.kernels.scheduler import find_optimal_schedule
from repro.kernels.spill import SpillPlan, plan_spills

#: How many live big integers explicit spilling removes (paper: 7 -> 5).
SPILL_REDUCTION = 2

#: Registers available per thread before the hardware cap penalises further.
HARDWARE_REG_CAP = 255


@dataclass(frozen=True)
class KernelOptimisations:
    """The §4 optimisation toggles, in Fig. 12's cumulative order."""

    use_pacc: bool = False
    optimal_order: bool = False
    explicit_spill: bool = False
    tc_montmul: bool = False
    tc_compaction: bool = False

    @staticmethod
    def none() -> "KernelOptimisations":
        return KernelOptimisations()

    @staticmethod
    def all() -> "KernelOptimisations":
        return KernelOptimisations(True, True, True, True, True)

    @staticmethod
    def cumulative_stages() -> list[tuple[str, "KernelOptimisations"]]:
        """The incremental stages of the paper's Fig. 12."""
        return [
            ("baseline", KernelOptimisations()),
            ("PADD->PACC", KernelOptimisations(True)),
            ("Optimal Exec Order", KernelOptimisations(True, True)),
            ("Explicit Spill", KernelOptimisations(True, True, True)),
            ("MontMul with TC", KernelOptimisations(True, True, True, True)),
            ("On-the-fly Compact", KernelOptimisations(True, True, True, True, True)),
        ]


@lru_cache(maxsize=None)
def _schedule_info(dag_name: str) -> dict:
    """Scheduler results per DAG, computed once per process."""
    builders = {
        "PADD": build_padd_dag,
        "PACC": build_pacc_dag,
        "PDBL": build_pdbl_dag,
    }
    dag = builders[dag_name]()
    optimal = find_optimal_schedule(dag)
    return {
        "dag": dag,
        "written_peak": peak_live(dag),
        "optimal_peak": optimal.peak,
        "optimal_order": optimal.order,
    }


@lru_cache(maxsize=None)
def _montmul_word_ops(num_limbs: int) -> tuple[int, int]:
    """(word multiplies, word adds) of one SOS Montgomery multiplication."""
    # measure on a synthetic odd modulus with the requested limb count
    modulus = (1 << (32 * num_limbs)) - 0x2F
    while modulus % 2 == 0:
        modulus -= 1
    ctx = MontgomeryContext(modulus, num_limbs)
    counter = OpCounter()
    a = to_limbs(modulus - 12345, num_limbs)
    b = to_limbs(modulus - 98765, num_limbs)
    ctx.mont_mul_sos(a, b, counter)
    return counter.mul, counter.add


def spill_plan_for(dag_name: str, budget: int) -> SpillPlan:
    """The explicit-spill plan for a DAG under the given live budget."""
    info = _schedule_info(dag_name)
    return plan_spills(info["dag"], list(info["optimal_order"]), budget)


@dataclass(frozen=True)
class KernelDescriptor:
    """Resource and cost figures for one curve + optimisation combination."""

    curve: CurveParams
    opts: KernelOptimisations

    # -- register pressure ------------------------------------------------

    def live_bigints(self, op: str) -> int:
        """Peak concurrently live big integers for one EC operation."""
        if op not in ("padd", "pacc", "pdbl"):
            raise ValueError(f"unknown op {op!r}")
        if op == "pdbl":
            dag_name = "PDBL"
        else:
            dag_name = "PACC" if (op == "pacc" and self.opts.use_pacc) else "PADD"
        info = _schedule_info(dag_name)
        live = info["optimal_peak"] if self.opts.optimal_order else info["written_peak"]
        if self.opts.explicit_spill:
            # spilling cannot shrink the entry working set (8 for PADD, 4
            # for PACC); the paper's 7 -> 5 claim is for PACC
            live = max(live - SPILL_REDUCTION, entry_live(info["dag"]))
        if self.opts.tc_compaction and self.curve.num_limbs >= 24:
            # wide curves: zero-padded byte matrices inflate the fragment
            # working set by about two big integers (paper: compaction makes
            # MNT4753 8.2% slower because of the extra register pressure)
            live += 2
        return live

    def registers_per_thread(self, op: str) -> int:
        """Registers per thread: live big integers x limbs (paper's metric)."""
        return self.live_bigints(op) * self.curve.num_limbs

    def spill_plan(self, op: str) -> SpillPlan | None:
        """The explicit-spill plan, or None when spilling is off."""
        if not self.opts.explicit_spill:
            return None
        if op == "pdbl":
            dag_name = "PDBL"
        else:
            dag_name = "PACC" if (op == "pacc" and self.opts.use_pacc) else "PADD"
        info = _schedule_info(dag_name)
        budget = info["optimal_peak" if self.opts.optimal_order else "written_peak"]
        budget = max(budget - SPILL_REDUCTION, entry_live(info["dag"]))
        return spill_plan_for(dag_name, budget)

    # -- arithmetic volume --------------------------------------------------

    def modmuls(self, op: str) -> int:
        """Modular multiplications per EC operation."""
        table = {
            "padd": PADD_MODMULS,
            "pacc": PACC_MODMULS if self.opts.use_pacc else PADD_MODMULS,
            "pdbl": PDBL_MODMULS,
        }
        if op not in table:
            raise ValueError(f"unknown op {op!r}")
        return table[op]

    def word_ops_per_modmul(self) -> tuple[int, int]:
        """(word multiplies, word adds) of one modular multiplication."""
        return _montmul_word_ops(self.curve.num_limbs)

    # -- tensor-core profile ---------------------------------------------------

    @property
    def tc_offload_share(self) -> float:
        """Fraction of word multiplies moved to tensor cores.

        In SOS, the ``m x n`` product is N^2 of the 2N^2 + N multiplies.
        """
        if not self.opts.tc_montmul:
            return 0.0
        n = self.curve.num_limbs
        return n * n / (2 * n * n + n)

    @property
    def tc_traffic_factor(self) -> float:
        """Memory-traffic multiplier for fetching TC results.

        The naive path writes raw uint32 fragments through the official store
        API — 4x the optimal traffic; on-the-fly compaction brings it to 1x.
        """
        if not self.opts.tc_montmul:
            return 0.0
        return 1.0 if self.opts.tc_compaction else 4.0

    def describe(self) -> dict:
        """A readable summary (used by examples and docs)."""
        return {
            "curve": self.curve.name,
            "opts": self.opts,
            "live_pacc": self.live_bigints("pacc"),
            "live_padd": self.live_bigints("padd"),
            "regs_pacc": self.registers_per_thread("pacc"),
            "regs_padd": self.registers_per_thread("padd"),
            "modmuls_pacc": self.modmuls("pacc"),
            "modmuls_padd": self.modmuls("padd"),
            "tc_offload_share": round(self.tc_offload_share, 4),
        }
