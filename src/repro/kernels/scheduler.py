"""Optimal execution sequencing for PADD/PACC (paper §4.2.1).

The paper observes that GPU compilers schedule at the machine-instruction
level and miss the big-integer-granularity reordering opportunity, so
DistMSM searches *all* topological orders of the ~20 operations for the one
minimising peak concurrently-live big integers.  Brute force is feasible
because the dependence structure collapses the search space (the paper's
bound: at most 12! merged scheduling units).

We implement the search as memoised dynamic programming over *downsets*
(sets of already-executed ops): the minimal achievable future peak depends
only on which ops have run, not on their order, so each downset is solved
once.  For the PADD/PACC DAGs this visits a few thousand states.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.kernels.dag import OpDag, peak_live


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of the exhaustive schedule search."""

    order: tuple[str, ...]
    peak: int
    states_visited: int

    def __iter__(self):
        return iter(self.order)


def find_optimal_schedule(dag: OpDag) -> ScheduleResult:
    """Exhaustively find a topological order with minimal peak live count.

    Returns the order (op names), the achieved peak, and the number of
    distinct DP states visited (a measure of the search cost the paper's
    12!-style bound talks about).
    """
    ops = list(dag.ops)
    n = len(ops)
    op_index = {op.name: i for i, op in enumerate(ops)}
    deps_by_name = dag.dependencies()
    dep_masks = [0] * n
    for name, deps in deps_by_name.items():
        mask = 0
        for d in deps:
            mask |= 1 << op_index[d]
        dep_masks[op_index[name]] = mask

    # Consumers per variable, as op bitmasks, for liveness transitions.
    consumers: dict[str, int] = {}
    for i, op in enumerate(ops):
        for v in op.inputs:
            consumers[v] = consumers.get(v, 0) | (1 << i)

    producers = {op.output: i for i, op in enumerate(ops)}
    end_live = dag.live_at_end
    start_live = {
        v for v in dag.live_at_start if v in consumers or v in end_live
    }
    full_mask = (1 << n) - 1
    states = 0

    def live_count(executed: int) -> int:
        """Number of live big integers once ``executed`` ops have run."""
        live = 0
        # start-live variables stay live until their last consumer has run
        for v in start_live:
            pending = consumers.get(v, 0) & ~executed
            if pending or v in end_live:
                live += 1
        for v, producer in producers.items():
            if not (executed >> producer) & 1:
                continue
            pending = consumers.get(v, 0) & ~executed
            if pending or v in end_live:
                live += 1
        # loaded operands: consumed but never produced nor start-live; they
        # are materialised at first use, so between ops they are live only
        # if some-but-not-all consumers have run... their window is within a
        # single op for our DAGs (single consumer), handled in during-cost.
        return live

    @lru_cache(maxsize=None)
    def best(executed: int) -> tuple[int, tuple[str, ...]]:
        nonlocal states
        states += 1
        if executed == full_mask:
            return (live_count(executed), ())
        base_live = live_count(executed)
        best_peak = None
        best_order = None
        for i in range(n):
            bit = 1 << i
            if executed & bit or (dep_masks[i] & ~executed):
                continue
            op = ops[i]
            # materialise loaded inputs (never produced, not start-live)
            loads = sum(
                1 for v in set(op.inputs)
                if v not in producers and v not in dag.live_at_start
            )
            during = base_live + loads + (0 if op.inplace else 1)
            sub_peak, sub_order = best(executed | bit)
            peak = max(during, sub_peak, live_count(executed | bit))
            if best_peak is None or peak < best_peak:
                best_peak = peak
                best_order = (op.name,) + sub_order
        if best_peak is None:
            raise ValueError("DAG has a dependency cycle")
        return (best_peak, best_order)

    peak0, order = best(0)
    peak = max(peak0, live_count(0))
    result = ScheduleResult(order=order, peak=peak, states_visited=states)
    best.cache_clear()
    return result


def written_order_peak(dag: OpDag) -> int:
    """Peak live count of the algorithm as written (the baseline kernels)."""
    return peak_live(dag)
