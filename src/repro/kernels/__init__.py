"""GPU kernel models: the paper's §4 contributions, executed for real.

* :mod:`repro.kernels.dag` — PADD/PACC as operation DAGs with the register
  liveness semantics of the paper's analysis (a Montgomery multiplication
  needs a fresh temporary; subtraction can be computed in place).
* :mod:`repro.kernels.scheduler` — exhaustive search over topological orders
  for the execution sequence minimising peak live big integers (§4.2.1).
* :mod:`repro.kernels.spill` — explicit register spilling to shared memory
  (§4.2.2) with furthest-next-use victim selection.
* :mod:`repro.kernels.montmul_tc` — Montgomery multiplication's ``m x n``
  step as a real uint8 matrix multiplication (§4.3).
* :mod:`repro.kernels.compaction` — on-the-fly compaction of tensor-core
  uint32 outputs into 45-bit partials (§4.3, Fig. 7).
* :mod:`repro.kernels.padd_kernel` — the kernel descriptor combining all of
  the above into registers/occupancy/cost-per-operation figures used by the
  GPU timing model.
"""

from repro.kernels.dag import OpDag, build_pacc_dag, build_padd_dag, peak_live
from repro.kernels.padd_kernel import KernelDescriptor, KernelOptimisations
from repro.kernels.scheduler import find_optimal_schedule
from repro.kernels.spill import plan_spills

__all__ = [
    "OpDag",
    "build_pacc_dag",
    "build_padd_dag",
    "peak_live",
    "KernelDescriptor",
    "KernelOptimisations",
    "find_optimal_schedule",
    "plan_spills",
]
