"""On-the-fly compaction of tensor-core outputs (paper §4.3, Fig. 7).

A 2N-bit product leaves the tensor core as ``N/4`` uint32 accumulators whose
bases are offset by 8 bits — three quarters of the stored bits are redundant
zeros.  Writing the raw fragments to memory and compacting there costs 4x the
optimal traffic; DistMSM instead shuffles ``matB``'s columns so each thread
ends up holding four *consecutive* accumulators, which it folds in registers:

    V_t = sum_{j=0..3} C_{4t+j} * 2^{8j}

yielding one ≤45-bit partial per group (for 256-bit operands).  This module
executes that compaction for real and models the register/memory cost of the
naive and compacted paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.montmul_tc import accumulators_to_int


@dataclass(frozen=True)
class FragmentLayout:
    """How one warp's tensor-core output fragments map to threads.

    Mirrors the paper's Fig. 7: each thread natively holds two consecutive
    uint32 elements, and groups of 8 consecutive elements are spread over 4
    threads; after the matB column shuffle each thread owns 4 consecutive
    elements of both the lower and upper halves.
    """

    num_accumulators: int
    elements_per_thread_native: int = 2
    elements_per_thread_shuffled: int = 4

    @property
    def threads_used(self) -> int:
        return self.num_accumulators // self.elements_per_thread_native

    def shuffled_owner(self, element_index: int) -> int:
        """Thread owning ``element_index`` after the matB column shuffle."""
        half = self.num_accumulators // 2
        local = element_index % half
        return (local // self.elements_per_thread_shuffled) % (self.threads_used // 2)


def shuffle_columns(mat_b: np.ndarray) -> np.ndarray:
    """Reorder matB columns so each thread gets 4 consecutive outputs.

    The physical permutation swaps interleaved column pairs (the paper's
    example: columns {2,3,18,19} with {8,9,24,25} for a 32-column half).
    Mathematically the product is unchanged up to the same permutation of the
    output vector, which the compaction below undoes — so correctness is
    testable end to end.
    """
    cols = mat_b.shape[1]
    perm = column_permutation(cols)
    return mat_b[:, perm]


def column_permutation(cols: int) -> np.ndarray:
    """The column order that makes 4-element groups thread-contiguous.

    Native layout: thread t of a 4-thread group holds elements
    ``(g*8) + 2t`` and ``(g*8) + 2t + 1`` of each 8-element group g.  The
    shuffle reassigns so thread t holds ``4t .. 4t+3`` within a 16-element
    super-group.
    """
    perm = []
    for base in range(0, cols, 16):
        group = list(range(base, min(base + 16, cols)))
        if len(group) < 16:
            perm.extend(group)
            continue
        # interleave: thread0: 0,1,8,9 -> wants 0,1,2,3; i.e. gather pairs
        reordered = []
        for t in range(4):
            reordered.extend([group[2 * t], group[2 * t + 1], group[8 + 2 * t], group[8 + 2 * t + 1]])
        perm.extend(reordered)
    return np.array(perm, dtype=np.int64)


def compact_accumulators(acc: np.ndarray, group: int = 4) -> list[int]:
    """Fold ``group`` consecutive uint32 accumulators into one integer each.

    Returns the list of ≤(23 + 8*(group-1))-bit partials ``V_t``; the
    original product is ``sum(V_t << (8 * group * t))``.
    """
    if len(acc) % group:
        raise ValueError(f"accumulator count {len(acc)} not divisible by {group}")
    partials = []
    for t in range(0, len(acc), group):
        v = 0
        for j in range(group):
            v += int(acc[t + j]) << (8 * j)
        partials.append(v)
    return partials


def partials_to_int(partials: list[int], group: int = 4) -> int:
    """Reassemble the product from compacted partials."""
    return sum(v << (8 * group * t) for t, v in enumerate(partials))


def compacted_bits(num_bytes: int, group: int = 4) -> int:
    """Worst-case bit width of one compacted partial.

    For 256-bit operands (32 bytes) this is the paper's 45-bit figure.
    """
    element = num_bytes * 255 * 255  # exact worst case, not 2^bits - 1
    total = sum(element << (8 * j) for j in range(group))
    return total.bit_length()


@dataclass(frozen=True)
class CompactionCost:
    """Memory-traffic model for moving one TC product out of the MMA unit."""

    bytes_naive: int  # raw uint32 fragments via official store APIs
    bytes_compacted: int  # 45-bit partials packed as 64-bit words
    register_words_naive: int
    register_words_compacted: int


def compaction_cost(num_bytes: int) -> CompactionCost:
    """The 4x traffic gap the paper quotes for the naive path.

    The fully-compacted product is exactly 2N bits — ``N/16`` uint32 words
    for an N-bit operand — whereas the raw fragments occupy ``N/4`` uint32
    words: a 4x difference in both traffic and footprint.
    """
    num_acc = 2 * num_bytes  # raw uint32 fragments
    compact_words = num_acc // 4  # 2N bits of payload in uint32 words
    return CompactionCost(
        bytes_naive=num_acc * 4,
        bytes_compacted=compact_words * 4,
        register_words_naive=num_acc,
        register_words_compacted=compact_words,
    )


def verify_compaction_round_trip(acc: np.ndarray) -> bool:
    """Property: compaction then reassembly reproduces the raw product."""
    raw = accumulators_to_int(acc)
    partials = compact_accumulators(acc)
    return partials_to_int(partials) == raw
