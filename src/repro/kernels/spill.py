"""Explicit register spilling to shared memory (paper §4.2.2).

Compiler-driven spilling goes to device memory and is slow; DistMSM instead
emits explicit moves between registers and *shared memory* for selected big
integers.  This module plans those moves for a given schedule and register
budget using the classic furthest-next-use (Belady) victim policy the paper
alludes to ("decisions ... can be guided by traditional register spilling
algorithms").

The plan reports the quantities the paper quotes for PACC at a budget of
5 live big integers: how many big-integer transfers occur and the peak
number of big integers resident in shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels.dag import OpDag


@dataclass
class SpillPlan:
    """Result of spill planning for one schedule under a register budget."""

    register_budget: int
    transfers: int
    peak_shm_bigints: int
    peak_registers: int
    #: (op name, "spill" | "reload", variable) in execution order
    moves: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.peak_registers <= self.register_budget


def plan_spills(dag: OpDag, order: list[str], register_budget: int) -> SpillPlan:
    """Plan explicit spills so at most ``register_budget`` big integers sit in
    registers at any point during ``order``.

    Victims are chosen among register-resident values not needed by the
    current operation, preferring the furthest next use.  Raises
    ``ValueError`` when the budget is below the operation working set
    (inputs + output of a single op can never be spilled).
    """
    name_to_op = {op.name: op for op in dag.ops}
    ops = [name_to_op[n] for n in order]
    producers = {op.output for op in ops}

    # next-use table: for each var, the op indices that consume it
    uses: dict[str, list[float]] = {}
    for idx, op in enumerate(ops):
        for v in op.inputs:
            uses.setdefault(v, []).append(idx)
    for v in dag.live_at_end:
        uses.setdefault(v, []).append(len(ops))  # "used" at the end

    def next_use(v: str, after: int) -> float:
        return next((u for u in uses.get(v, []) if u >= after), float("inf"))

    regs = {
        v for v in dag.live_at_start
        if uses.get(v)  # drop start values never consumed
    }
    shm: set[str] = set()
    moves: list[tuple[str, str, str]] = []
    transfers = 0
    peak_shm = 0
    peak_regs = len(regs)

    for idx, op in enumerate(ops):
        # 1. reload spilled inputs
        for v in op.inputs:
            if v in shm:
                shm.discard(v)
                regs.add(v)
                moves.append((op.name, "reload", v))
                transfers += 1
        # loaded operands materialise in registers now
        for v in op.inputs:
            if v not in regs and v not in producers.union(dag.live_at_start):
                regs.add(v)

        working = set(op.inputs)
        need = len(regs | working) + (0 if op.inplace else 1)
        # 2. spill furthest-next-use victims until the op fits
        while need > register_budget:
            # sorted so the furthest-next-use tie-break never depends on
            # hash order (victim choice must match across processes)
            candidates = sorted(v for v in regs if v not in working)
            if not candidates:
                raise ValueError(
                    f"budget {register_budget} below working set of {op.name}"
                )
            victim = max(candidates, key=lambda v: next_use(v, idx))
            regs.discard(victim)
            shm.add(victim)
            moves.append((op.name, "spill", victim))
            transfers += 1
            need -= 1
        peak_regs = max(peak_regs, need)
        peak_shm = max(peak_shm, len(shm))

        # 3. execute: output defined, dead values vacate registers
        regs.add(op.output)
        for v in list(regs):
            if next_use(v, idx + 1) == float("inf") and v not in dag.live_at_end:
                regs.discard(v)
        for v in list(shm):
            if next_use(v, idx + 1) == float("inf") and v not in dag.live_at_end:
                shm.discard(v)
        peak_regs = max(peak_regs, len(regs))
        peak_shm = max(peak_shm, len(shm))

    # end-live values must finish in registers (they are the kernel output)
    for v in sorted(shm & dag.live_at_end):
        moves.append(("<end>", "reload", v))
        transfers += 1
    return SpillPlan(
        register_budget=register_budget,
        transfers=transfers,
        peak_shm_bigints=peak_shm,
        peak_registers=peak_regs,
        moves=moves,
    )


def plan_spills_optimal(
    dag: OpDag,
    order: list[str],
    register_budget: int,
    state_limit: int = 200_000,
) -> SpillPlan:
    """Minimum-transfer spill plan via memoised branch and bound.

    Where :func:`plan_spills` commits to the furthest-next-use victim,
    this search tries *every* victim choice at every decision point and
    memoises on (position, registers, shared memory), returning a plan
    with provably minimal big-integer transfers for the given schedule —
    the number the paper quotes for PACC under a 5-register budget.
    """
    name_to_op = {op.name: op for op in dag.ops}
    ops = [name_to_op[n] for n in order]
    producers = {op.output for op in ops}

    uses: dict[str, list[int]] = {}
    for idx, op in enumerate(ops):
        for v in op.inputs:
            uses.setdefault(v, []).append(idx)
    for v in dag.live_at_end:
        uses.setdefault(v, []).append(len(ops))

    def alive_after(v: str, idx: int) -> bool:
        return any(u > idx for u in uses.get(v, []))

    start_regs = frozenset(v for v in dag.live_at_start if uses.get(v))
    states_seen = 0
    memo: dict[tuple[int, frozenset[str], frozenset[str]], int | None] = {}

    def search(idx: int, regs: frozenset, shm: frozenset) -> int | None:
        """Minimal future transfers, or None if infeasible."""
        nonlocal states_seen
        if idx == len(ops):
            return len(shm & dag.live_at_end)  # reload outputs at the end
        key = (idx, regs, shm)
        if key in memo:
            return memo[key]
        states_seen += 1
        if states_seen > state_limit:
            raise RuntimeError("spill search exceeded its state budget")
        op = ops[idx]

        # mandatory reloads for spilled inputs
        reload_cost = len(set(op.inputs) & shm)
        regs1 = set(regs) | (set(op.inputs) & shm)
        shm1 = set(shm) - set(op.inputs)
        for v in op.inputs:  # loaded operands materialise
            if v not in regs1 and v not in producers and v not in dag.live_at_start:
                regs1.add(v)

        working = set(op.inputs)
        overflow = len(regs1 | working) + (0 if op.inplace else 1) - register_budget
        best = None
        candidate_sets = [frozenset()]
        if overflow > 0:
            from itertools import combinations

            victims_pool = sorted(regs1 - working)
            if len(victims_pool) < overflow:
                memo[key] = None
                return None
            candidate_sets = [
                frozenset(c) for c in combinations(victims_pool, overflow)
            ]
        for victims in candidate_sets:
            regs2 = set(regs1) - victims
            shm2 = set(shm1) | victims
            # execute the op
            regs3 = set(regs2)
            regs3.add(op.output)
            regs3 = {v for v in regs3 if alive_after(v, idx) or v in dag.live_at_end}
            shm3 = {v for v in shm2 if alive_after(v, idx) or v in dag.live_at_end}
            if len(regs3) > register_budget:
                continue
            sub = search(idx + 1, frozenset(regs3), frozenset(shm3))
            if sub is None:
                continue
            cost = reload_cost + len(victims) + sub
            if best is None or cost < best:
                best = cost
        memo[key] = best
        return best

    minimal = search(0, start_regs, frozenset())
    if minimal is None:
        raise ValueError(
            f"budget {register_budget} infeasible for this schedule"
        )
    greedy = plan_spills(dag, order, register_budget)
    return SpillPlan(
        register_budget=register_budget,
        transfers=minimal,
        peak_shm_bigints=greedy.peak_shm_bigints,
        peak_registers=min(greedy.peak_registers, register_budget),
        moves=[],  # the count is the deliverable; moves available via greedy
    )


def schedule_and_spill(
    dag: OpDag,
    register_budget: int,
    state_limit: int = 2_000_000,
) -> tuple[int, int]:
    """Jointly minimise transfers over *all* schedules and spill choices.

    The scheduler's optimum is not unique; different topological orders
    admit cheaper spill plans.  This DP explores (executed ops, register
    residents, shared-memory residents) states — small enough for the
    PADD/PACC/PDBL DAGs — and returns ``(min transfers, states visited)``.
    This is how the paper-grade bound ("transferring 4 big integers" for
    PACC in 5 registers) is established rather than assumed.
    """
    ops = list(dag.ops)
    n = len(ops)
    op_index = {op.name: i for i, op in enumerate(ops)}
    deps = dag.dependencies()
    dep_masks = [0] * n
    for name, dd in deps.items():
        for d in dd:
            dep_masks[op_index[name]] |= 1 << op_index[d]

    consumers: dict[str, int] = {}
    for i, op in enumerate(ops):
        for v in op.inputs:
            consumers.setdefault(v, 0)
            consumers[v] |= 1 << i
    producers = {op.output for op in ops}
    full = (1 << n) - 1

    def alive(v: str, executed: int) -> bool:
        pending = consumers.get(v, 0) & ~executed
        return bool(pending) or v in dag.live_at_end

    start_regs = frozenset(
        v for v in dag.live_at_start if v in consumers or v in dag.live_at_end
    )
    memo: dict[tuple[int, frozenset[str], frozenset[str]], int | None] = {}
    states = 0

    def search(executed: int, regs: frozenset, shm: frozenset) -> int | None:
        nonlocal states
        if executed == full:
            return len(shm & dag.live_at_end)
        key = (executed, regs, shm)
        if key in memo:
            return memo[key]
        states += 1
        if states > state_limit:
            raise RuntimeError("joint schedule+spill search exceeded budget")
        best = None
        for i in range(n):
            bit = 1 << i
            if executed & bit or (dep_masks[i] & ~executed):
                continue
            op = ops[i]
            reload_cost = len(set(op.inputs) & shm)
            regs1 = set(regs) | (set(op.inputs) & shm)
            shm1 = set(shm) - set(op.inputs)
            for v in op.inputs:
                if (
                    v not in regs1
                    and v not in producers
                    and v not in dag.live_at_start
                ):
                    regs1.add(v)
            working = set(op.inputs)
            overflow = (
                len(regs1 | working) + (0 if op.inplace else 1) - register_budget
            )
            if overflow > 0:
                pool = sorted(regs1 - working)
                if len(pool) < overflow:
                    continue
                from itertools import combinations

                candidate_sets = [frozenset(c) for c in combinations(pool, overflow)]
            else:
                candidate_sets = [frozenset()]
            done = executed | bit
            for victims in candidate_sets:
                regs2 = (regs1 - victims) | {op.output}
                shm2 = set(shm1) | victims
                regs3 = frozenset(v for v in regs2 if alive(v, done))
                shm3 = frozenset(v for v in shm2 if alive(v, done))
                if len(regs3) > register_budget:
                    continue
                sub = search(done, regs3, shm3)
                if sub is None:
                    continue
                cost = reload_cost + len(victims) + sub
                if best is None or cost < best:
                    best = cost
        memo[key] = best
        return best

    result = search(0, start_regs, frozenset())
    if result is None:
        raise ValueError(f"budget {register_budget} is infeasible for {dag.name}")
    return result, states
