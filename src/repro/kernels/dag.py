"""Operation DAGs for PADD and PACC with register-liveness semantics.

The paper analyses register pressure in units of *concurrently live big
integers* (§4.2): each live big integer occupies ``num_limbs`` registers.
The accounting convention, which reproduces the paper's published peaks
(straightforward PADD = 11, straightforward PACC = 9), is:

* the accumulator / both partial results are live at entry and the updated
  coordinates must be live at exit;
* point operands that arrive from memory become live when first used;
* a *multiplication* (Montgomery) accumulates into a fresh temporary — its
  output always costs one extra register beyond the live set;
* a *subtraction* written in-place in the algorithm text (``V = V - PPP``)
  reuses its destination register; a subtraction with a fresh destination
  takes a new register (conservative codegen, as the baselines do).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Op:
    """A single big-integer operation in the kernel.

    ``inplace`` marks operations whose destination register is one of the
    inputs (the algorithm text writes them as updates).
    """

    name: str
    output: str
    inputs: tuple[str, ...]
    kind: str  # "mul" | "sub"
    inplace: bool = False

    def __repr__(self) -> str:
        op = "*" if self.kind == "mul" else "-"
        star = " (inplace)" if self.inplace else ""
        return f"{self.output} = {self.inputs[0]} {op} {self.inputs[1]}{star}"


@dataclass
class OpDag:
    """An operation list plus its liveness boundary conditions."""

    name: str
    ops: list[Op] = field(default_factory=list)
    live_at_start: frozenset[str] = frozenset()
    live_at_end: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        names = [op.name for op in self.ops]
        if len(set(names)) != len(names):
            raise ValueError("duplicate op names in DAG")
        outputs = [op.output for op in self.ops]
        if len(set(outputs)) != len(outputs):
            raise ValueError(
                "each op must define a unique variable; encode register reuse "
                "via liveness, not shared names"
            )

    @property
    def producers(self) -> dict[str, Op]:
        """Variable name -> op producing it (start-live vars have none)."""
        return {op.output: op for op in self.ops}

    def dependencies(self) -> dict[str, set[str]]:
        """Op name -> set of op names that must execute first."""
        producers = self.producers
        deps: dict[str, set[str]] = {}
        for op in self.ops:
            deps[op.name] = {
                producers[v].name for v in op.inputs if v in producers
            }
        return deps

    def validate(self) -> None:
        """Check the written order defines every produced value before use.

        Inputs that are neither produced nor start-live are loaded operands
        and always acceptable; a produced value consumed before its
        producing op is a malformed DAG.
        """
        produced_at = {op.output: idx for idx, op in enumerate(self.ops)}
        for idx, op in enumerate(self.ops):
            for v in op.inputs:
                if v in produced_at and produced_at[v] >= idx:
                    raise ValueError(
                        f"op {op.name} consumes {v!r} before it is produced"
                    )

    def last_uses(self) -> dict[str, float]:
        """Variable -> index of its last consuming op (end-live vars -> inf)."""
        last: dict[str, float] = {}
        for idx, op in enumerate(self.ops):
            for v in op.inputs:
                last[v] = idx
        for v in self.live_at_end:
            last[v] = float("inf")
        return last

    @property
    def num_muls(self) -> int:
        return sum(1 for op in self.ops if op.kind == "mul")


def entry_live(dag: OpDag) -> int:
    """Big integers live at kernel entry (the floor no schedule can beat)."""
    uses = {v for op in dag.ops for v in op.inputs}
    return sum(1 for v in dag.live_at_start if v in uses or v in dag.live_at_end)


def _future_uses(ops: list[Op], live_at_end: frozenset[str]) -> dict[str, list[float]]:
    """Variable -> sorted list of op indices that consume it."""
    uses: dict[str, list[float]] = {}
    for idx, op in enumerate(ops):
        for v in op.inputs:
            uses.setdefault(v, []).append(idx)
    for v in live_at_end:
        uses.setdefault(v, []).append(float("inf"))
    return uses


def peak_live(dag: OpDag, order: list[str] | None = None) -> int:
    """Peak number of concurrently live big integers for an execution order.

    ``order`` is a list of op names; defaults to the DAG's written order.
    """
    name_to_op = {op.name: op for op in dag.ops}
    if order is None:
        ops = list(dag.ops)
    else:
        if sorted(order) != sorted(name_to_op):
            raise ValueError("order must be a permutation of the DAG's ops")
        ops = [name_to_op[n] for n in order]

    uses = _future_uses(ops, dag.live_at_end)
    produced_by = {op.output: op for op in ops}

    # A variable is live from its materialisation (production, or first use
    # for loaded/start operands... start operands are live from the top) to
    # its last use.
    live = {
        v for v in dag.live_at_start
        if v in uses or v in dag.live_at_end
    }
    peak = len(live)
    defined = set(dag.live_at_start)

    for idx, op in enumerate(ops):
        for v in op.inputs:
            if v not in defined:
                if v in produced_by:
                    raise ValueError(f"op {op.name} uses {v} before it is produced")
                # loaded operand materialises now
                defined.add(v)
                live.add(v)
        during = len(live) + (0 if op.inplace else 1)
        peak = max(peak, during)
        # output becomes defined and live if it has any future use
        defined.add(op.output)
        remaining = [u for u in uses.get(op.output, []) if u > idx]
        if remaining:
            live.add(op.output)
        # inputs whose last use is this op die
        for v in op.inputs:
            later = [u for u in uses.get(v, []) if u > idx]
            if not later:
                live.discard(v)
        peak = max(peak, len(live))
    return peak


def build_padd_dag() -> OpDag:
    """PADD in XYZZ coordinates, exactly as written in paper Algorithm 1."""
    ops = [
        Op("u1", "U1", ("X1", "ZZ2"), "mul"),
        Op("u2", "U2", ("X2", "ZZ1"), "mul"),
        Op("s1", "S1", ("Y1", "ZZZ2"), "mul"),
        Op("s2", "S2", ("Y2", "ZZZ1"), "mul"),
        Op("p", "P", ("U2", "U1"), "sub"),
        Op("r", "R", ("S2", "S1"), "sub"),
        Op("pp", "PP", ("P", "P"), "mul"),
        Op("ppp", "PPP", ("PP", "P"), "mul"),
        Op("q", "Q", ("U1", "PP"), "mul"),
        Op("v0", "V0", ("R", "R"), "mul"),
        Op("v1", "V1", ("V0", "PPP"), "sub", inplace=True),
        Op("v2", "V2", ("V1", "Q"), "sub", inplace=True),
        Op("x3", "X3", ("V2", "Q"), "sub"),
        Op("t0", "T0", ("Q", "X3"), "sub"),
        Op("y", "Y", ("R", "T0"), "mul"),
        Op("t1", "T1", ("S1", "PPP"), "mul"),
        Op("y3", "Y3", ("Y", "T1"), "sub"),
        Op("zz", "ZZ", ("ZZ1", "ZZ2"), "mul"),
        Op("zz3", "ZZ3", ("ZZ", "PP"), "mul"),
        Op("zzz", "ZZZ", ("ZZZ1", "ZZZ2"), "mul"),
        Op("zzz3", "ZZZ3", ("ZZZ", "PPP"), "mul"),
    ]
    return OpDag(
        name="PADD",
        ops=ops,
        live_at_start=frozenset({"X1", "Y1", "ZZ1", "ZZZ1", "X2", "Y2", "ZZ2", "ZZZ2"}),
        live_at_end=frozenset({"X3", "Y3", "ZZ3", "ZZZ3"}),
    )


def build_pdbl_dag(a_is_zero: bool = True) -> OpDag:
    """PDBL in XYZZ coordinates (dbl-2008-s-1), as an in-place doubling.

    The paper notes its PADD optimisations "also apply to PDBL"; this DAG
    lets the same scheduler find PDBL's optimal order.  ``a_is_zero``
    matches the pairing curves (BN254/BLS12); the MNT-style variant carries
    the extra ``a * ZZ^2`` term.
    """
    ops = [
        Op("u", "U", ("Ya", "Ya"), "add"),
        Op("v", "V", ("U", "U"), "mul"),
        Op("w", "W", ("U", "V"), "mul"),
        Op("s", "S", ("Xa", "V"), "mul"),
        Op("xx", "XX", ("Xa", "Xa"), "mul"),
        Op("m0", "M0", ("XX", "XX"), "add"),
        Op("m", "M", ("M0", "XX"), "add"),
        Op("m2", "M2", ("M", "M"), "mul"),
        Op("t0", "T0", ("M2", "S"), "sub"),
        Op("x_new", "Xn", ("T0", "S"), "sub"),
        Op("t1", "T1", ("S", "Xn"), "sub"),
        Op("t2", "T2", ("M", "T1"), "mul"),
        Op("t3", "T3", ("W", "Ya"), "mul"),
        Op("y_new", "Yn", ("T2", "T3"), "sub"),
        Op("zz_new", "ZZn", ("V", "ZZa"), "mul"),
        Op("zzz_new", "ZZZn", ("W", "ZZZa"), "mul"),
    ]
    if not a_is_zero:
        ops.insert(
            5, Op("zz2", "ZZ2", ("ZZa", "ZZa"), "mul")
        )
        ops.insert(6, Op("az", "AZ", ("ZZ2", "ZZ2"), "mul"))  # a * ZZ^2
        # fold the a-term into M
        idx = next(i for i, op in enumerate(ops) if op.name == "m")
        ops[idx] = Op("m", "Mpartial", ("M0", "XX"), "add")
        ops.insert(idx + 1, Op("m_full", "M", ("Mpartial", "AZ"), "add"))
    return OpDag(
        name="PDBL" if a_is_zero else "PDBL-a",
        ops=ops,
        live_at_start=frozenset({"Xa", "Ya", "ZZa", "ZZZa"}),
        live_at_end=frozenset({"Xn", "Yn", "ZZn", "ZZZn"}),
    )


def build_pacc_dag() -> OpDag:
    """PACC in XYZZ coordinates, exactly as written in paper Algorithm 4.

    The incoming point ``(XP, YP)`` is loaded from memory (live from first
    use); the accumulator coordinates are live at entry and their updated
    versions at exit.
    """
    ops = [
        Op("u2", "U2", ("XP", "ZZa"), "mul"),
        Op("s2", "S2", ("YP", "ZZZa"), "mul"),
        Op("p", "P", ("U2", "Xa"), "sub"),
        Op("r", "R", ("S2", "Ya"), "sub"),
        Op("pp", "PP", ("P", "P"), "mul"),
        Op("ppp", "PPP", ("PP", "P"), "mul"),
        Op("q", "Q", ("Xa", "PP"), "mul"),
        Op("v0", "V0", ("R", "R"), "mul"),
        Op("v1", "V1", ("V0", "PPP"), "sub", inplace=True),
        Op("v2", "V2", ("V1", "Q"), "sub", inplace=True),
        Op("x_new", "Xn", ("V2", "Q"), "sub"),
        Op("t0", "T0", ("Q", "Xn"), "sub"),
        Op("y", "Y", ("R", "T0"), "mul"),
        Op("t1", "T1", ("Ya", "PPP"), "mul"),
        Op("y_new", "Yn", ("Y", "T1"), "sub"),
        Op("zz_new", "ZZn", ("ZZa", "PP"), "mul"),
        Op("zzz_new", "ZZZn", ("ZZZa", "PPP"), "mul"),
    ]
    return OpDag(
        name="PACC",
        ops=ops,
        live_at_start=frozenset({"Xa", "Ya", "ZZa", "ZZZa"}),
        live_at_end=frozenset({"Xn", "Yn", "ZZn", "ZZZn"}),
    )
