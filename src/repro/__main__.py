"""Command-line interface: regenerate paper experiments from the shell.

Usage::

    python -m repro list                 # available experiments
    python -m repro table3               # the full Table 3 grid
    python -m repro fig11 --log-n 24     # Fig. 11 at a custom size
    python -m repro msm --curve BN254 --log-n 20 --gpus 8
    python -m repro trace --curve BN254 --log-n 20 --gpus 4 --out msm.json
    python -m repro tune --curve BLS12-381 --log-n 18 --gpus 4
    python -m repro cluster-replay trace.json --nodes 4 --gpus 2
"""

from __future__ import annotations

import argparse
import sys


def _experiment_runners():
    from repro.analysis import experiments
    from repro.zksnark.pipeline import table4

    return {
        "table1": lambda args: experiments.table1(),
        "table2": lambda args: experiments.table2(),
        "table3": lambda args: experiments.table3(),
        "table4": lambda args: table4(num_gpus=args.gpus or 8),
        "fig3": lambda args: experiments.figure3(),
        "fig8": lambda args: experiments.figure8(),
        "fig9": lambda args: experiments.figure9(log_n=args.log_n or 26),
        "fig10": lambda args: experiments.figure10(log_n=args.log_n or 26),
        "fig11": lambda args: experiments.figure11(log_n=args.log_n or 26),
        "fig12": lambda args: experiments.figure12(),
    }


def _run_msm(args) -> int:
    from repro import DistMsm, MultiGpuSystem, curve_by_name

    curve = curve_by_name(args.curve)
    engine = DistMsm(MultiGpuSystem(args.gpus or 1))
    n = 1 << (args.log_n or 20)
    result = engine.estimate(curve, n)
    print(
        f"{curve.name}, N=2^{args.log_n or 20}, "
        f"{args.gpus or 1} x A100: {result.time_ms:.2f} ms "
        f"(window s={result.window_size})"
    )
    for phase, ms in result.times.as_dict().items():
        print(f"  {phase:<14s} {ms:10.4f} ms")
    return 0


def _run_trace(args) -> int:
    from repro import DistMsm, MultiGpuSystem, curve_by_name
    from repro.observe import Tracer

    curve = curve_by_name(args.curve)
    gpus = args.gpus or 1
    log_n = args.log_n or 20
    trace = Tracer(f"msm-{curve.name}-2^{log_n}-{gpus}gpu")
    result = DistMsm(MultiGpuSystem(gpus)).estimate(curve, 1 << log_n, trace=trace)
    print(trace.summary())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(trace.to_chrome_json(indent=2) + "\n")
        print(f"\nChrome trace written to {args.out} (open in about:tracing)")
    print(f"\nmakespan {result.time_ms:.3f} ms, {len(trace.spans)} spans")
    return 0


def _run_tune(args) -> int:
    from repro import DistMsm, MultiGpuSystem, curve_by_name
    from repro.serve import MsmProofServer
    from repro.tune import analyze_result, seed_server, tune_msm

    curve = curve_by_name(args.curve)
    gpus = args.gpus or 4
    log_n = args.log_n or 18
    n = 1 << log_n
    seed = args.seed if args.seed is not None else 0
    budget = args.budget or 96
    system = MultiGpuSystem(gpus)

    plan = tune_msm(system, curve, n, seed=seed, budget=budget)
    print(
        f"{curve.name}, N=2^{log_n}, {gpus} x A100: analytic default "
        f"{plan.default_ms:.3f} ms -> tuned {plan.tuned_ms:.3f} ms "
        f"({plan.speedup:.3f}x, {plan.evaluations} evaluations, seed {seed})"
    )
    print(
        f"  winning config: s={plan.window_size}, scatter={plan.config.scatter}, "
        f"threads_per_bucket_min={plan.config.threads_per_bucket_min}, "
        f"bucket_reduce_on_cpu={plan.config.bucket_reduce_on_cpu}"
    )
    print()
    print(analyze_result(DistMsm(system).estimate(curve, n), "analytic-default").render())
    print()
    print(
        analyze_result(
            DistMsm(system, plan.config).estimate(curve, n), "tuned"
        ).render()
    )

    server = MsmProofServer(system)
    report = seed_server(server, [(curve, n)], seed=seed, budget=budget)
    print()
    print(report.render())
    cached, hit = server.plan_cache.lookup(server._engine_for(gpus), curve, n)
    print(
        f"plan cache now serves (curve={curve.name}, n=2^{log_n}) as a "
        f"{'HIT' if hit else 'miss'}: s={cached.window_size}, "
        f"service {cached.service_ms:.3f} ms"
    )
    if args.out:
        import json

        payload = {"plan": plan.as_dict(), "seed_report": report.as_dict()}
        with open(args.out, "w") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[tuning report written to {args.out}]")
    return 0


def _run_cluster_replay(args) -> int:
    from repro.cluster import ClusterTrace, ProofCluster, replay

    if not args.path:
        print(
            "cluster-replay needs a trace path: "
            "python -m repro cluster-replay trace.json",
            file=sys.stderr,
        )
        return 2
    trace = ClusterTrace.load(args.path)
    nodes = args.nodes or 3
    cluster = ProofCluster(nodes, gpus_per_node=args.gpus or 2)
    result = replay(cluster, trace)
    metrics = result.metrics
    print(
        f"trace {trace.name!r} ({trace.curve}, seed {trace.seed}, "
        f"{len(trace.segments)} segments) on {nodes} nodes x "
        f"{args.gpus or 2} GPUs:"
    )
    print(f"  {metrics.render()}")
    for tenant, stats in sorted(metrics.per_tenant().items()):
        print(
            f"  tenant {tenant:<12s} served {stats['served']:4d}  "
            f"shed {stats['shed']:3d}  p99 {stats['p99_ms']:9.3f} ms  "
            f"violations {stats['deadline_violations']}"
        )
    return 0


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DistMSM reproduction: regenerate the paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        help="one of: list, msm, " + ", ".join(_experiment_runners()),
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="workload trace JSON (cluster-replay command)",
    )
    parser.add_argument("--log-n", type=int, default=None, help="log2 of the MSM size")
    parser.add_argument("--gpus", type=int, default=None, help="simulated GPU count")
    parser.add_argument("--curve", default="BN254", help="curve name (msm command)")
    parser.add_argument(
        "--out", default=None, help="Chrome trace JSON path (trace command)"
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="cluster node count (cluster-replay)"
    )
    parser.add_argument(
        "--budget", type=int, default=None, help="search evaluation budget (tune)"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="search seed (tune)"
    )
    args = parser.parse_args(argv)

    runners = _experiment_runners()
    if args.experiment == "list":
        print("experiments:", ", ".join(sorted(runners)))
        print("utilities:   msm (--curve --log-n --gpus), "
              "trace (--curve --log-n --gpus --out), "
              "tune (--curve --log-n --gpus --budget --seed --out), "
              "cluster-replay <trace.json> (--nodes --gpus)")
        return 0
    if args.experiment == "msm":
        return _run_msm(args)
    if args.experiment == "trace":
        return _run_trace(args)
    if args.experiment == "tune":
        return _run_tune(args)
    if args.experiment == "cluster-replay":
        return _run_cluster_replay(args)
    if args.experiment not in runners:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    result = runners[args.experiment](args)
    print(result.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
