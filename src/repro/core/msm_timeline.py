"""MSM phase timings and their task-graph emission onto the engine.

:class:`MsmTimingBreakdown` is the single timing artifact both DistMSM
paths (functional and analytic) produce: per-GPU phase milliseconds plus
the host-side components.  From it:

* :meth:`MsmTimingBreakdown.phase_times` reproduces the legacy
  :class:`PhaseTimes` report (per-phase maxima, CPU reduce overlapped by
  the §3.2.3 flow-shop closed form) — the numbers every figure/table
  reproduction is calibrated against;
* :func:`build_msm_timeline` emits the same work as tasks on the
  event-driven engine, in one of three schedules:

  - ``"legacy"`` — phase-barrier schedule whose makespan equals
    ``PhaseTimes.total`` (the parity mode; overlap folded in via the
    closed form, exactly as the legacy model did);
  - ``"serial"`` — phase barriers with the *raw* CPU reduce time (no
    overlap anywhere: the pessimistic bound);
  - ``"overlap"`` — per-window pipelining resolved by the event loop
    itself: window ``i``'s CPU reduce races the GPUs' window ``i+1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.resources import SystemResources
from repro.engine.timeline import Timeline, TimelineBuilder

TIMELINE_MODES = ("legacy", "serial", "overlap")


@dataclass
class PhaseTimes:
    """Modelled wall time per pipeline phase, milliseconds."""

    scatter: float = 0.0
    bucket_sum: float = 0.0
    bucket_reduce: float = 0.0
    window_reduce: float = 0.0
    transfer: float = 0.0
    launch: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.scatter
            + self.bucket_sum
            + self.bucket_reduce
            + self.window_reduce
            + self.transfer
            + self.launch
        )

    def as_dict(self) -> dict:
        return {
            "scatter": self.scatter,
            "bucket_sum": self.bucket_sum,
            "bucket_reduce": self.bucket_reduce,
            "window_reduce": self.window_reduce,
            "transfer": self.transfer,
            "launch": self.launch,
            "total": self.total,
        }


@dataclass(frozen=True)
class GpuPhaseMs:
    """One GPU's modelled milliseconds per pipeline phase."""

    scatter: float = 0.0
    bucket_sum: float = 0.0
    reduce: float = 0.0
    transfer: float = 0.0
    launch: float = 0.0

    @property
    def total(self) -> float:
        return self.scatter + self.bucket_sum + self.reduce + self.transfer + self.launch

    @property
    def compute_ms(self) -> float:
        """On-GPU work (everything but the host-link transfer)."""
        return self.scatter + self.bucket_sum + self.reduce + self.launch


@dataclass
class MsmTimingBreakdown:
    """The complete timing decomposition of one MSM on one system."""

    per_gpu: list[GpuPhaseMs]
    #: un-overlapped host bucket-reduce time (all CPU PADDs)
    cpu_reduce_raw_ms: float
    #: host bucket-reduce time visible after the intra-MSM flow-shop overlap
    visible_cpu_ms: float
    window_reduce_ms: float
    #: inter-node host coordination (sync per DGX node)
    coordination_ms: float
    num_windows: int

    def _phase_max(self, attr: str) -> float:
        return max((getattr(g, attr) for g in self.per_gpu), default=0.0)

    def phase_times(self) -> PhaseTimes:
        """The legacy per-phase report (maxima across GPUs, serial sum)."""
        return PhaseTimes(
            scatter=self._phase_max("scatter"),
            bucket_sum=self._phase_max("bucket_sum"),
            bucket_reduce=self._phase_max("reduce") + self.visible_cpu_ms,
            window_reduce=self.window_reduce_ms,
            transfer=self._phase_max("transfer") + self.coordination_ms,
            launch=self._phase_max("launch"),
        )


def _emit_builder(
    breakdown: MsmTimingBreakdown,
    resources: SystemResources,
    mode: str,
    label: str,
) -> "TimelineBuilder":
    if mode not in TIMELINE_MODES:
        raise ValueError(f"unknown timeline mode {mode!r}; choose from {TIMELINE_MODES}")
    if len(breakdown.per_gpu) > len(resources.gpus):
        raise ValueError(
            f"breakdown covers {len(breakdown.per_gpu)} GPUs but the resource "
            f"set has only {len(resources.gpus)}"
        )
    if mode == "overlap":
        return _build_overlapped(breakdown, resources, label)
    return _build_phase_barriers(breakdown, resources, mode, label)


def build_msm_timeline(
    breakdown: MsmTimingBreakdown,
    resources: SystemResources,
    mode: str = "legacy",
    label: str = "msm",
) -> Timeline:
    """Emit one MSM's work as tasks on the engine and schedule it.

    The builder model-checks the plan (``repro.analyze.check_plan``)
    before the simulator touches it.
    """
    return _emit_builder(breakdown, resources, mode, label).build()


def emit_msm_tasks(
    breakdown: MsmTimingBreakdown,
    resources: SystemResources,
    mode: str = "legacy",
    label: str = "msm",
) -> list:
    """The task list :func:`build_msm_timeline` would schedule, unsimulated.

    This is the hook the static analyzer's ``plan`` family uses to
    pre-flight-check the production emission shapes on their own.
    """
    return _emit_builder(breakdown, resources, mode, label).tasks


def _build_phase_barriers(
    breakdown: MsmTimingBreakdown,
    resources: SystemResources,
    mode: str,
    label: str,
) -> "TimelineBuilder":
    """Phase-serial schedule: each phase is a barrier over all resources."""
    b = TimelineBuilder()
    per_gpu = breakdown.per_gpu

    b.barrier_stage("scatter")
    for g, ph in enumerate(per_gpu):
        b.add(f"{label}:scatter:g{g}", resources.gpu(g), ph.scatter)
    b.barrier_stage("bucket-sum")
    for g, ph in enumerate(per_gpu):
        b.add(f"{label}:bucket-sum:g{g}", resources.gpu(g), ph.bucket_sum)
    b.barrier_stage("bucket-reduce-gpu")
    for g, ph in enumerate(per_gpu):
        b.add(f"{label}:bucket-reduce:g{g}", resources.gpu(g), ph.reduce)
    b.barrier_stage("bucket-reduce-cpu")
    cpu_ms = breakdown.visible_cpu_ms if mode == "legacy" else breakdown.cpu_reduce_raw_ms
    b.add(f"{label}:bucket-reduce:cpu", resources.cpu, cpu_ms)
    b.barrier_stage("window-reduce")
    b.add(f"{label}:window-reduce", resources.cpu, breakdown.window_reduce_ms)
    b.barrier_stage("transfer")
    # the legacy model treats per-GPU device-to-host copies as concurrent
    # (phase time = max); emit one task per node channel at the node's max
    node_transfer: dict[int, float] = {}
    for g, ph in enumerate(per_gpu):
        node = resources.channel_for_gpu(g).index
        node_transfer[node] = max(node_transfer.get(node, 0.0), ph.transfer)
    for node, ms in sorted(node_transfer.items()):
        b.add(f"{label}:transfer:node{node}", resources.channels[node], ms)
    b.barrier_stage("node-sync")
    b.add(f"{label}:node-sync", resources.cpu, breakdown.coordination_ms)
    b.barrier_stage("launch-overhead")
    for g, ph in enumerate(per_gpu):
        b.add(f"{label}:launch:g{g}", resources.gpu(g), ph.launch)
    return b


def _build_overlapped(
    breakdown: MsmTimingBreakdown,
    resources: SystemResources,
    label: str,
) -> "TimelineBuilder":
    """Per-window pipelined schedule: CPU reduces race later GPU windows."""
    b = TimelineBuilder()
    k = max(1, breakdown.num_windows)
    per_gpu = breakdown.per_gpu
    reduce_names: list[str] = []
    transfer_names: list[str] = []
    for w in range(k):
        # per-GPU compute, then one device-to-host copy per node channel at
        # the node's max (per-GPU links are concurrent within a node, same
        # aggregation as the barrier modes)
        node_gpu_tasks: dict[int, list[str]] = {}
        node_transfer_ms: dict[int, float] = {}
        for g, ph in enumerate(per_gpu):
            gpu_task = b.add(
                f"{label}:w{w}:g{g}",
                resources.gpu(g),
                ph.compute_ms / k,
                stage=f"window-{w}",
            )
            node = resources.channel_for_gpu(g).index
            node_gpu_tasks.setdefault(node, []).append(gpu_task)
            node_transfer_ms[node] = max(node_transfer_ms.get(node, 0.0), ph.transfer)
        window_transfers: list[str] = []
        for node, gpu_tasks in sorted(node_gpu_tasks.items()):
            window_transfers.append(
                b.add(
                    f"{label}:w{w}:transfer:node{node}",
                    resources.channels[node],
                    node_transfer_ms[node] / k,
                    deps=tuple(gpu_tasks),
                    stage=f"window-{w}",
                )
            )
        reduce_names.append(
            b.add(
                f"{label}:w{w}:reduce",
                resources.cpu,
                breakdown.cpu_reduce_raw_ms / k,
                deps=tuple(window_transfers),
                stage=f"window-{w}",
            )
        )
        transfer_names.extend(window_transfers)
    b.add(
        f"{label}:window-reduce",
        resources.cpu,
        breakdown.window_reduce_ms,
        deps=tuple(reduce_names),
        stage="window-reduce",
    )
    b.add(
        f"{label}:node-sync",
        resources.cpu,
        breakdown.coordination_ms,
        deps=tuple(transfer_names),
        stage="node-sync",
    )
    return b
