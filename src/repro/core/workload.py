"""Per-thread workload model (paper §3.1) and window-size selection.

The paper's central algorithmic observation: execution time is governed by
the workload of each *thread*, not total work.  With ``N_win = ceil(λ/s)``
windows over ``N_gpu`` GPUs and ``N_T`` concurrent threads per GPU, the
per-thread EC-operation count is

    ceil(N_win/N_gpu) * ceil((N + 2^s)/N_T)
      + ceil(2^s/N_T) * 2s
      + min(ceil(2^s/N_T) + log2(N_T), s)

when every GPU owns at least one full window, and

    (N + 2^s * 2s) / (floor(N_gpu/N_win) * N_T)
      + log2(2^s / floor(N_gpu/N_win))

when a window's buckets are split over several GPUs.  Minimising this over
``s`` reproduces Fig. 3: the optimal window shrinks from ~20 on one GPU to
~11 on sixteen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def per_thread_workload(
    n: int,
    scalar_bits: int,
    window_size: int,
    num_gpus: int,
    threads_per_gpu: int,
) -> float:
    """EC operations executed by each thread (paper §3.1 formulas)."""
    if min(n, scalar_bits, window_size, num_gpus, threads_per_gpu) <= 0:
        raise ValueError("all workload parameters must be positive")
    s = window_size
    n_win = math.ceil(scalar_bits / s)
    n_t = threads_per_gpu
    buckets = 1 << s

    if num_gpus <= n_win:
        windows_per_gpu = math.ceil(n_win / num_gpus)
        scatter_and_sum = windows_per_gpu * math.ceil((n + buckets) / n_t)
        reduce_weighted = math.ceil(buckets / n_t) * 2 * s
        reduce_tree = min(math.ceil(buckets / n_t) + math.log2(n_t), s)
        return scatter_and_sum + reduce_weighted + reduce_tree

    gpus_per_window = num_gpus // n_win
    main = (n + buckets * 2 * s) / (gpus_per_window * n_t)
    tree = math.log2(max(2.0, buckets / gpus_per_window))
    return main + tree


def optimal_window_size(
    n: int,
    scalar_bits: int,
    num_gpus: int,
    threads_per_gpu: int,
    s_range: tuple = (4, 24),
) -> int:
    """The window size minimising the per-thread workload."""
    lo, hi = s_range
    best_s, best_cost = lo, float("inf")
    for s in range(lo, hi + 1):
        cost = per_thread_workload(n, scalar_bits, s, num_gpus, threads_per_gpu)
        if cost < best_cost:
            best_s, best_cost = s, cost
    return best_s


@dataclass(frozen=True)
class WorkloadCurve:
    """One series of Fig. 3: normalised workload vs window size."""

    num_gpus: int
    window_sizes: tuple
    normalised_costs: tuple

    @property
    def optimal_s(self) -> int:
        return self.window_sizes[self.normalised_costs.index(min(self.normalised_costs))]


def figure3_series(
    n: int = 1 << 26,
    scalar_bits: int = 253,
    threads_per_gpu: int = 1 << 16,
    gpu_counts: tuple = (1, 2, 4, 8, 16),
    s_range: tuple = (4, 22),
) -> list[WorkloadCurve]:
    """The per-thread workload curves of paper Fig. 3.

    Costs are normalised by the global minimum across all series, matching
    the figure's presentation.
    """
    lo, hi = s_range
    sizes = tuple(range(lo, hi + 1))
    raw = {
        g: [per_thread_workload(n, scalar_bits, s, g, threads_per_gpu) for s in sizes]
        for g in gpu_counts
    }
    global_min = min(min(costs) for costs in raw.values())
    return [
        WorkloadCurve(
            num_gpus=g,
            window_sizes=sizes,
            normalised_costs=tuple(c / global_min for c in raw[g]),
        )
        for g in gpu_counts
    ]
