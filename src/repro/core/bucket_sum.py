"""Highly parallel bucket-sum (paper §3.2.2).

Each bucket gets ``N_thread`` threads (a warp multiple): members are dealt
round-robin to the threads, each accumulates its share with PACC, and the
partial sums merge in a binary reduction tree (``log2(N_thread)`` PADDs per
thread in SIMD terms, ``N_thread - 1`` PADDs in total).  The functional
implementation executes this structure faithfully — including the tree — so
its results and its operation counts are both real.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.curves.params import CurveParams
from repro.curves.point import XyzzPoint, affine_neg, xyzz_acc, xyzz_add
from repro.gpu.counters import EventCounters
from repro.gpu.trace import Kind, MemoryTrace, Space


@dataclass
class BucketSumOutput:
    """Functional bucket-sum result: one XYZZ partial per bucket."""

    sums: list  # bucket id -> XyzzPoint
    counters: EventCounters


def threads_per_bucket(
    num_buckets: int,
    concurrent_threads: int,
    minimum: int = 32,
    warp: int = 32,
) -> int:
    """Threads allocated to each bucket to keep the GPU saturated.

    When ``2^s < N_T`` the paper assigns ``N_T / 2^s`` threads per bucket,
    rounded to warp granularity, never below ``minimum``.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    raw = max(minimum, concurrent_threads // num_buckets)
    return max(warp, (raw // warp) * warp)


def bucket_sum(
    buckets: list,
    points: list,
    curve: CurveParams,
    n_threads: int,
    negate: list | None = None,
    tracer: MemoryTrace | None = None,
    block_id: int = 0,
) -> BucketSumOutput:
    """Sum each bucket's points with ``n_threads`` threads per bucket.

    ``buckets`` holds point-id lists (scatter output); ``negate`` optionally
    flags point ids to accumulate negated (signed-digit support).  With a
    ``tracer`` attached, each bucket group's partial-sum stores and the tree
    reduction's cross-lane reads — with the barrier separating every level —
    are recorded for the ``repro.verify`` race detector.
    """
    if n_threads <= 0:
        raise ValueError("n_threads must be positive")

    def trace(bucket: int, lane: int, slot: int, kind: Kind) -> None:
        if tracer is not None:
            tracer.record(
                Space.SHARED,
                "partials",
                bucket * n_threads + slot,
                kind,
                atomic=False,
                block=block_id,
                thread=bucket * n_threads + lane,
            )

    counters = EventCounters()
    counters.kernel_launches = 1
    sums = []
    for bucket_id, members in enumerate(buckets):
        # deal members round-robin over the bucket's threads
        partials = [XyzzPoint.identity() for _ in range(min(n_threads, max(1, len(members))))]
        for i, point_id in enumerate(members):
            pt = points[point_id]
            if negate and negate[point_id]:
                pt = affine_neg(pt, curve)  # preserves the identity
            lane = i % len(partials)
            partials[lane] = xyzz_acc(partials[lane], pt, curve)
            trace(bucket_id, lane, lane, Kind.WRITE)
            counters.pacc += 1
        # binary tree reduction of the per-thread partials
        while len(partials) > 1:
            if tracer is not None:
                tracer.barrier(block_id)
            half = (len(partials) + 1) // 2
            for i in range(len(partials) - half):
                trace(bucket_id, i, half + i, Kind.READ)
                partials[i] = xyzz_add(partials[i], partials[half + i], curve)
                trace(bucket_id, i, i, Kind.WRITE)
                counters.padd += 1
            partials = partials[:half]
        sums.append(partials[0] if partials else XyzzPoint.identity())
    return BucketSumOutput(sums, counters)


# -- analytic counterpart -----------------------------------------------------


def bucket_sum_counts(
    n_points: int,
    num_buckets: int,
    n_threads: int,
) -> EventCounters:
    """Expected bucket-sum event counts for one window (or window slice).

    PACC per non-zero digit; ``n_threads - 1`` tree PADDs per active bucket.
    """
    counters = EventCounters()
    nonzero = n_points * (num_buckets - 1) / max(1, num_buckets)
    active = expected_active_buckets(n_points, num_buckets)
    counters.pacc = int(round(nonzero))
    counters.padd = int(round(active * (min(n_threads, max(1.0, nonzero / max(active, 1e-9))) - 1)))
    counters.kernel_launches = 1
    return counters


def expected_active_buckets(n_points: int, num_buckets: int) -> float:
    """Expected buckets with at least one member (excludes bucket 0)."""
    if num_buckets <= 1:
        return 0.0
    usable = num_buckets - 1
    if n_points <= 0:
        return 0.0
    return usable * (1.0 - (1.0 - 1.0 / num_buckets) ** n_points)


def per_thread_pacc(n_points: int, num_buckets: int, n_threads: int) -> float:
    """PACC chain length per thread — the §3.1 latency driver."""
    nonzero = n_points * (num_buckets - 1) / max(1, num_buckets)
    return nonzero / max(1, (num_buckets - 1) * n_threads) + math.log2(max(2, n_threads))


def intra_bucket_overhead(n_points: int, num_buckets: int, n_threads: int) -> float:
    """Fractional PADD overhead of the tree reduction.

    Every one of the ``num_buckets * n_threads`` participating threads pays
    ``log2(n_threads)`` reduction PADDs on top of the ``n_points`` PACCs —
    the paper's 0.49% example (N_thread=32, N=2^26, 2^11 buckets).
    """
    if n_points <= 0:
        return 0.0
    total_threads = num_buckets * n_threads
    return (total_threads * math.log2(max(2, n_threads))) / n_points
