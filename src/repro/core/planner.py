"""Distribution of Pippenger work across GPUs (paper §3.2.2).

Three strategies, matching :class:`repro.core.config.DistMsmConfig`:

* **bucket-split** (DistMSM): windows are dealt to GPUs; when there are more
  GPUs than windows, a window's *buckets* are split across its GPU group.
  Fractional splits are supported ("two GPUs handle 2/3 of each window, the
  third handles the remaining 1/3 of both") — realised by launching a
  different number of thread blocks.
* **windows**: whole windows only; surplus GPUs idle (the naive W-dim port).
* **ndim**: every GPU takes ``N / N_gpu`` points across *all* windows and
  runs a full single-GPU Pippenger; the host merges per-GPU window partials
  (how the paper augments baselines without multi-GPU support).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Assignment:
    """One GPU's share of one window.

    ``bucket_lo`` / ``bucket_hi`` are fractions of the window's bucket range
    (0..1); ``point_lo`` / ``point_hi`` are fractions of the point vector.
    """

    gpu: int
    window: int
    bucket_lo: float = 0.0
    bucket_hi: float = 1.0
    point_lo: float = 0.0
    point_hi: float = 1.0

    @property
    def bucket_share(self) -> float:
        return self.bucket_hi - self.bucket_lo

    @property
    def point_share(self) -> float:
        return self.point_hi - self.point_lo


@dataclass
class Plan:
    """The full work distribution for one MSM execution."""

    num_gpus: int
    num_windows: int
    strategy: str
    assignments: list = field(default_factory=list)

    def for_gpu(self, gpu: int) -> list:
        return [a for a in self.assignments if a.gpu == gpu]

    def for_window(self, window: int) -> list:
        return [a for a in self.assignments if a.window == window]

    def validate(self) -> None:
        """Every window's bucket x point area must be covered exactly once."""
        for w in range(self.num_windows):
            parts = self.for_window(w)
            if not parts:
                raise ValueError(f"window {w} unassigned")
            area = sum(a.bucket_share * a.point_share for a in parts)
            if abs(area - 1.0) > 1e-9:
                raise ValueError(f"window {w} covered {area:.6f} times")

    @property
    def max_gpu_load(self) -> float:
        """The largest per-GPU share of total work (windows-equivalents)."""
        loads = [0.0] * self.num_gpus
        for a in self.assignments:
            loads[a.gpu] += a.bucket_share * a.point_share
        return max(loads)


def make_plan(num_windows: int, num_gpus: int, strategy: str = "bucket-split") -> Plan:
    """Build the work distribution for ``num_windows`` over ``num_gpus``."""
    if num_windows <= 0 or num_gpus <= 0:
        raise ValueError("window and GPU counts must be positive")
    builders = {
        "bucket-split": _plan_bucket_split,
        "windows": _plan_windows,
        "ndim": _plan_ndim,
    }
    if strategy not in builders:
        raise ValueError(f"unknown strategy {strategy!r}")
    plan = builders[strategy](num_windows, num_gpus)
    plan.validate()
    return plan


def _plan_windows(num_windows: int, num_gpus: int) -> Plan:
    assignments = []
    for w in range(num_windows):
        assignments.append(Assignment(gpu=w % num_gpus, window=w))
    return Plan(num_gpus, num_windows, "windows", assignments)


def _plan_ndim(num_windows: int, num_gpus: int) -> Plan:
    assignments = []
    for g in range(num_gpus):
        lo, hi = g / num_gpus, (g + 1) / num_gpus
        for w in range(num_windows):
            assignments.append(
                Assignment(gpu=g, window=w, point_lo=lo, point_hi=hi)
            )
    return Plan(num_gpus, num_windows, "ndim", assignments)


def _plan_bucket_split(num_windows: int, num_gpus: int) -> Plan:
    """Even fractional split of window-bucket ranges over GPUs.

    Lay the ``num_windows`` unit intervals end to end and cut the combined
    range into ``num_gpus`` equal slices; each slice becomes one GPU's set of
    (window, bucket-range) assignments.  This realises both the whole-window
    case (slices align with window boundaries when N_gpu divides N_win) and
    the paper's flexible fractional example.
    """
    assignments = []
    total = float(num_windows)
    per_gpu = total / num_gpus
    for g in range(num_gpus):
        start, end = g * per_gpu, (g + 1) * per_gpu
        w = int(start)
        while w < num_windows and w < end - 1e-12:
            lo = max(0.0, start - w)
            hi = min(1.0, end - w)
            if hi - lo > 1e-12:
                assignments.append(
                    Assignment(gpu=g, window=w, bucket_lo=lo, bucket_hi=hi)
                )
            w += 1
    return Plan(num_gpus, num_windows, "bucket-split", assignments)


def gpus_sharing_window(plan: Plan, window: int) -> int:
    """How many GPUs contribute to one window (thread-allocation input)."""
    return len({a.gpu for a in plan.for_window(window)})


def windows_per_gpu(scalar_bits: int, window_size: int, num_gpus: int) -> float:
    """Fractional windows per GPU — the §3.1 load figure."""
    return math.ceil(scalar_bits / window_size) / num_gpus
