"""Vectorized execution of the functional MSM hot paths.

The scalar :class:`~repro.core.backends.FunctionalBackend` walks every
(point, window) pair in Python — per-slot loops through
:func:`~repro.core.scatter.naive_scatter` /
:func:`~repro.core.scatter.hierarchical_scatter` and
:func:`~repro.core.bucket_sum.bucket_sum`.  This module computes the same
results with numpy array passes:

* **digits** — one ``(m, windows)`` matrix of signed/unsigned window
  digits for all scalars at once (:func:`window_digit_matrix`), identical
  entry-for-entry to :func:`repro.curves.scalar.signed_windows` /
  ``unsigned_windows``;
* **scatter** — a stable argsort groups point ids by bucket (the scalar
  schemes append members in ascending point-id order, so stable sorting
  reproduces the exact bucket contents), while the event counters the
  simulated GPU would have measured are computed in closed form *from the
  actual digit slice* — not expectations — and applied to the same
  :class:`~repro.gpu.device.SimulatedGpu` counter object the scalar path
  would have bumped;
* **bucket sum** — a segmented reduction over :class:`BatchXyzz` lanes
  that replicates the scalar round-robin deal (member ``i`` of a bucket
  with ``T`` lanes goes to lane ``i % T``) and the binary reduction tree
  (``half = ceil(T/2)``; lane ``i`` absorbs lane ``half + i``), so every
  per-bucket partial is bit-identical, not merely equal as a group
  element.

Anything the array formulation cannot replicate — per-access memory
traces for the ``repro.verify`` race detector — makes the backend fall
back to the scalar loops; see ``FunctionalBackend.run_assignment``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import DistMsmConfig
from repro.curves.batch import BatchAffine, BatchCurve, BatchXyzz, batch_curve
from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint, XyzzPoint
from repro.gpu.counters import EventCounters
from repro.gpu.device import SharedMemoryExceeded, SimulatedGpu

_I64 = np.int64


# -- window digits -------------------------------------------------------------


def _scalars_to_words(scalars: list[int], total_bits: int) -> np.ndarray:
    """Scalars as ``(m, W)`` base-2^64 words; errors match the scalar API."""
    num_words = max(1, -(-total_bits // 64))
    try:
        if num_words == 1:
            # single-word fast path: a C-level array conversion instead of
            # one to_bytes call per scalar (the 2^20-scalar prepare cost)
            return np.asarray(scalars, dtype=np.uint64).reshape(len(scalars), 1)
        blob = b"".join(int(k).to_bytes(num_words * 8, "little") for k in scalars)
    except (OverflowError, TypeError):
        if any(k < 0 for k in scalars):
            raise ValueError("scalars must be non-negative") from None
        raise ValueError("scalar does not fit in the requested windows") from None
    words = np.frombuffer(blob, dtype="<u8").reshape(len(scalars), num_words)
    return words.astype(np.uint64, copy=True)


def window_digit_matrix(
    scalars: list[int], window_size: int, count: int, signed: bool
) -> np.ndarray:
    """All scalars' window digits at once, as an ``(m, rows)`` int32 matrix.

    Row ``pid`` equals ``signed_windows(scalars[pid], s, count)`` (so
    ``rows == count + 1``, the extra column holding the final carry) or
    ``unsigned_windows(scalars[pid], s, count)`` (``rows == count``).
    Raises the same ``ValueError``\\ s as the scalar decompositions.
    """
    m = len(scalars)
    total_bits = window_size * count
    words = _scalars_to_words(scalars, total_bits)
    padded = np.zeros((m, words.shape[1] + 1), dtype=np.uint64)
    padded[:, : words.shape[1]] = words

    mask = np.uint64((1 << window_size) - 1)
    digits = np.empty((m, count + (1 if signed else 0)), dtype=np.int32)
    for w in range(count):
        bit = w * window_size
        word, shift = bit // 64, bit % 64
        if shift == 0:
            chunk = padded[:, word] & mask
        else:
            chunk = (
                (padded[:, word] >> np.uint64(shift))
                | (padded[:, word + 1] << np.uint64(64 - shift))
            ) & mask
        digits[:, w] = chunk.astype(np.int32)

    # any bits at or above s*count mean the scalar does not fit
    word, shift = total_bits // 64, total_bits % 64
    leftover = padded[:, word] >> np.uint64(shift) if shift else padded[:, word]
    if leftover.any() or padded[:, word + 1 :].any():
        raise ValueError("scalar does not fit in the requested windows")

    if signed:
        base = np.int32(1 << window_size)
        half = np.int32(1 << (window_size - 1))
        carry = np.zeros(m, dtype=np.int32)
        for w in range(count):
            d = digits[:, w] + carry
            over = d > half
            carry = over.astype(np.int32)
            digits[:, w] = d - base * carry
        digits[:, count] = carry
    return digits


# -- streams -------------------------------------------------------------------


@dataclass
class VectorizedStream:
    """Digit matrix plus batch-encoded points for one MSM execution.

    ``digits`` is ``(m, windows)`` for the windowed mode or ``(m,)`` of
    non-negative bucket indices for the flattened precompute mode (where
    ``negate`` carries the sign separately).
    """

    bc: BatchCurve
    digits: np.ndarray
    points: BatchAffine
    neg_y: np.ndarray
    flat: bool
    negate: np.ndarray | None = None

    @classmethod
    def from_windows(
        cls,
        scalars: list[int],
        points: list[AffinePoint],
        curve: CurveParams,
        s: int,
        n_win: int,
        signed: bool,
    ) -> "VectorizedStream":
        bc = batch_curve(curve)
        digits = window_digit_matrix(scalars, s, n_win, signed)
        enc = bc.encode_affine(points)
        return cls(bc, digits, enc, bc.field.neg(enc.y), flat=False)

    @classmethod
    def from_flat(
        cls,
        digits: list[int],
        negate: list[bool],
        points: list[AffinePoint],
        curve: CurveParams,
    ) -> "VectorizedStream":
        bc = batch_curve(curve)
        enc = bc.encode_affine(points)
        return cls(
            bc,
            np.asarray(digits, dtype=_I64),
            enc,
            bc.field.neg(enc.y),
            flat=True,
            negate=np.asarray(negate, dtype=bool),
        )

    def digit_row(self, pid: int) -> list[int]:
        """One scalar's digit row as Python ints (scalar-path fallback)."""
        return [int(d) for d in self.digits[pid]]


# -- scatter -------------------------------------------------------------------


@dataclass
class VectorizedScatter:
    """Argsort-grouped bucket membership for one assignment slice.

    ``order`` lists slice-local point ids sorted by bucket (stable, hence
    ascending within each bucket — exactly the append order of the scalar
    scatters); bucket ``b`` owns ``order[starts[b] : starts[b] + counts[b]]``.
    """

    order: np.ndarray
    counts: np.ndarray
    starts: np.ndarray
    counters: EventCounters


def _shm_check(num_buckets: int, config: DistMsmConfig, capacity_bytes: int) -> None:
    """Replicate the scalar path's shared-memory allocation failure."""
    counters_bytes = 4 * num_buckets
    cache_bytes = 4 * config.threads_per_block * config.points_per_thread
    if counters_bytes > capacity_bytes:
        raise SharedMemoryExceeded(
            f"requested {counters_bytes} B with 0 B in use "
            f"(capacity {capacity_bytes} B)"
        )
    if counters_bytes + cache_bytes > capacity_bytes:
        raise SharedMemoryExceeded(
            f"requested {cache_bytes} B with {counters_bytes} B in use "
            f"(capacity {capacity_bytes} B)"
        )


def vector_scatter(
    gpu: SimulatedGpu,
    digits: np.ndarray,
    num_buckets: int,
    config: DistMsmConfig,
) -> VectorizedScatter:
    """Group a digit slice by bucket and charge the scalar path's counters.

    ``digits`` holds non-negative bucket indices (0 = skip).  The returned
    counters — and the side effects on ``gpu.counters`` — are exactly what
    :func:`repro.core.scatter.naive_scatter` or ``hierarchical_scatter``
    would have produced for the same slice, computed from the actual digit
    values rather than sampled one event at a time.
    """
    from repro.core.scatter import COEFF_BYTES, POINT_ID_BYTES

    n = int(digits.shape[0])
    nonzero = np.nonzero(digits)[0]
    nnz = int(nonzero.size)

    counters = EventCounters()
    counters.kernel_launches = 1
    if config.scatter == "hierarchical":
        _shm_check(num_buckets, config, gpu.scatter_shm_bytes)
        capacity = config.threads_per_block * config.points_per_thread
        blocks = max(1, math.ceil(n / capacity))
        # one global atomic per (block, non-empty local bucket) pair
        pair_keys = (nonzero // capacity) * np.int64(num_buckets) + digits[nonzero]
        commits = int(np.unique(pair_keys).size)
        counters.shared_atomics = 2 * nnz
        counters.global_atomics = commits
        counters.prefix_sums = blocks
        counters.block_syncs = 3 * blocks
        counters.device_bytes = nnz * POINT_ID_BYTES
        gpu.counters.kernel_launches += 1
        gpu.counters.shared_atomics += 2 * nnz
        gpu.counters.global_atomics += commits
        gpu.counters.prefix_sums += blocks
        gpu.counters.block_syncs += 3 * blocks
        gpu.counters.device_bytes += nnz * POINT_ID_BYTES
    else:
        counters.global_atomics = nnz
        counters.device_bytes = nnz * POINT_ID_BYTES
        gpu.counters.kernel_launches += 1
        gpu.counters.global_atomics += nnz
    counters.device_bytes += n * COEFF_BYTES

    compact = digits[nonzero]
    order_in_nonzero = np.argsort(compact, kind="stable")
    order = nonzero[order_in_nonzero]
    counts = np.bincount(compact.astype(np.int64), minlength=num_buckets)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return VectorizedScatter(order, counts, starts, counters)


# -- segmented bucket sum ------------------------------------------------------


@dataclass
class VectorizedBucketSums:
    """Per-bucket XYZZ partials (decoded) plus bucket-sum counters."""

    sums: list[XyzzPoint]
    counters: EventCounters


def vector_bucket_sum(
    stream: VectorizedStream,
    scat: VectorizedScatter,
    pid_offset: int,
    negate: np.ndarray | None,
    n_threads: int,
) -> VectorizedBucketSums:
    """Segmented bucket accumulation matching ``bucket_sum`` bit-for-bit.

    ``scat.order`` holds slice-local point ids; ``pid_offset`` shifts them
    back into the stream's global index space (the scalar path's
    ``pid + p_lo``).  ``negate`` is indexed slice-locally and flags members
    accumulated with a negated y.  Lane structure: a bucket with ``len``
    members runs ``T = min(n_threads, max(1, len))`` lanes; member ``i``
    PACCs into lane ``i % T`` in ascending ``i`` order; lanes then fold
    through the scalar code's ``half = ceil(T/2)`` tree.
    """
    bc = stream.bc
    f = bc.field
    counts = scat.counts
    num_buckets = int(counts.shape[0])
    members = int(scat.order.shape[0])

    lanes_per_bucket = np.minimum(n_threads, np.maximum(1, counts)).astype(_I64)
    lane_base = np.concatenate(([0], np.cumsum(lanes_per_bucket)[:-1]))
    total_lanes = int(lanes_per_bucket.sum())
    acc = bc.identity(total_lanes)

    counters = EventCounters()
    counters.kernel_launches = 1
    counters.pacc = members
    counters.padd = int((lanes_per_bucket - 1).sum())

    if members:
        bucket_of = np.repeat(
            np.nonzero(counts)[0], counts[np.nonzero(counts)[0]]
        )
        pos_in_bucket = np.arange(members, dtype=_I64) - scat.starts[bucket_of]
        lanes_of = lanes_per_bucket[bucket_of]
        lane_ids = lane_base[bucket_of] + pos_in_bucket % lanes_of
        round_of = pos_in_bucket // lanes_of

        # process members grouped by round: each lane sees its members in
        # ascending position order, one per round, mirroring the scalar deal
        round_order = np.argsort(round_of, kind="stable")
        round_sizes = np.bincount(round_of.astype(np.int64))
        cursor = 0
        for size in round_sizes:
            take = round_order[cursor : cursor + int(size)]
            cursor += int(size)
            local = scat.order[take]
            sel_pids = local + pid_offset
            pts = BatchAffine(
                stream.points.x[sel_pids],
                stream.points.y[sel_pids],
                stream.points.infinity[sel_pids],
            )
            if negate is not None:
                neg_mask = negate[local]
                pts = BatchAffine(
                    pts.x,
                    f.select(neg_mask, stream.neg_y[sel_pids], pts.y),
                    pts.infinity,
                )
            lanes = lane_ids[take]
            acc.put(lanes, bc.acc(acc.take(lanes), pts))

    # binary-tree fold of each bucket's lanes (scalar: half = ceil(T/2))
    width = lanes_per_bucket.copy()
    while int(width.max(initial=1)) > 1:
        half = (width + 1) // 2
        merges = width - half
        active = np.nonzero(merges > 0)[0]
        reps = merges[active]
        seg_starts = np.concatenate(([0], np.cumsum(reps)[:-1]))
        offs = np.arange(int(reps.sum()), dtype=_I64) - np.repeat(seg_starts, reps)
        left = np.repeat(lane_base[active], reps) + offs
        right = left + np.repeat(half[active], reps)
        acc.put(left, bc.add(acc.take(left), acc.take(right)))
        width = half

    firsts = acc.take(lane_base) if num_buckets else bc.identity(0)
    return VectorizedBucketSums(bc.decode(firsts), counters)
