"""Bucket scatter: naive and hierarchical (paper §3.2.1, Algorithm 3).

Both strategies are implemented twice, sharing one cost vocabulary:

* *functionally* — executed block by block against the simulated GPU's
  shared memory, producing the actual bucket contents plus measured event
  counts; used for correctness tests and small inputs;
* *analytically* — closed-form expected event counts for paper-scale inputs;
  property tests check the two agree.

The hierarchical scheme stages scatters in shared memory so each non-empty
local bucket commits to global memory with a single atomic, cutting global
atomics by roughly the per-block point capacity over the bucket count
(the paper's 1/64 example: 64K points per block, 1024 buckets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import DistMsmConfig
from repro.gpu.atomics import scatter_atomic_time_ms
from repro.gpu.counters import EventCounters
from repro.gpu.device import SharedMemoryExceeded, SimulatedGpu
from repro.gpu.specs import GpuSpec
from repro.gpu.trace import Kind, Space
from repro.gpu.timing import launch_overhead_ms, memory_read_time_ms

#: bytes read per point per window (the window's scalar segment, coalesced)
COEFF_BYTES = 8
#: bytes written per scattered point id
POINT_ID_BYTES = 4


@dataclass
class ScatterOutput:
    """Functional scatter result: bucket membership plus measured events."""

    buckets: list  # bucket id -> list of point ids
    counters: EventCounters


def naive_scatter(
    gpu: SimulatedGpu,
    digits: list[int],
    num_buckets: int,
    threads_per_block: int = 1024,
    use_atomics: bool = True,
) -> ScatterOutput:
    """One global atomic per non-zero coefficient (the baseline scheme).

    One thread per point.  ``use_atomics=False`` replaces the bucket-counter
    atomic with a plain read-modify-write — a deliberate data race that
    exists only so the ``repro.verify`` race detector has a known-broken
    configuration to catch; the engine never runs it.
    """
    counters = EventCounters()
    gpu.launch()
    counters.kernel_launches += 1
    n = len(digits)
    bucket_sizes = [0] * num_buckets
    buckets: list[list[int]] = [[] for _ in range(num_buckets)]
    bump = gpu.global_atomic_add if use_atomics else gpu.global_unsynced_add
    for point_id, digit in enumerate(digits):
        if digit == 0:
            continue
        blk, thread = divmod(point_id, threads_per_block)
        slot = bump(bucket_sizes, digit, 1, "bucket_sizes", blk, thread)
        buckets[digit].append(point_id)
        if gpu.tracer is not None:
            # the reserved slot of the bucket's point-id segment
            gpu.tracer.record(
                Space.GLOBAL,
                "bucket_points",
                digit * n + slot,
                Kind.WRITE,
                atomic=False,
                block=blk,
                thread=thread,
            )
        counters.global_atomics += 1 if use_atomics else 0
        counters.device_bytes += POINT_ID_BYTES
        assert slot == len(buckets[digit]) - 1
    counters.device_bytes += len(digits) * COEFF_BYTES
    return ScatterOutput(buckets, counters)


def hierarchical_scatter(
    gpu: SimulatedGpu,
    digits: list[int],
    num_buckets: int,
    config: DistMsmConfig,
) -> ScatterOutput:
    """Three-level hierarchical scatter (Algorithm 3), block by block.

    Raises :class:`SharedMemoryExceeded` when the per-block counter array
    plus point-id cache cannot fit — the execution-failure regime the paper
    reports for ``s > 14``.
    """
    before = gpu.counters.as_dict()
    gpu.launch()
    threads = config.threads_per_block
    k = config.points_per_thread
    capacity = threads * k

    global_sizes = [0] * num_buckets
    buckets: list[list[int]] = [[] for _ in range(num_buckets)]

    n = len(digits)
    num_blocks = max(1, math.ceil(n / capacity))
    for bid in range(num_blocks):
        block = gpu.new_block(bid, threads)
        # shared allocations: bucket counters + the point-id cache; offsets
        # reuse the counter array (prefix sum in place)
        shm_counts = block.shared.alloc_words(num_buckets, name="bucket_counts")
        shm_cache = block.shared.alloc_words(threads * k, name="point_cache")

        chunk = digits[bid * capacity : (bid + 1) * capacity]
        reg_cache = []
        for local_id, digit in enumerate(chunk):
            reg_cache.append(digit)
            if digit != 0:
                block.shared.atomic_inc(shm_counts, digit, thread=local_id % threads)
        block.syncthreads()
        shm_off = block.parallel_prefix_sum(shm_counts)
        block.syncthreads()

        # threads claim positions by atomically bumping a working copy of
        # the offsets (which reuses the offset array's storage)
        shm_claim = block.shared.alias(list(shm_off), shm_off)
        for local_id, digit in enumerate(reg_cache):
            if digit == 0:
                continue
            t = local_id % threads
            pos = block.shared.atomic_inc(shm_claim, digit, thread=t)
            block.shared.write(shm_cache, pos, local_id, thread=t)
        block.syncthreads()

        for bucket_id in range(num_buckets):
            t = bucket_id % threads
            count = block.shared.read(shm_counts, bucket_id, thread=t)
            if count == 0:
                continue
            base = block.shared.read(shm_off, bucket_id, thread=t)
            start = gpu.global_atomic_add(
                global_sizes, bucket_id, count, "bucket_sizes", bid, t
            )
            for i in range(count):
                local_id = block.shared.read(shm_cache, base + i, thread=t)
                buckets[bucket_id].append(bid * capacity + local_id)
                if gpu.tracer is not None:
                    gpu.tracer.record(
                        Space.GLOBAL,
                        "bucket_points",
                        bucket_id * n + start + i,
                        Kind.WRITE,
                        atomic=False,
                        block=bid,
                        thread=t,
                    )
            gpu.counters.device_bytes += count * POINT_ID_BYTES

    # report the delta accrued on the gpu-level counters during this scatter
    counters = EventCounters()
    after = gpu.counters.as_dict()
    for name in after:
        setattr(counters, name, after[name] - before[name])
    counters.device_bytes += len(digits) * COEFF_BYTES
    return ScatterOutput(buckets, counters)


# -- analytic counterparts ----------------------------------------------------


def expected_nonempty_buckets(points: int, num_buckets: int) -> float:
    """E[#non-empty buckets] with uniform digits (balls in bins)."""
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    if points <= 0:
        return 0.0
    return num_buckets * (1.0 - (1.0 - 1.0 / num_buckets) ** points)


def naive_scatter_counts(n_points: int, num_buckets: int) -> EventCounters:
    """Expected event counts of the naive scatter for one window."""
    counters = EventCounters()
    nonzero = n_points * (num_buckets - 1) / num_buckets
    counters.global_atomics = int(round(nonzero))
    counters.device_bytes = int(round(nonzero * POINT_ID_BYTES + n_points * COEFF_BYTES))
    counters.kernel_launches = 1
    return counters


def hierarchical_scatter_counts(
    n_points: int,
    num_buckets: int,
    config: DistMsmConfig,
) -> EventCounters:
    """Expected event counts of the hierarchical scatter for one window."""
    check_shared_memory_fit(num_buckets, config)
    counters = EventCounters()
    capacity = config.threads_per_block * config.points_per_thread
    blocks = max(1, math.ceil(n_points / capacity))
    nonzero = n_points * (num_buckets - 1) / num_buckets
    per_block_points = min(n_points, capacity) * (num_buckets - 1) / num_buckets
    counters.shared_atomics = int(round(2 * nonzero))  # count + position
    counters.global_atomics = int(
        round(blocks * expected_nonempty_buckets(per_block_points, num_buckets))
    )
    counters.prefix_sums = blocks
    counters.block_syncs = 3 * blocks
    counters.device_bytes = int(round(nonzero * POINT_ID_BYTES + n_points * COEFF_BYTES))
    counters.kernel_launches = 1
    return counters


def check_shared_memory_fit(
    num_buckets: int,
    config: DistMsmConfig,
    shm_capacity_bytes: int = 128 * 1024,
) -> None:
    """Raise when the hierarchical scheme cannot fit in shared memory."""
    needed = 4 * (num_buckets + config.threads_per_block * config.points_per_thread)
    if needed > shm_capacity_bytes:
        raise SharedMemoryExceeded(
            f"hierarchical scatter needs {needed} B of shared memory "
            f"({num_buckets} counters + point cache), capacity {shm_capacity_bytes} B"
        )


def scatter_time_ms(
    spec: GpuSpec,
    counts: EventCounters,
    num_buckets: int,
    active_threads: int,
    threads_per_block: int = 1024,
) -> float:
    """Wall time of one GPU's scatter work from its event counts."""
    atomic_ms = scatter_atomic_time_ms(
        spec,
        counts.global_atomics,
        counts.shared_atomics,
        active_threads,
        num_buckets,
        threads_per_block,
    )
    traffic_ms = memory_read_time_ms(counts.device_bytes, spec)
    launch_ms = launch_overhead_ms(counts.kernel_launches, spec)
    # prefix sums: each scans num_buckets words across the block
    prefix_ms = memory_read_time_ms(counts.prefix_sums * num_buckets * 4, spec)
    return atomic_ms + traffic_ms + launch_ms + prefix_ms
