"""DistMSM core: the paper's multi-GPU Pippenger adaptation (§3).

* :mod:`repro.core.workload` — the per-thread workload model of §3.1 that
  drives window-size selection (Fig. 3).
* :mod:`repro.core.scatter` — hierarchical bucket scatter (Alg. 3) executed
  functionally on the simulated GPU, plus analytic count formulas.
* :mod:`repro.core.bucket_sum` — multi-thread-per-bucket accumulation.
* :mod:`repro.core.bucket_reduce` — CPU-offloaded bucket reduction.
* :mod:`repro.core.planner` — window / bucket-slice distribution over GPUs.
* :mod:`repro.core.backends` — the functional/analytic execution backends.
* :mod:`repro.core.msm_timeline` — phase timings and their emission onto
  the event-driven engine (:mod:`repro.engine`).
* :mod:`repro.core.distmsm` — the engine tying it all together: one
  orchestration body, parameterised by backend.
"""

from repro.core.backends import AnalyticBackend, FunctionalBackend
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm, DistMsmResult
from repro.core.msm_timeline import (
    MsmTimingBreakdown,
    PhaseTimes,
    build_msm_timeline,
)
from repro.core.multi_msm import proof_msm_schedule, schedule_pipeline
from repro.core.workload import optimal_window_size, per_thread_workload

__all__ = [
    "AnalyticBackend",
    "DistMsmConfig",
    "DistMsm",
    "DistMsmResult",
    "FunctionalBackend",
    "MsmTimingBreakdown",
    "PhaseTimes",
    "build_msm_timeline",
    "optimal_window_size",
    "per_thread_workload",
    "proof_msm_schedule",
    "schedule_pipeline",
]
