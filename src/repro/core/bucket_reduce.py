"""Bucket-reduce and window-reduce, on CPU (DistMSM) or GPU (baselines).

Paper §3.2.3: executed serially, bucket-reduce is only a few thousand PADDs
— trivially cheap on a CPU — while the parallel GPU version pays
``2s * ceil(2^s / N_T)`` weighted-doubling operations per thread plus a
globally synchronised tree.  DistMSM therefore ships bucket sums to the host
and pipelines the reduce with the GPUs' next window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.curves.params import CurveParams
from repro.curves.point import XyzzPoint, pdbl, xyzz_add
from repro.gpu.counters import EventCounters


@dataclass
class ReduceOutput:
    """Functional reduce result with its event counts."""

    result: XyzzPoint
    counters: EventCounters


def cpu_bucket_reduce(bucket_sums: list, curve: CurveParams) -> ReduceOutput:
    """Serial ``sum(i * B_i)`` via the running suffix-sum trick.

    2 PADDs per bucket — the count the paper's CPU-offload argument uses.
    """
    counters = EventCounters()
    running = XyzzPoint.identity()
    total = XyzzPoint.identity()
    for b in range(len(bucket_sums) - 1, 0, -1):
        running = xyzz_add(running, bucket_sums[b], curve)
        total = xyzz_add(total, running, curve)
        counters.cpu_padd += 2
    return ReduceOutput(total, counters)


def cpu_window_reduce(
    window_results: list,
    window_size: int,
    curve: CurveParams,
) -> ReduceOutput:
    """Fold per-window results with ``s`` doublings between windows."""
    counters = EventCounters()
    acc = XyzzPoint.identity()
    for result in reversed(window_results):
        for _ in range(window_size):
            acc = pdbl(acc, curve)
            counters.cpu_pdbl += 1
        acc = xyzz_add(acc, result, curve)
        counters.cpu_padd += 1
    return ReduceOutput(acc, counters)


# -- analytic counts ---------------------------------------------------------


def cpu_bucket_reduce_counts(num_buckets: int) -> EventCounters:
    counters = EventCounters()
    counters.cpu_padd = 2 * max(0, num_buckets - 1)
    return counters


def gpu_bucket_reduce_counts(
    num_buckets: int,
    window_size: int,
    threads_per_gpu: int,
    mode: str = "scan",
) -> EventCounters:
    """Per-GPU event counts of the *parallel* bucket-reduce.

    Two schemes:

    * ``"scan"`` — the work-efficient weighted-suffix scan competitive
      implementations use: O(B) total PADDs (upsweep + downsweep + the
      weighting pass), tree-depth synchronisation.
    * ``"simd"`` — the naive SIMD formulation of the paper's §3.1 analysis:
      each thread computes ``2^i B_i`` for its buckets (``s`` PADD + ``s``
      PDBL each) before a global tree; per-thread cost
      ``2s * ceil(B/N_T) + min(ceil(B/N_T) + log2(N_T), s)``.  This is what
      makes bucket-reduce "notably inefficient" at scale and motivates the
      CPU offload.
    """
    counters = EventCounters()
    counters.kernel_launches = 1
    if mode == "scan":
        counters.padd = 4 * max(0, num_buckets - 1)
        counters.block_syncs = 2 * int(math.log2(max(2, num_buckets)))
        return counters
    if mode != "simd":
        raise ValueError(f"unknown bucket-reduce mode {mode!r}")
    active = min(num_buckets, threads_per_gpu)
    per_thread = gpu_bucket_reduce_per_thread_ops(
        num_buckets, window_size, threads_per_gpu
    )
    weighted = per_thread - window_size  # the PADD share
    counters.padd = int(round(active * weighted))
    counters.pdbl = int(round(active * window_size))
    counters.block_syncs = int(math.log2(max(2, threads_per_gpu)))
    return counters


def gpu_bucket_reduce_per_thread_ops(
    num_buckets: int,
    window_size: int,
    threads_per_gpu: int,
) -> float:
    """Per-thread EC ops of the naive SIMD bucket-reduce (§3.1 formula)."""
    per_thread_buckets = math.ceil(num_buckets / threads_per_gpu)
    return 2 * window_size * per_thread_buckets + min(
        per_thread_buckets + math.log2(max(2, threads_per_gpu)), window_size
    )
