"""Configuration for the DistMSM engine and its ablations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels.padd_kernel import KernelOptimisations


@dataclass(frozen=True)
class DistMsmConfig:
    """Tunable policy of one MSM engine instance.

    The defaults are the full DistMSM design; ablations (Figs. 10-12) toggle
    fields individually.

    Attributes
    ----------
    window_size:
        Pippenger window ``s``; ``None`` selects the per-thread-workload
        optimum for the system (§3.1).
    scatter:
        "hierarchical" (Alg. 3) or "naive" (one global atomic per point).
    bucket_reduce_on_cpu:
        Offload bucket-reduce to the host (§3.2.3); GPUs run it otherwise.
    multi_gpu:
        "bucket-split" (windows to GPUs, a window's buckets split across its
        GPU group — DistMSM's choice), "windows" (whole windows only), or
        "ndim" (each GPU takes N/N_gpu points over all windows — how the
        paper augments single-GPU baselines).
    kernel_opts:
        The §4 PADD kernel optimisations in force.
    threads_per_block / points_per_thread:
        Scatter launch geometry (Alg. 3's K is points_per_thread).
    threads_per_bucket_min:
        Lower bound (warp-granular) for the bucket-sum thread allocation.
    efficiency:
        Implementation-quality multiplier (1.0 = DistMSM; baselines < 1).
    """

    window_size: int | None = None
    scatter: str = "hierarchical"
    bucket_reduce_on_cpu: bool = True
    multi_gpu: str = "bucket-split"
    kernel_opts: KernelOptimisations = field(default_factory=KernelOptimisations.all)
    threads_per_block: int = 1024
    points_per_thread: int = 16
    threads_per_bucket_min: int = 32
    efficiency: float = 1.0
    signed_digits: bool = False
    precompute: bool = False
    #: GPU bucket-reduce scheme when not offloaded to the CPU:
    #: "scan" (work-efficient) or "simd" (the naive §3.1 formulation)
    gpu_reduce: str = "scan"
    #: toolchain the kernels were written in; HIP pays the platform
    #: penalty on AMD GPUs (paper Fig. 9) — DistMSM itself is HIP-based
    api: str = "hip"
    #: per-node host coordination overhead added to every MSM (ms)
    node_sync_ms: float = 0.2
    #: fault handling (repro.faults): retries for transient transfer errors
    max_retries: int = 3
    #: base of the exponential backoff between transfer retries (ms)
    backoff_base_ms: float = 0.5
    #: heartbeat period of the failure detector (ms); a GPU death is
    #: noticed at the first heartbeat tick after it happens
    heartbeat_ms: float = 1.0
    #: execute the functional backend's scatter/bucket-sum through the
    #: numpy batch kernels (bit-identical results and counters; falls back
    #: to the scalar loops automatically when a memory tracer is attached).
    #: ``"auto"`` (the default) vectorizes exactly when the curve's base
    #: field takes the single-limb fast path (``p < 2^32``) — where the
    #: array passes beat the Python loops by an order of magnitude — and
    #: keeps the scalar loops for multi-limb fields, where CPython's
    #: native big ints outrun the limb-sliced numpy Montgomery kernels at
    #: benchmark sizes.  ``True``/``False`` force one path everywhere.
    vectorized: bool | str = "auto"
    #: verify delivered chunk results through the 2G2T commitment protocol
    #: (repro.msm.outsource) before accumulating them.  ``"auto"`` (the
    #: default) turns verification on exactly when the fault plan contains
    #: a ByzantineWorker — the honest-cluster fast path stays untaxed;
    #: ``True`` always verifies (charging the verification overhead even on
    #: honest runs), ``False`` never does (a cheater then corrupts the
    #: returned point — the attack demo).
    verify_chunks: bool | str = "auto"
    #: seed of the per-MSM verification challenge (repro.msm.outsource
    #: derives the challenge scalar, every mask and every RLC coefficient
    #: from it, so a verification transcript replays from this integer)
    challenge_seed: int = 2024
    #: amortise many chunk checks into one random-linear-combination check
    #: (falling back to per-chunk checks only to localise a failure);
    #: ``False`` checks every chunk individually
    verify_batch: bool = True
    #: worker-side cost of the blinded commitment pass, as a fraction of
    #: the chunk's own compute time (the blinded pass re-runs scatter +
    #: bucket-sum over masked digits; 1.0 = the full 2G2T second pass,
    #: 0.0 models free commitments for overhead ablations)
    verify_commit_factor: float = 1.0

    def __post_init__(self):
        if self.scatter not in ("hierarchical", "naive"):
            raise ValueError(f"unknown scatter strategy {self.scatter!r}")
        if self.multi_gpu not in ("bucket-split", "windows", "ndim"):
            raise ValueError(f"unknown multi-GPU strategy {self.multi_gpu!r}")
        if self.window_size is not None and not 1 <= self.window_size <= 30:
            raise ValueError(f"window size out of range: {self.window_size}")
        if not 0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.gpu_reduce not in ("scan", "simd"):
            raise ValueError(f"unknown gpu_reduce mode {self.gpu_reduce!r}")
        if self.vectorized not in (True, False, "auto"):
            raise ValueError(f"unknown vectorized mode {self.vectorized!r}")
        if self.node_sync_ms < 0:
            raise ValueError(f"node_sync_ms must be >= 0, got {self.node_sync_ms}")
        if self.threads_per_block < 1:
            raise ValueError(f"threads_per_block must be >= 1, got {self.threads_per_block}")
        if self.points_per_thread < 1:
            raise ValueError(f"points_per_thread must be >= 1, got {self.points_per_thread}")
        if self.threads_per_bucket_min < 1:
            raise ValueError(
                f"threads_per_bucket_min must be >= 1, got {self.threads_per_bucket_min}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_ms <= 0:
            raise ValueError(f"backoff_base_ms must be > 0, got {self.backoff_base_ms}")
        if self.heartbeat_ms <= 0:
            raise ValueError(f"heartbeat_ms must be > 0, got {self.heartbeat_ms}")
        if self.verify_chunks not in (True, False, "auto"):
            raise ValueError(f"unknown verify_chunks mode {self.verify_chunks!r}")
        if self.verify_commit_factor < 0:
            raise ValueError(
                f"verify_commit_factor must be >= 0, got {self.verify_commit_factor}"
            )
