"""The DistMSM engine: plan -> orchestrate(backend) -> (result, timeline).

Two entry points, ONE orchestration body:

* :meth:`DistMsm.execute` — the *functional* path.  Runs
  :meth:`DistMsm._orchestrate` with a
  :class:`~repro.core.backends.FunctionalBackend`: the full pipeline
  (scatter, bucket-sum, reduce) executes against the simulated GPUs,
  producing a bit-exact MSM result and measured event counts.
* :meth:`DistMsm.estimate` — the *analytic* path.  Same orchestration with
  an :class:`~repro.core.backends.AnalyticBackend`: event counts come from
  closed-form expectation formulas, so paper-scale inputs (N = 2^28)
  evaluate instantly.

The shared body also emits the work onto the event-driven execution engine
(:mod:`repro.engine`): every result carries a
:class:`~repro.engine.timeline.Timeline` whose legacy-mode makespan equals
``PhaseTimes.total``, plus the :class:`~repro.core.msm_timeline.MsmTimingBreakdown`
from which overlapped/serial schedules can be rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.backends import AnalyticBackend, Backend, FunctionalBackend
from repro.core.bucket_reduce import gpu_bucket_reduce_counts
from repro.core.bucket_sum import bucket_sum_counts, threads_per_bucket
from repro.core.config import DistMsmConfig
from repro.core.msm_timeline import (
    GpuPhaseMs,
    MsmTimingBreakdown,
    PhaseTimes,
    build_msm_timeline,
)
from repro.core.planner import Plan, make_plan
from repro.core.scatter import (
    hierarchical_scatter_counts,
    naive_scatter_counts,
    scatter_time_ms,
)
from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint
from repro.curves.scalar import num_windows as window_count
from repro.engine.timeline import Timeline, simulate
from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.counters import EventCounters
from repro.gpu.timing import (
    cpu_ec_time_ms,
    ec_ops_time_ms,
    host_transfer_time_ms,
    launch_overhead_ms,
    pipelined_cpu_visible_ms,
)
from repro.kernels.padd_kernel import KernelDescriptor

__all__ = [
    "DistMsm",
    "DistMsmResult",
    "PhaseTimes",  # re-exported; canonical home is repro.core.msm_timeline
]


@dataclass
class DistMsmResult:
    """Outcome of one MSM execution or estimate."""

    point: AffinePoint | None
    time_ms: float
    times: PhaseTimes
    counters: EventCounters
    window_size: int
    plan: Plan
    per_gpu_counters: list = field(default_factory=list)
    #: the event-driven schedule of this MSM (legacy barrier mode: its
    #: makespan equals ``times.total``)
    timeline: Timeline | None = None
    #: the timing decomposition the timeline was built from; feed it to
    #: :func:`repro.core.msm_timeline.build_msm_timeline` for other modes
    breakdown: MsmTimingBreakdown | None = None


@dataclass
class _GpuWork:
    """Analytic per-GPU work summary driving the timing model."""

    scatter: EventCounters = field(default_factory=EventCounters)
    sums: EventCounters = field(default_factory=EventCounters)
    reduce: EventCounters = field(default_factory=EventCounters)
    buckets_touched: float = 0.0
    active_sum_threads: int = 0
    reduce_threads: int = 0  # all windows' reduces run in one launch
    transfer_points: float = 0.0


#: window-size auto-tune results, keyed by (curve, n, gpus, spec, config)
_WINDOW_CACHE: dict = {}


class DistMsm:
    """Multi-GPU MSM engine (paper §3), parameterised by a config.

    With the default config this is DistMSM; baseline systems instantiate it
    with their own policies (see :mod:`repro.baselines`).
    """

    def __init__(self, system: MultiGpuSystem, config: DistMsmConfig | None = None):
        self.system = system
        self.config = config or DistMsmConfig()

    # -- policy -------------------------------------------------------------

    def window_size_for(self, curve: CurveParams, n: int) -> int:
        """The engine's window size: configured, or the model-optimal one.

        Auto-tuning minimises the engine's own modelled total time over the
        feasible window range (the hierarchical scatter caps at s = 14 per
        Fig. 11); this captures every §3 trade-off at once — per-thread
        bucket-sum work, scatter atomics, *and* the CPU bucket-reduce cost
        §3.2.3 bounds.
        """
        if self.config.window_size is not None:
            return self.config.window_size
        key = (curve.name, n, self.system.num_gpus, self.system.spec.name, self.config)
        cached = _WINDOW_CACHE.get(key)
        if cached is not None:
            return cached
        hi = 14 if self.config.scatter == "hierarchical" else 22
        best_s, best_t = None, float("inf")
        for s in range(5, hi + 1):
            probe = DistMsm(self.system, replace(self.config, window_size=s))
            t = probe.estimate(curve, max(2, n)).time_ms
            if t < best_t:
                best_s, best_t = s, t
        _WINDOW_CACHE[key] = best_s
        return best_s

    def num_buckets(self, window_size: int) -> int:
        if self.config.signed_digits:
            return (1 << (window_size - 1)) + 1
        return 1 << window_size

    def _plan(self, n_win: int) -> Plan:
        return make_plan(n_win, self.system.num_gpus, self.config.multi_gpu)

    # -- entry points -------------------------------------------------------

    def execute(
        self,
        scalars: list[int],
        points: list[AffinePoint],
        curve: CurveParams,
    ) -> DistMsmResult:
        """Run the full pipeline functionally; returns the exact MSM result."""
        if len(scalars) != len(points):
            raise ValueError(
                f"length mismatch: {len(scalars)} scalars, {len(points)} points"
            )
        n = len(scalars)
        if n == 0:
            return DistMsmResult(
                AffinePoint.identity(), 0.0, PhaseTimes(), EventCounters(), 0,
                make_plan(1, self.system.num_gpus, self.config.multi_gpu),
                timeline=simulate([]),
            )
        s = self.window_size_for(curve, n)
        backend = FunctionalBackend(self, scalars, points, curve)
        return self._orchestrate(backend, curve, n, s)

    def estimate(self, curve: CurveParams, n: int) -> DistMsmResult:
        """Model the execution time for an ``n``-point MSM on this system."""
        if n <= 0:
            raise ValueError("n must be positive")
        s = self.window_size_for(curve, n)
        backend = AnalyticBackend(self, curve, n)
        return self._orchestrate(backend, curve, n, s)

    # -- the one orchestration body -----------------------------------------

    def _orchestrate(
        self, backend: Backend, curve: CurveParams, n: int, s: int
    ) -> DistMsmResult:
        """Plan, scatter/sum per assignment, reduce per window, fold.

        Every step delegates its *work* to the backend (functional: real
        points and measured counters; analytic: closed-form counts) while
        this body owns the *structure*: the plan, the per-window combine
        and reduce placement, the timing model, and the timeline emission.
        """
        config = self.config
        n_win = window_count(curve.scalar_bits, s)
        total_windows = n_win + (1 if config.signed_digits else 0)
        buckets_total = self.num_buckets(s)
        precompute = bool(getattr(config, "precompute", False))

        if precompute:
            # all windows collapse into one flattened (digit, point) stream
            backend.prepare_precompute(s, n_win, total_windows)
            plan = make_plan(
                1,
                self.system.num_gpus,
                "ndim" if config.multi_gpu == "ndim" else "bucket-split",
            )
        else:
            backend.prepare(s, n_win, total_windows)
            plan = self._plan(total_windows)
        if backend.functional:
            self.system.reset_counters()

        per_gpu_work = [_GpuWork() for _ in range(self.system.num_gpus)]
        window_partials: dict = {w: [] for w in range(plan.num_windows)}
        for assignment in plan.assignments:
            work = per_gpu_work[assignment.gpu]
            partial = backend.run_assignment(work, assignment, buckets_total)
            window_partials[assignment.window].append((assignment, partial))

        # combine per-window partials and reduce (precompute always reduces
        # on the host: its single collapsed window has no pipeline to hide in)
        cpu_counters = EventCounters()
        use_cpu_reduce = config.bucket_reduce_on_cpu or precompute
        window_results = []
        for w in range(plan.num_windows):
            partials = window_partials[w]
            combined, merge_padds = backend.combine_window(w, partials, buckets_total)
            cpu_counters.cpu_padd += merge_padds
            if use_cpu_reduce:
                counts, reduced = backend.cpu_reduce_window(combined, buckets_total)
                cpu_counters.merge(counts)
            else:
                reduced = backend.reduce_value(combined)
                # charge the reduce to the GPUs owning the window
                owners = {a.gpu for a, _ in partials} or {0}
                counts = gpu_bucket_reduce_counts(
                    buckets_total, s, self.system.concurrent_threads_per_gpu,
                    config.gpu_reduce,
                )
                if config.multi_gpu == "ndim":
                    # every GPU reduces its own full bucket array
                    share = counts
                else:
                    share = counts.scaled(1.0 / len(owners))
                for g in owners:
                    per_gpu_work[g].reduce.merge(share)
                    per_gpu_work[g].reduce_threads += min(
                        buckets_total, self.system.concurrent_threads_per_gpu
                    )
            window_results.append(reduced)

        if precompute:
            wr_counts, point = backend.finalize_precompute(window_results)
        else:
            wr_counts, point = backend.window_reduce(window_results)
        cpu_counters.merge(wr_counts)

        for work in per_gpu_work:
            work.transfer_points = work.buckets_touched

        breakdown = self._timing_breakdown(
            curve, s, buckets_total, plan, per_gpu_work, cpu_counters
        )
        times = breakdown.phase_times()
        timeline = build_msm_timeline(breakdown, self.system.resources(), mode="legacy")

        total_counters = EventCounters()
        for work in per_gpu_work:
            total_counters.merge(work.scatter)
            total_counters.merge(work.sums)
            total_counters.merge(work.reduce)
        total_counters.merge(cpu_counters)
        return DistMsmResult(
            point=point,
            time_ms=times.total,
            times=times,
            counters=total_counters,
            window_size=s,
            plan=plan,
            per_gpu_counters=[w.scatter for w in per_gpu_work],
            timeline=timeline,
            breakdown=breakdown,
        )

    def _accumulate_analytic(self, work, n_eff, bucket_share, buckets_total):
        """Add one assignment's expected counts to a GPU's work summary."""
        inserts = n_eff * bucket_share
        if self.config.scatter == "hierarchical":
            counts = hierarchical_scatter_counts(
                int(round(n_eff)), buckets_total, self.config
            )
        else:
            counts = naive_scatter_counts(int(round(n_eff)), buckets_total)
        if bucket_share < 1.0:  # only a slice of buckets is kept
            counts.global_atomics = int(round(counts.global_atomics * bucket_share))
            counts.shared_atomics = int(round(counts.shared_atomics * bucket_share))
        work.scatter.merge(counts)

        assigned = max(1, int(round(buckets_total * bucket_share)))
        n_threads = threads_per_bucket(
            assigned,
            self.system.concurrent_threads_per_gpu,
            self.config.threads_per_bucket_min,
        )
        work.sums.merge(bucket_sum_counts(int(round(inserts)), buckets_total, n_threads))
        work.active_sum_threads = max(work.active_sum_threads, assigned * n_threads)
        work.buckets_touched += assigned
        work.transfer_points += assigned

    # -- shared timing -------------------------------------------------------

    def _timing_breakdown(
        self,
        curve: CurveParams,
        s: int,
        buckets_total: int,
        plan: Plan,
        per_gpu_work: list,
        cpu_counters: EventCounters,
    ) -> MsmTimingBreakdown:
        spec = self.system.spec
        desc = KernelDescriptor(curve, self.config.kernel_opts)
        eff = self.config.efficiency
        api = self.config.api

        per_gpu: list[GpuPhaseMs] = []
        for work in per_gpu_work:
            g_scatter = scatter_time_ms(
                spec,
                work.scatter,
                buckets_total,
                min(spec.concurrent_threads, max(1, work.active_sum_threads or 1)),
                self.config.threads_per_block,
            ) / eff
            g_sum = (
                ec_ops_time_ms(desc, "pacc", work.sums.pacc, spec, work.active_sum_threads or None, api)
                + ec_ops_time_ms(desc, "padd", work.sums.padd, spec, work.active_sum_threads or None, api)
            ) / eff
            reduce_threads = min(
                spec.concurrent_threads, work.reduce_threads or buckets_total
            )
            g_reduce = (
                ec_ops_time_ms(desc, "padd", work.reduce.padd, spec, reduce_threads, api)
                + ec_ops_time_ms(desc, "padd", work.reduce.pdbl, spec, reduce_threads, api)
            ) / eff
            point_bytes = 4 * curve.num_limbs * 4  # XYZZ coordinates
            g_transfer = host_transfer_time_ms(work.transfer_points * point_bytes, spec)
            g_launch = launch_overhead_ms(
                work.scatter.kernel_launches + work.sums.kernel_launches + work.reduce.kernel_launches,
                spec,
            )
            per_gpu.append(
                GpuPhaseMs(g_scatter, g_sum, g_reduce, g_transfer, g_launch)
            )

        cpu_rate = self.system.cpu_padd_rate()
        cpu_reduce_ms = cpu_ec_time_ms(cpu_counters.cpu_padd, 0, cpu_rate)
        window_reduce_ms = cpu_ec_time_ms(0, cpu_counters.cpu_pdbl, cpu_rate)
        if self.config.bucket_reduce_on_cpu and plan.num_windows > 1:
            gpu_busy = max((g.total for g in per_gpu), default=0.0)
            visible_cpu = pipelined_cpu_visible_ms(
                cpu_reduce_ms, gpu_busy, plan.num_windows
            )
        else:
            visible_cpu = cpu_reduce_ms

        # inter-node coordination: one sync per DGX node boundary
        coordination_ms = self.config.node_sync_ms * self.system.nodes

        return MsmTimingBreakdown(
            per_gpu=per_gpu,
            cpu_reduce_raw_ms=cpu_reduce_ms,
            visible_cpu_ms=visible_cpu,
            window_reduce_ms=window_reduce_ms,
            coordination_ms=coordination_ms,
            num_windows=plan.num_windows,
        )
