"""The DistMSM engine: plan -> orchestrate(backend) -> (result, timeline).

Two entry points, ONE orchestration body:

* :meth:`DistMsm.execute` — the *functional* path.  Runs
  :meth:`DistMsm._orchestrate` with a
  :class:`~repro.core.backends.FunctionalBackend`: the full pipeline
  (scatter, bucket-sum, reduce) executes against the simulated GPUs,
  producing a bit-exact MSM result and measured event counts.
* :meth:`DistMsm.estimate` — the *analytic* path.  Same orchestration with
  an :class:`~repro.core.backends.AnalyticBackend`: event counts come from
  closed-form expectation formulas, so paper-scale inputs (N = 2^28)
  evaluate instantly.

The shared body also emits the work onto the event-driven execution engine
(:mod:`repro.engine`): every result carries a
:class:`~repro.engine.timeline.Timeline` whose legacy-mode makespan equals
``PhaseTimes.total``, plus the :class:`~repro.core.msm_timeline.MsmTimingBreakdown`
from which overlapped/serial schedules can be rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.analyze.modelcheck import check_plan
from repro.core.backends import AnalyticBackend, Backend, FunctionalBackend
from repro.core.bucket_reduce import gpu_bucket_reduce_counts
from repro.core.bucket_sum import bucket_sum_counts, threads_per_bucket
from repro.core.config import DistMsmConfig
from repro.core.msm_timeline import (
    GpuPhaseMs,
    MsmTimingBreakdown,
    PhaseTimes,
    build_msm_timeline,
)
from repro.core.planner import Plan, make_plan
from repro.core.scatter import (
    hierarchical_scatter_counts,
    naive_scatter_counts,
    scatter_time_ms,
)
from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint
from repro.curves.scalar import num_windows as window_count
from repro.engine.faults import (
    ByzantineWorker,
    FaultPlan,
    GpuFailure,
    RetryPolicy,
    Straggler,
    TransferError,
)
from repro.engine.timeline import TIME_EPS, Stage, Task, Timeline, simulate
from repro.faults.byzantine import (
    VERDICT_ACCEPTED,
    VERDICT_LOST,
    VERDICT_REJECTED,
    VERDICT_UNVERIFIED,
    ByzantineReport,
    ChunkOutcome,
    corrupt_partials,
)
from repro.faults.recovery import (
    FaultRecoveryError,
    FaultReport,
    RecoveryRound,
    detection_time_ms,
    redistribute_assignments,
)
from repro.msm.outsource import (
    ChunkClaim,
    batch_verify,
    chunk_value,
    make_response,
    response_padds,
    sample_challenge,
    soundness_bits,
    verify_chunk,
    verify_padds,
)
from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.counters import EventCounters
from repro.gpu.timing import (
    cpu_ec_time_ms,
    ec_ops_time_ms,
    host_transfer_time_ms,
    launch_overhead_ms,
    pipelined_cpu_visible_ms,
)
from repro.kernels.padd_kernel import KernelDescriptor

if TYPE_CHECKING:
    from repro.observe.tracer import Tracer

__all__ = [
    "DistMsm",
    "DistMsmResult",
    "PhaseTimes",  # re-exported; canonical home is repro.core.msm_timeline
]


@dataclass
class DistMsmResult:
    """Outcome of one MSM execution or estimate."""

    point: AffinePoint | None
    time_ms: float
    times: PhaseTimes
    counters: EventCounters
    window_size: int
    plan: Plan
    per_gpu_counters: list = field(default_factory=list)
    #: the event-driven schedule of this MSM (legacy barrier mode: its
    #: makespan equals ``times.total``)
    timeline: Timeline | None = None
    #: the timing decomposition the timeline was built from; feed it to
    #: :func:`repro.core.msm_timeline.build_msm_timeline` for other modes
    breakdown: MsmTimingBreakdown | None = None
    #: recovery audit of a faulted run (``None`` on fault-free executions);
    #: when set, ``time_ms`` is the *recovered* makespan and ``timeline``
    #: is the chunk-granular fault schedule, so ``time_ms != times.total``
    fault_report: FaultReport | None = None
    #: verification audit (``None`` unless chunk verification ran or the
    #: plan contained a ByzantineWorker): per-chunk verdicts, quarantine
    #: decisions and the consumed-slot map the integrity checker replays
    byzantine_report: ByzantineReport | None = None


@dataclass
class _GpuWork:
    """Analytic per-GPU work summary driving the timing model."""

    scatter: EventCounters = field(default_factory=EventCounters)
    sums: EventCounters = field(default_factory=EventCounters)
    reduce: EventCounters = field(default_factory=EventCounters)
    buckets_touched: float = 0.0
    active_sum_threads: int = 0
    reduce_threads: int = 0  # all windows' reduces run in one launch
    transfer_points: float = 0.0


@dataclass
class _Chunk:
    """One (round, gpu) unit of recoverable work in a faulted execution.

    A chunk bundles the assignments one GPU executes in one planning round;
    it is lost iff its host transfer did not complete (GPU memory dies with
    the GPU), and re-planned as a whole onto a survivor.  ``slots`` are the
    indices of the original plan's assignments this chunk covers, so a
    re-execution replaces exactly the lost cells — no double-accumulation.
    """

    round: int
    gpu: int
    slots: tuple[int, ...]
    work: _GpuWork
    phase: GpuPhaseMs
    not_before_ms: float
    partials: list  # per-slot backend partials (None on the analytic path)
    #: the worker's commitment claim (None when verification is off)
    claim: ChunkClaim | None = None
    #: ground truth: a forgery was applied and changed the chunk value
    corrupted: bool = False
    #: worker-side blinded-pass + response time (0 when verification is off)
    commit_ms: float = 0.0
    #: dispatcher-side response-check time (0 when verification is off)
    verify_ms: float = 0.0

    @property
    def transfer_task(self) -> str:
        return f"msm:r{self.round}:transfer:g{self.gpu}"

    @property
    def commit_task(self) -> str:
        return f"msm:r{self.round}:commit:g{self.gpu}"

    @property
    def verify_task(self) -> str:
        return f"msm:r{self.round}:verify:g{self.gpu}"


#: window-size auto-tune results, keyed by (curve, n, gpus, spec, config)
_WINDOW_CACHE: dict = {}


class DistMsm:
    """Multi-GPU MSM engine (paper §3), parameterised by a config.

    With the default config this is DistMSM; baseline systems instantiate it
    with their own policies (see :mod:`repro.baselines`).
    """

    def __init__(self, system: MultiGpuSystem, config: DistMsmConfig | None = None):
        self.system = system
        self.config = config or DistMsmConfig()

    # -- policy -------------------------------------------------------------

    def window_size_for(self, curve: CurveParams, n: int) -> int:
        """The engine's window size: configured, or the model-optimal one.

        Auto-tuning minimises the engine's own modelled total time over the
        feasible window range (the hierarchical scatter caps at s = 14 per
        Fig. 11); this captures every §3 trade-off at once — per-thread
        bucket-sum work, scatter atomics, *and* the CPU bucket-reduce cost
        §3.2.3 bounds.
        """
        if self.config.window_size is not None:
            return self.config.window_size
        key = (curve.name, n, self.system.num_gpus, self.system.spec.name, self.config)
        cached = _WINDOW_CACHE.get(key)
        if cached is not None:
            return cached
        hi = 14 if self.config.scatter == "hierarchical" else 22
        best_s, best_t = None, float("inf")
        for s in range(5, hi + 1):
            probe = DistMsm(self.system, replace(self.config, window_size=s))
            t = probe.estimate(curve, max(2, n)).time_ms
            if t < best_t:
                best_s, best_t = s, t
        _WINDOW_CACHE[key] = best_s
        return best_s

    def num_buckets(self, window_size: int) -> int:
        if self.config.signed_digits:
            return (1 << (window_size - 1)) + 1
        return 1 << window_size

    def _plan(self, n_win: int) -> Plan:
        return make_plan(n_win, self.system.num_gpus, self.config.multi_gpu)

    # -- entry points -------------------------------------------------------

    def execute(
        self,
        scalars: list[int],
        points: list[AffinePoint],
        curve: CurveParams,
        faults: FaultPlan | None = None,
        trace: "Tracer | None" = None,
    ) -> DistMsmResult:
        """Run the full pipeline functionally; returns the exact MSM result.

        With a ``faults`` plan the run is chaos-tested: the engine injects
        the scheduled failures, the orchestrator detects and re-plans
        around them, and the result is still bit-exact (plus a
        :class:`~repro.faults.recovery.FaultReport`).

        With a ``trace`` (:class:`~repro.observe.tracer.Tracer`), the
        run's schedule is transcribed onto it: one span per phase task on
        its GPU/link/CPU track, window-size and chunk metadata in the span
        args, run parameters in the trace metadata.
        """
        if len(scalars) != len(points):
            raise ValueError(
                f"length mismatch: {len(scalars)} scalars, {len(points)} points"
            )
        n = len(scalars)
        if n == 0:
            if trace is not None and trace.enabled:
                trace.annotate(curve=curve.name, n=0, gpus=self.system.num_gpus)
            return DistMsmResult(
                AffinePoint.identity(), 0.0, PhaseTimes(), EventCounters(), 0,
                make_plan(1, self.system.num_gpus, self.config.multi_gpu),
                timeline=simulate([]),
            )
        s = self.window_size_for(curve, n)
        backend = FunctionalBackend(self, scalars, points, curve)
        if (faults is not None and not faults.empty) or self.config.verify_chunks is True:
            return self._orchestrate_faulty(
                backend, curve, n, s, faults or FaultPlan(), trace
            )
        return self._orchestrate(backend, curve, n, s, trace)

    def estimate(
        self,
        curve: CurveParams,
        n: int,
        faults: FaultPlan | None = None,
        trace: "Tracer | None" = None,
    ) -> DistMsmResult:
        """Model the execution time for an ``n``-point MSM on this system.

        With a ``faults`` plan, models the recovered execution instead and
        attaches a :class:`~repro.faults.recovery.FaultReport`.  ``trace``
        records the modelled schedule exactly as :meth:`execute` does —
        the task DAGs are identical, so estimate-mode traces are faithful
        stand-ins.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        s = self.window_size_for(curve, n)
        backend = AnalyticBackend(self, curve, n)
        if (faults is not None and not faults.empty) or self.config.verify_chunks is True:
            return self._orchestrate_faulty(
                backend, curve, n, s, faults or FaultPlan(), trace
            )
        return self._orchestrate(backend, curve, n, s, trace)

    # -- the one orchestration body -----------------------------------------

    def _orchestrate(
        self,
        backend: Backend,
        curve: CurveParams,
        n: int,
        s: int,
        trace: "Tracer | None" = None,
    ) -> DistMsmResult:
        """Plan, scatter/sum per assignment, reduce per window, fold.

        Every step delegates its *work* to the backend (functional: real
        points and measured counters; analytic: closed-form counts) while
        this body owns the *structure*: the plan, the per-window combine
        and reduce placement, the timing model, and the timeline emission.
        """
        config = self.config
        plan, buckets_total, precompute = self._prepare(backend, curve, s)

        per_gpu_work = [_GpuWork() for _ in range(self.system.num_gpus)]
        window_partials: dict = {w: [] for w in range(plan.num_windows)}
        for assignment in plan.assignments:
            work = per_gpu_work[assignment.gpu]
            partial = backend.run_assignment(work, assignment, buckets_total)
            window_partials[assignment.window].append((assignment, partial))

        # combine per-window partials and reduce (precompute always reduces
        # on the host: its single collapsed window has no pipeline to hide in)
        cpu_counters = EventCounters()
        use_cpu_reduce = config.bucket_reduce_on_cpu or precompute
        window_results = []
        for w in range(plan.num_windows):
            partials = window_partials[w]
            combined, merge_padds = backend.combine_window(w, partials, buckets_total)
            cpu_counters.cpu_padd += merge_padds
            if use_cpu_reduce:
                counts, reduced = backend.cpu_reduce_window(combined, buckets_total)
                cpu_counters.merge(counts)
            else:
                reduced = backend.reduce_value(combined)
                # charge the reduce to the GPUs owning the window
                owners = {a.gpu for a, _ in partials} or {0}
                counts = gpu_bucket_reduce_counts(
                    buckets_total, s, self.system.concurrent_threads_per_gpu,
                    config.gpu_reduce,
                )
                if config.multi_gpu == "ndim":
                    # every GPU reduces its own full bucket array
                    share = counts
                else:
                    share = counts.scaled(1.0 / len(owners))
                for g in owners:
                    per_gpu_work[g].reduce.merge(share)
                    per_gpu_work[g].reduce_threads += min(
                        buckets_total, self.system.concurrent_threads_per_gpu
                    )
            window_results.append(reduced)

        if precompute:
            wr_counts, point = backend.finalize_precompute(window_results)
        else:
            wr_counts, point = backend.window_reduce(window_results)
        cpu_counters.merge(wr_counts)

        for work in per_gpu_work:
            work.transfer_points = work.buckets_touched

        breakdown = self._timing_breakdown(
            curve, s, buckets_total, plan, per_gpu_work, cpu_counters
        )
        times = breakdown.phase_times()
        timeline = build_msm_timeline(breakdown, self.system.resources(), mode="legacy")

        total_counters = EventCounters()
        for work in per_gpu_work:
            total_counters.merge(work.scatter)
            total_counters.merge(work.sums)
            total_counters.merge(work.reduce)
        total_counters.merge(cpu_counters)
        if trace is not None and trace.enabled:
            self._record_trace(trace, backend, curve, n, s, plan, timeline)
        return DistMsmResult(
            point=point,
            time_ms=times.total,
            times=times,
            counters=total_counters,
            window_size=s,
            plan=plan,
            per_gpu_counters=[w.scatter for w in per_gpu_work],
            timeline=timeline,
            breakdown=breakdown,
        )

    def _record_trace(
        self,
        trace: "Tracer",
        backend: Backend,
        curve: CurveParams,
        n: int,
        s: int,
        plan: Plan,
        timeline: Timeline,
        chunks: "list[_Chunk] | None" = None,
    ) -> None:
        """Transcribe a finished MSM schedule onto ``trace``.

        Every task span carries the run's window size; per-GPU tasks carry
        their GPU index; a faulted run's chunk tasks additionally carry
        their recovery round and the plan slots the chunk covers.
        """
        from repro.observe.record import record_timeline

        trace.annotate(
            curve=curve.name,
            n=n,
            window_size=s,
            gpus=self.system.num_gpus,
            num_windows=plan.num_windows,
            strategy=self.config.multi_gpu,
            mode="execute" if backend.functional else "estimate",
        )
        task_args: dict[str, dict] = {}
        for name in timeline.spans:
            extra: dict = {"window_size": s}
            if ":g" in name:
                tail = name.rsplit(":g", 1)[1]
                if tail.isdigit():
                    extra["gpu"] = int(tail)
            task_args[name] = extra
        if chunks is not None:
            for c in chunks:
                meta = {"round": c.round, "slots": list(c.slots)}
                prefix = f"msm:r{c.round}"
                for task in (
                    f"{prefix}:scatter:g{c.gpu}",
                    f"{prefix}:sum:g{c.gpu}",
                    f"{prefix}:reduce:g{c.gpu}",
                    c.commit_task,
                    c.transfer_task,
                    c.verify_task,
                ):
                    if task in task_args:
                        task_args[task].update(meta)
        record_timeline(trace, timeline, task_args)

    def _prepare(
        self, backend: Backend, curve: CurveParams, s: int
    ) -> tuple[Plan, int, bool]:
        """Digit-stream setup + work plan shared by all orchestration paths."""
        config = self.config
        n_win = window_count(curve.scalar_bits, s)
        total_windows = n_win + (1 if config.signed_digits else 0)
        buckets_total = self.num_buckets(s)
        precompute = bool(getattr(config, "precompute", False))
        if precompute:
            # all windows collapse into one flattened (digit, point) stream
            backend.prepare_precompute(s, n_win, total_windows)
            plan = make_plan(
                1,
                self.system.num_gpus,
                "ndim" if config.multi_gpu == "ndim" else "bucket-split",
            )
        else:
            backend.prepare(s, n_win, total_windows)
            plan = self._plan(total_windows)
        if backend.functional:
            self.system.reset_counters()
        return plan, buckets_total, precompute

    def _accumulate_analytic(self, work, n_eff, bucket_share, buckets_total):
        """Add one assignment's expected counts to a GPU's work summary."""
        inserts = n_eff * bucket_share
        if self.config.scatter == "hierarchical":
            counts = hierarchical_scatter_counts(
                int(round(n_eff)), buckets_total, self.config
            )
        else:
            counts = naive_scatter_counts(int(round(n_eff)), buckets_total)
        if bucket_share < 1.0:  # only a slice of buckets is kept
            counts.global_atomics = int(round(counts.global_atomics * bucket_share))
            counts.shared_atomics = int(round(counts.shared_atomics * bucket_share))
        work.scatter.merge(counts)

        assigned = max(1, int(round(buckets_total * bucket_share)))
        n_threads = threads_per_bucket(
            assigned,
            self.system.concurrent_threads_per_gpu,
            self.config.threads_per_bucket_min,
        )
        work.sums.merge(bucket_sum_counts(int(round(inserts)), buckets_total, n_threads))
        work.active_sum_threads = max(work.active_sum_threads, assigned * n_threads)
        work.buckets_touched += assigned
        work.transfer_points += assigned

    # -- shared timing -------------------------------------------------------

    def _gpu_phase(
        self, curve: CurveParams, buckets_total: int, work: _GpuWork
    ) -> GpuPhaseMs:
        """Model one GPU's (or one chunk's) per-phase milliseconds."""
        spec = self.system.spec
        desc = KernelDescriptor(curve, self.config.kernel_opts)
        eff = self.config.efficiency
        api = self.config.api
        g_scatter = scatter_time_ms(
            spec,
            work.scatter,
            buckets_total,
            min(spec.concurrent_threads, max(1, work.active_sum_threads or 1)),
            self.config.threads_per_block,
        ) / eff
        g_sum = (
            ec_ops_time_ms(desc, "pacc", work.sums.pacc, spec, work.active_sum_threads or None, api)
            + ec_ops_time_ms(desc, "padd", work.sums.padd, spec, work.active_sum_threads or None, api)
        ) / eff
        reduce_threads = min(
            spec.concurrent_threads, work.reduce_threads or buckets_total
        )
        g_reduce = (
            ec_ops_time_ms(desc, "padd", work.reduce.padd, spec, reduce_threads, api)
            + ec_ops_time_ms(desc, "padd", work.reduce.pdbl, spec, reduce_threads, api)
        ) / eff
        point_bytes = 4 * curve.num_limbs * 4  # XYZZ coordinates
        g_transfer = host_transfer_time_ms(work.transfer_points * point_bytes, spec)
        g_launch = launch_overhead_ms(
            work.scatter.kernel_launches + work.sums.kernel_launches + work.reduce.kernel_launches,
            spec,
        )
        return GpuPhaseMs(g_scatter, g_sum, g_reduce, g_transfer, g_launch)

    def _timing_breakdown(
        self,
        curve: CurveParams,
        s: int,
        buckets_total: int,
        plan: Plan,
        per_gpu_work: list,
        cpu_counters: EventCounters,
    ) -> MsmTimingBreakdown:
        per_gpu = [
            self._gpu_phase(curve, buckets_total, work) for work in per_gpu_work
        ]

        cpu_rate = self.system.cpu_padd_rate()
        cpu_reduce_ms = cpu_ec_time_ms(cpu_counters.cpu_padd, 0, cpu_rate)
        window_reduce_ms = cpu_ec_time_ms(0, cpu_counters.cpu_pdbl, cpu_rate)
        if self.config.bucket_reduce_on_cpu and plan.num_windows > 1:
            gpu_busy = max((g.total for g in per_gpu), default=0.0)
            visible_cpu = pipelined_cpu_visible_ms(
                cpu_reduce_ms, gpu_busy, plan.num_windows
            )
        else:
            visible_cpu = cpu_reduce_ms

        # inter-node coordination: one sync per DGX node boundary
        coordination_ms = self.config.node_sync_ms * self.system.nodes

        return MsmTimingBreakdown(
            per_gpu=per_gpu,
            cpu_reduce_raw_ms=cpu_reduce_ms,
            visible_cpu_ms=visible_cpu,
            window_reduce_ms=window_reduce_ms,
            coordination_ms=coordination_ms,
            num_windows=plan.num_windows,
        )

    # -- fault injection and recovery (DESIGN.md §9) -------------------------

    def _validate_fault_plan(self, faults: FaultPlan) -> None:
        """Reject plans addressing resources this system does not have."""
        num = self.system.num_gpus
        nodes = self.system.nodes
        dead: set[int] = set()
        for event in faults.events:
            if (
                isinstance(event, (GpuFailure, Straggler, ByzantineWorker))
                and event.gpu_id >= num
            ):
                raise ValueError(
                    f"fault targets gpu {event.gpu_id}, system has {num} GPUs"
                )
            if isinstance(event, TransferError) and event.node >= nodes:
                raise ValueError(
                    f"fault targets node {event.node}, system has {nodes} node(s)"
                )
            if isinstance(event, GpuFailure):
                dead.add(event.gpu_id)
        if len(dead) >= num:
            raise FaultRecoveryError(
                "fault plan kills every GPU; no survivor to recover onto"
            )

    def _charge_chunk_reduce(
        self, work: _GpuWork, assignments: list, buckets_total: int, s: int
    ) -> None:
        """GPU bucket-reduce cost of one chunk (bucket_reduce_on_cpu=False).

        Charged chunk-locally by bucket share — each GPU reduces the bucket
        slice it owns — which matches the owner-split charging of the
        fault-free path for even bucket splits.
        """
        counts = gpu_bucket_reduce_counts(
            buckets_total, s, self.system.concurrent_threads_per_gpu,
            self.config.gpu_reduce,
        )
        for a in assignments:
            share = counts if self.config.multi_gpu == "ndim" else counts.scaled(a.bucket_share)
            work.reduce.merge(share)
            work.reduce_threads += min(
                buckets_total, self.system.concurrent_threads_per_gpu
            )

    def _chunk_tasks(self, chunks: list[_Chunk], resources) -> list[Task]:
        """The recoverable task graph: scatter -> sum [-> reduce] [-> commit]
        -> transfer [-> verify] per chunk, with the transfer requiring the
        producing GPU alive.  The commit task is the worker's blinded
        commitment pass (on the GPU); the verify task is the dispatcher's
        response check (on the host CPU) — both exist only when chunk
        verification is on."""
        tasks: list[Task] = []
        for c in chunks:
            gpu_res = resources.gpu(c.gpu)
            prefix = f"msm:r{c.round}"
            stage = f"round{c.round}"
            scatter = f"{prefix}:scatter:g{c.gpu}"
            tasks.append(
                Task(scatter, gpu_res, c.phase.scatter + c.phase.launch,
                     (), stage, c.not_before_ms)
            )
            last = f"{prefix}:sum:g{c.gpu}"
            tasks.append(
                Task(last, gpu_res, c.phase.bucket_sum, (scatter,), stage,
                     c.not_before_ms)
            )
            if c.phase.reduce > 0:
                reduce_name = f"{prefix}:reduce:g{c.gpu}"
                tasks.append(
                    Task(reduce_name, gpu_res, c.phase.reduce, (last,), stage,
                         c.not_before_ms)
                )
                last = reduce_name
            if c.commit_ms > 0:
                tasks.append(
                    Task(c.commit_task, gpu_res, c.commit_ms, (last,), stage,
                         c.not_before_ms)
                )
                last = c.commit_task
            tasks.append(
                Task(c.transfer_task, resources.channel_for_gpu(c.gpu),
                     c.phase.transfer, (last,), stage, c.not_before_ms,
                     (gpu_res.name,))
            )
            if c.verify_ms > 0:
                tasks.append(
                    Task(c.verify_task, resources.cpu, c.verify_ms,
                         (c.transfer_task,), stage, c.not_before_ms)
                )
        return tasks

    @staticmethod
    def _fault_stages(chunks: list[_Chunk], extra: tuple[str, ...] = ()) -> tuple[Stage, ...]:
        by_round: dict[int, list[str]] = {}
        for c in chunks:
            names = by_round.setdefault(c.round, [])
            prefix = f"msm:r{c.round}"
            names.append(f"{prefix}:scatter:g{c.gpu}")
            names.append(f"{prefix}:sum:g{c.gpu}")
            if c.phase.reduce > 0:
                names.append(f"{prefix}:reduce:g{c.gpu}")
            if c.commit_ms > 0:
                names.append(c.commit_task)
            names.append(c.transfer_task)
            if c.verify_ms > 0:
                names.append(c.verify_task)
        stages = [
            Stage(f"round{r}", tuple(by_round[r])) for r in sorted(by_round)
        ]
        if extra:
            stages.append(Stage("host", extra))
        return tuple(stages)

    def _orchestrate_faulty(
        self, backend: Backend, curve: CurveParams, n: int, s: int,
        faults: FaultPlan, trace: "Tracer | None" = None,
    ) -> DistMsmResult:
        """Plan, inject the fault schedule, detect, re-plan, stay bit-exact.

        Work is tracked in chunks (one per round and GPU).  A chunk is lost
        iff its host transfer never completed — GPU memory dies with the
        GPU — and its assignment *slots* are then redistributed over the
        surviving GPUs at the same window size ``s`` (partial bucket sums
        are ``s``-bound).  The loop re-simulates until every slot is
        covered by exactly one delivered execution; duplicate deliveries
        (a presumed-lost transfer that still lands) are discarded by slot,
        so the combine consumes each (window, bucket-range) cell once and
        the functional result stays bit-exact.

        With chunk verification on (``verify_chunks=True``, or ``"auto"``
        and the plan contains a :class:`ByzantineWorker`), every delivered
        chunk passes the 2G2T response check (:mod:`repro.msm.outsource`)
        before it may cover a slot: a rejected chunk counts as lost, its
        GPU is quarantined (no further dispatch — the same bookkeeping that
        blacklists dead GPUs), and the work is re-planned onto *trusted*
        survivors.  Detection of a rejection is host-side (the verify task's
        completion), not heartbeat-gated.  Verified-accepted results are
        kept even from GPUs later quarantined — trust comes from the math,
        not the worker.
        """
        config = self.config
        self._validate_fault_plan(faults)
        plan, buckets_total, precompute = self._prepare(backend, curve, s)
        use_cpu_reduce = config.bucket_reduce_on_cpu or precompute
        retry = RetryPolicy(config.max_retries, config.backoff_base_ms)
        resources = self.system.resources()
        gpu_deaths = faults.gpu_death_times()
        num_slots = len(plan.assignments)
        cpu_rate = self.system.cpu_padd_rate()

        byz = faults.byzantine_workers()
        verify_on = config.verify_chunks is True or (
            config.verify_chunks == "auto" and bool(byz)
        )
        challenge = (
            sample_challenge(curve, config.challenge_seed) if verify_on else None
        )
        desc = KernelDescriptor(curve, config.kernel_opts)

        chunks: list[_Chunk] = []

        def run_chunk(
            rnd: int, gpu: int, slot_ids: list[int], assignments: list,
            not_before: float,
        ) -> None:
            work = _GpuWork()
            partials = [
                backend.run_assignment(work, a, buckets_total) for a in assignments
            ]
            if not use_cpu_reduce:
                self._charge_chunk_reduce(work, assignments, buckets_total, s)
            work.transfer_points = work.buckets_touched
            phase = self._gpu_phase(curve, buckets_total, work)
            ev = byz.get(gpu)
            cheats = ev is not None and ev.cheats_in_round(rnd)
            corrupted = False
            claim: ChunkClaim | None = None
            if backend.functional:
                if verify_on:
                    # the blinded pass runs over the honest work, *before*
                    # the forgery: a cheater cannot recompute a consistent
                    # response without the challenge scalar and the mask
                    value = chunk_value(partials, curve)
                    claim = ChunkClaim(
                        rnd, gpu,
                        response=make_response(challenge, value, rnd, gpu, curve),
                    )
                if cheats:
                    partials, corrupted = corrupt_partials(
                        ev.mode, ev.seed, rnd, gpu, partials, curve
                    )
            else:
                corrupted = cheats  # modelled forgery always changes the value
                if verify_on:
                    claim = ChunkClaim(rnd, gpu, modelled_corrupt=corrupted)
            commit_ms = verify_ms = 0.0
            if verify_on:
                commit_ms = config.verify_commit_factor * (
                    phase.scatter + phase.bucket_sum + phase.reduce
                ) + ec_ops_time_ms(
                    desc, "padd", response_padds(curve.scalar_bits),
                    self.system.spec, 1, config.api,
                )
                verify_ms = cpu_ec_time_ms(
                    verify_padds(
                        max(1, int(round(work.buckets_touched))),
                        curve.scalar_bits, config.verify_batch,
                    ),
                    0, cpu_rate,
                )
            chunks.append(
                _Chunk(
                    rnd, gpu, tuple(slot_ids), work, phase, not_before, partials,
                    claim=claim, corrupted=corrupted,
                    commit_ms=commit_ms, verify_ms=verify_ms,
                )
            )

        verdict_cache: dict[tuple[int, int], bool] = {}

        def accepts(c: _Chunk) -> bool:
            """The (deterministic) response check of one delivered chunk."""
            if not verify_on:
                return True
            key = (c.round, c.gpu)
            if key not in verdict_cache:
                if backend.functional:
                    verdict_cache[key] = verify_chunk(
                        challenge, chunk_value(c.partials, curve),
                        c.claim.response, c.round, c.gpu, curve,
                    )
                else:
                    verdict_cache[key] = not c.claim.modelled_corrupt
            return verdict_cache[key]

        def verify_end(tl: Timeline, c: _Chunk) -> float:
            if c.verify_task in tl.spans:
                return tl.spans[c.verify_task].end_ms
            return tl.spans[c.transfer_task].end_ms

        by_gpu: dict[int, list[int]] = {}
        for i, a in enumerate(plan.assignments):
            by_gpu.setdefault(a.gpu, []).append(i)
        for g in sorted(by_gpu):
            run_chunk(0, g, by_gpu[g], [plan.assignments[i] for i in by_gpu[g]], 0.0)

        rounds: list[RecoveryRound] = [
            RecoveryRound(0, tuple(sorted(by_gpu)), (), (), 0.0, 0.0)
        ]
        transfer_victims: set[int] = set()
        quarantine_at: dict[int, float] = {}

        def latest_copy(slot: int) -> _Chunk:
            return next(c for c in reversed(chunks) if slot in c.slots)

        timeline: Timeline | None = None
        max_rounds = len(faults.events) + self.system.num_gpus + 2
        for _ in range(max_rounds):
            timeline = simulate(self._chunk_tasks(chunks, resources), (), faults, retry)
            covered: set[int] = set()
            for c in chunks:
                if c.transfer_task in timeline.spans and accepts(c):
                    covered.update(c.slots)
            uncovered = set(range(num_slots)) - covered
            if not uncovered:
                break
            for f in timeline.failures:
                if f.reason == "transfer-error":
                    transfer_victims.add(int(f.task.rsplit(":g", 1)[1]))
            # quarantine every GPU whose delivered chunk failed verification
            # (at the rejecting check's completion — no heartbeat involved)
            for c in chunks:
                if c.transfer_task in timeline.spans and not accepts(c):
                    quarantine_at.setdefault(c.gpu, verify_end(timeline, c))
            lost = {(c.round, c.gpu): c for c in map(latest_copy, uncovered)}
            fail_ts: list[float] = []
            reject_ts: list[float] = []
            for c in lost.values():
                if c.transfer_task in timeline.spans:
                    reject_ts.append(verify_end(timeline, c))
                else:
                    fail_ts.append(
                        timeline.failure_for(c.transfer_task).at_ms  # type: ignore[union-attr]
                    )
            detect = 0.0
            if fail_ts:
                detect = detection_time_ms(max(fail_ts), config.heartbeat_ms)
            if reject_ts:
                detect = max(detect, max(reject_ts))
            dead_known = {
                g for g, t in gpu_deaths.items()
                if detection_time_ms(t, config.heartbeat_ms) <= detect + TIME_EPS
            }
            survivors = [
                g for g in range(self.system.num_gpus)
                if g not in dead_known and g not in transfer_victims
                and g not in quarantine_at
            ]
            if not survivors:
                survivors = [
                    g for g in range(self.system.num_gpus)
                    if g not in dead_known and g not in quarantine_at
                ]
            if not survivors:
                raise FaultRecoveryError(
                    "no trusted survivor: every GPU is dead or quarantined"
                )
            slot_ids = sorted(uncovered)
            moved = redistribute_assignments(
                [plan.assignments[i] for i in slot_ids], survivors
            )
            rnd = rounds[-1].round + 1
            regroup: dict[int, tuple[list[int], list]] = {}
            for slot, a in zip(slot_ids, moved):
                slots_g, assigns_g = regroup.setdefault(a.gpu, ([], []))
                slots_g.append(slot)
                assigns_g.append(a)
            for g in sorted(regroup):
                run_chunk(rnd, g, regroup[g][0], regroup[g][1], detect)
            rounds.append(
                RecoveryRound(
                    rnd,
                    tuple(sorted(regroup)),
                    tuple(sorted({c.gpu for c in lost.values()})),
                    tuple(sorted(lost)),
                    detect,
                    detect,
                )
            )
        else:
            raise FaultRecoveryError(
                f"recovery did not converge within {max_rounds} re-plans"
            )
        assert timeline is not None

        # exactly one delivered-and-accepted execution per slot (earliest
        # round wins); rejected deliveries never reach the accumulation
        live: dict[int, tuple[_Chunk, object]] = {}
        for c in chunks:
            if c.transfer_task in timeline.spans and accepts(c):
                for slot, partial in zip(c.slots, c.partials):
                    live.setdefault(slot, (c, partial))

        cpu_counters = EventCounters()
        window_slots: dict[int, list[int]] = {w: [] for w in range(plan.num_windows)}
        for i, a in enumerate(plan.assignments):
            window_slots[a.window].append(i)
        window_results = []
        for w in range(plan.num_windows):
            partials = [(plan.assignments[i], live[i][1]) for i in window_slots[w]]
            combined, merge_padds = backend.combine_window(w, partials, buckets_total)
            cpu_counters.cpu_padd += merge_padds
            if use_cpu_reduce:
                counts, reduced = backend.cpu_reduce_window(combined, buckets_total)
                cpu_counters.merge(counts)
            else:
                reduced = backend.reduce_value(combined)
            window_results.append(reduced)
        if precompute:
            wr_counts, point = backend.finalize_precompute(window_results)
        else:
            wr_counts, point = backend.window_reduce(window_results)
        cpu_counters.merge(wr_counts)

        # the host tail (combine + reduce + coordination), honest, unpipelined
        cpu_rate = self.system.cpu_padd_rate()
        cpu_ms = (
            cpu_ec_time_ms(cpu_counters.cpu_padd, cpu_counters.cpu_pdbl, cpu_rate)
            + config.node_sync_ms * self.system.nodes
        )
        # with verification on, accumulation may only start once the live
        # chunks' response checks completed — the gate the auditor enforces
        live_deps = tuple(
            sorted(
                {
                    (c.verify_task if verify_on else c.transfer_task)
                    for c, _ in live.values()
                }
            )
        )
        cpu_task = Task("msm:host-reduce", resources.cpu, cpu_ms, live_deps, "host")
        final_tasks = self._chunk_tasks(chunks, resources) + [cpu_task]
        check_plan(final_tasks, label="<distmsm recovery plan>")
        timeline = simulate(
            final_tasks,
            self._fault_stages(chunks, ("msm:host-reduce",)),
            faults,
            retry,
        )

        # fault-free baseline on the same task-graph model (round 0 only,
        # verification costs included when on — so the recovery overhead
        # isolates the faults, not the protocol tax)
        round0 = [c for c in chunks if c.round == 0]
        base_cpu = Task(
            "msm:host-reduce", resources.cpu, cpu_ms,
            tuple(sorted(
                (c.verify_task if verify_on else c.transfer_task) for c in round0
            )),
            "host",
        )
        baseline = simulate(
            self._chunk_tasks(round0, resources) + [base_cpu],
            self._fault_stages(round0, ("msm:host-reduce",)),
        )

        recovered_ms = timeline.total_ms
        dead = tuple(
            sorted(g for g, t in gpu_deaths.items() if t <= recovered_ms + TIME_EPS)
        )
        surviving = tuple(
            g for g in range(self.system.num_gpus) if g not in dead
        )
        if dead and config.window_size is None:
            probe = DistMsm(
                MultiGpuSystem(
                    len(surviving), self.system.spec, self.system.cpu,
                    self.system.gpus_per_node,
                ),
                config,
            )
            replanned = probe.window_size_for(curve, n)
        else:
            replanned = s
        report = FaultReport(
            plan=faults,
            rounds=tuple(rounds),
            dead_gpus=dead,
            surviving_gpus=surviving,
            fault_free_ms=baseline.total_ms,
            recovered_ms=recovered_ms,
            window_size=s,
            replanned_window_size=replanned,
            retries=len(timeline.attempts),
        )

        # -- verification accounting and the Byzantine audit trail ----------
        chunk_checks = batch_checks = 0
        if verify_on:
            for r in sorted({c.round for c in chunks}):
                delivered = [
                    c for c in chunks
                    if c.round == r and c.transfer_task in timeline.spans
                ]
                if not delivered:
                    continue
                if config.verify_batch:
                    batch_checks += 1
                    if backend.functional:
                        batch_ok = batch_verify(
                            challenge,
                            [
                                (c.round, c.gpu, chunk_value(c.partials, curve),
                                 c.claim.response)
                                for c in delivered
                            ],
                            curve,
                        )
                    else:
                        batch_ok = all(accepts(c) for c in delivered)
                    if not batch_ok:  # fall back per chunk to localise
                        chunk_checks += len(delivered)
                else:
                    chunk_checks += len(delivered)

        byz_report: ByzantineReport | None = None
        if verify_on or byz:
            outcomes = []
            for c in chunks:
                delivered = c.transfer_task in timeline.spans
                scatter = f"msm:r{c.round}:scatter:g{c.gpu}"
                dispatched = (
                    timeline.spans[scatter].start_ms
                    if scatter in timeline.spans
                    else c.not_before_ms
                )
                if not delivered:
                    verdict, vtime = VERDICT_LOST, -1.0
                elif not verify_on:
                    verdict, vtime = VERDICT_UNVERIFIED, -1.0
                elif accepts(c):
                    verdict, vtime = VERDICT_ACCEPTED, verify_end(timeline, c)
                else:
                    verdict, vtime = VERDICT_REJECTED, verify_end(timeline, c)
                outcomes.append(
                    ChunkOutcome(
                        c.round, c.gpu, c.slots, c.corrupted, delivered,
                        verdict, dispatched, vtime,
                    )
                )
            byz_report = ByzantineReport(
                challenge_seed=config.challenge_seed,
                scheme="2g2t-rlc" if config.verify_batch else "2g2t",
                soundness_bits=soundness_bits(curve),
                verified=verify_on,
                cheaters=tuple(sorted(byz)),
                quarantined=tuple(sorted(quarantine_at.items())),
                chunks=tuple(outcomes),
                consumed=tuple(
                    sorted((slot, c.round, c.gpu) for slot, (c, _) in live.items())
                ),
                chunk_checks=chunk_checks,
                batch_checks=batch_checks,
                rejected=sum(
                    1 for o in outcomes if o.verdict == VERDICT_REJECTED
                ),
            )

        per_gpu_work = [_GpuWork() for _ in range(self.system.num_gpus)]
        for c in chunks:
            agg = per_gpu_work[c.gpu]
            agg.scatter.merge(c.work.scatter)
            agg.sums.merge(c.work.sums)
            agg.reduce.merge(c.work.reduce)
            agg.buckets_touched += c.work.buckets_touched
            agg.active_sum_threads = max(
                agg.active_sum_threads, c.work.active_sum_threads
            )
            agg.reduce_threads += c.work.reduce_threads
            agg.transfer_points += c.work.transfer_points
        breakdown = self._timing_breakdown(
            curve, s, buckets_total, plan, per_gpu_work, cpu_counters
        )
        total_counters = EventCounters()
        for work in per_gpu_work:
            total_counters.merge(work.scatter)
            total_counters.merge(work.sums)
            total_counters.merge(work.reduce)
        total_counters.merge(cpu_counters)
        if trace is not None and trace.enabled:
            self._record_trace(trace, backend, curve, n, s, plan, timeline, chunks)
            trace.annotate(
                faulted=True,
                recovery_rounds=len(rounds),
                dead_gpus=list(dead),
            )
            if byz_report is not None:
                trace.annotate(
                    verified=verify_on,
                    byzantine_gpus=list(byz_report.cheaters),
                    quarantined_gpus=list(byz_report.quarantined_gpus),
                )
        return DistMsmResult(
            point=point,
            time_ms=recovered_ms,
            times=breakdown.phase_times(),
            counters=total_counters,
            window_size=s,
            plan=plan,
            per_gpu_counters=[w.scatter for w in per_gpu_work],
            timeline=timeline,
            breakdown=breakdown,
            fault_report=report,
            byzantine_report=byz_report,
        )
