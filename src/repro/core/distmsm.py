"""The DistMSM engine: plan -> simulate -> (result, counters, time).

Two entry points:

* :meth:`DistMsm.execute` — the *functional* path.  Runs the full pipeline
  (scatter, bucket-sum, reduce) against the simulated GPUs, producing a
  bit-exact MSM result, measured event counts, and modelled phase times.
  Used for correctness tests and small inputs.
* :meth:`DistMsm.estimate` — the *analytic* path.  Same phase structure and
  the same timing model, but event counts come from closed-form expectation
  formulas, so paper-scale inputs (N = 2^28) evaluate instantly.

Both paths share `_phase_times`, so the timing model is identical; property
tests check functional and analytic counts agree on common inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.bucket_reduce import (
    cpu_bucket_reduce,
    cpu_bucket_reduce_counts,
    cpu_window_reduce,
    gpu_bucket_reduce_counts,
)
from repro.core.bucket_sum import (
    bucket_sum,
    bucket_sum_counts,
    threads_per_bucket,
)
from repro.core.config import DistMsmConfig
from repro.core.planner import Plan, make_plan
from repro.core.scatter import (
    hierarchical_scatter,
    hierarchical_scatter_counts,
    naive_scatter,
    naive_scatter_counts,
    scatter_time_ms,
)
from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint, XyzzPoint, to_affine, xyzz_add
from repro.curves.scalar import num_windows as window_count
from repro.curves.scalar import signed_windows, unsigned_windows
from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.counters import EventCounters
from repro.gpu.timing import (
    cpu_ec_time_ms,
    ec_ops_time_ms,
    host_transfer_time_ms,
    launch_overhead_ms,
)
from repro.kernels.padd_kernel import KernelDescriptor
from repro.msm.precompute import precompute_tables

#: per-node host coordination overhead added to every MSM (ms)
NODE_SYNC_MS = 0.2


@dataclass
class PhaseTimes:
    """Modelled wall time per pipeline phase, milliseconds."""

    scatter: float = 0.0
    bucket_sum: float = 0.0
    bucket_reduce: float = 0.0
    window_reduce: float = 0.0
    transfer: float = 0.0
    launch: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.scatter
            + self.bucket_sum
            + self.bucket_reduce
            + self.window_reduce
            + self.transfer
            + self.launch
        )

    def as_dict(self) -> dict:
        return {
            "scatter": self.scatter,
            "bucket_sum": self.bucket_sum,
            "bucket_reduce": self.bucket_reduce,
            "window_reduce": self.window_reduce,
            "transfer": self.transfer,
            "launch": self.launch,
            "total": self.total,
        }


@dataclass
class DistMsmResult:
    """Outcome of one MSM execution or estimate."""

    point: AffinePoint | None
    time_ms: float
    times: PhaseTimes
    counters: EventCounters
    window_size: int
    plan: Plan
    per_gpu_counters: list = field(default_factory=list)


@dataclass
class _GpuWork:
    """Analytic per-GPU work summary driving the timing model."""

    scatter: EventCounters = field(default_factory=EventCounters)
    sums: EventCounters = field(default_factory=EventCounters)
    reduce: EventCounters = field(default_factory=EventCounters)
    buckets_touched: float = 0.0
    active_sum_threads: int = 0
    reduce_threads: int = 0  # all windows' reduces run in one launch
    transfer_points: float = 0.0


#: window-size auto-tune results, keyed by (curve, n, gpus, spec, config)
_WINDOW_CACHE: dict = {}


class DistMsm:
    """Multi-GPU MSM engine (paper §3), parameterised by a config.

    With the default config this is DistMSM; baseline systems instantiate it
    with their own policies (see :mod:`repro.baselines`).
    """

    def __init__(self, system: MultiGpuSystem, config: DistMsmConfig | None = None):
        self.system = system
        self.config = config or DistMsmConfig()

    # -- policy -------------------------------------------------------------

    def window_size_for(self, curve: CurveParams, n: int) -> int:
        """The engine's window size: configured, or the model-optimal one.

        Auto-tuning minimises the engine's own modelled total time over the
        feasible window range (the hierarchical scatter caps at s = 14 per
        Fig. 11); this captures every §3 trade-off at once — per-thread
        bucket-sum work, scatter atomics, *and* the CPU bucket-reduce cost
        §3.2.3 bounds.
        """
        if self.config.window_size is not None:
            return self.config.window_size
        key = (curve.name, n, self.system.num_gpus, self.system.spec.name, self.config)
        cached = _WINDOW_CACHE.get(key)
        if cached is not None:
            return cached
        hi = 14 if self.config.scatter == "hierarchical" else 22
        best_s, best_t = None, float("inf")
        for s in range(5, hi + 1):
            probe = DistMsm(self.system, replace(self.config, window_size=s))
            t = probe.estimate(curve, max(2, n)).time_ms
            if t < best_t:
                best_s, best_t = s, t
        _WINDOW_CACHE[key] = best_s
        return best_s

    def num_buckets(self, window_size: int) -> int:
        if self.config.signed_digits:
            return (1 << (window_size - 1)) + 1
        return 1 << window_size

    def _plan(self, n_win: int) -> Plan:
        return make_plan(n_win, self.system.num_gpus, self.config.multi_gpu)

    # -- functional execution -------------------------------------------------

    def execute(
        self,
        scalars: list[int],
        points: list[AffinePoint],
        curve: CurveParams,
    ) -> DistMsmResult:
        """Run the full pipeline functionally; returns the exact MSM result."""
        if len(scalars) != len(points):
            raise ValueError(
                f"length mismatch: {len(scalars)} scalars, {len(points)} points"
            )
        n = len(scalars)
        if n == 0:
            empty = PhaseTimes()
            return DistMsmResult(
                AffinePoint.identity(), 0.0, empty, EventCounters(), 0,
                make_plan(1, self.system.num_gpus, self.config.multi_gpu),
            )
        s = self.window_size_for(curve, n)
        n_win = window_count(curve.scalar_bits, s)
        signed = self.config.signed_digits

        if getattr(self.config, "precompute", False):
            return self._execute_precompute(scalars, points, curve, s, n_win)

        if signed:
            digit_rows = [signed_windows(k, s, n_win) for k in scalars]
            n_win += 1
        else:
            digit_rows = [unsigned_windows(k, s, n_win) for k in scalars]
        buckets_total = self.num_buckets(s)
        plan = self._plan(n_win)
        self.system.reset_counters()

        window_partials: dict = {w: [] for w in range(n_win)}
        per_gpu_work = [_GpuWork() for _ in range(self.system.num_gpus)]

        for assignment in plan.assignments:
            gpu = self.system.gpus[assignment.gpu]
            work = per_gpu_work[assignment.gpu]
            w = assignment.window
            p_lo = int(round(assignment.point_lo * n))
            p_hi = int(round(assignment.point_hi * n))
            b_lo = int(round(assignment.bucket_lo * buckets_total))
            b_hi = int(round(assignment.bucket_hi * buckets_total))

            digits = []
            negate = [False] * n
            for pid in range(p_lo, p_hi):
                d = digit_rows[pid][w]
                if signed and d < 0:
                    negate[pid] = True
                    d = -d
                digits.append(d if b_lo <= d < b_hi else 0)

            if self.config.scatter == "hierarchical":
                scat = hierarchical_scatter(gpu, digits, buckets_total, self.config)
            else:
                scat = naive_scatter(gpu, digits, buckets_total)
            work.scatter.merge(scat.counters)

            assigned_buckets = max(1, b_hi - b_lo)
            n_threads = threads_per_bucket(
                assigned_buckets,
                self.system.concurrent_threads_per_gpu,
                self.config.threads_per_bucket_min,
            )
            # shift point ids back to global index space
            buckets_global = [
                [pid + p_lo for pid in members] for members in scat.buckets
            ]
            sums = bucket_sum(buckets_global, points, curve, n_threads, negate)
            work.sums.merge(sums.counters)
            work.active_sum_threads = max(
                work.active_sum_threads, assigned_buckets * n_threads
            )
            work.buckets_touched += assigned_buckets
            window_partials[w].append((assignment, sums.sums))

        # combine per-window partials and reduce
        cpu_counters = EventCounters()
        window_results = []
        for w in range(n_win):
            combined = [XyzzPoint.identity() for _ in range(buckets_total)]
            for assignment, sums in window_partials[w]:
                for b, pt in enumerate(sums):
                    if pt.is_identity:
                        continue
                    if combined[b].is_identity:
                        combined[b] = pt
                    else:  # ndim: same bucket fed from several point slices
                        combined[b] = xyzz_add(combined[b], pt, curve)
                        cpu_counters.cpu_padd += 1
            if self.config.bucket_reduce_on_cpu:
                reduced = cpu_bucket_reduce(combined, curve)
                cpu_counters.merge(reduced.counters)
            else:
                reduced = cpu_bucket_reduce(combined, curve)  # same math
                # charge it to the GPUs owning the window instead of the CPU
                owners = {a.gpu for a, _ in window_partials[w]} or {0}
                counts = gpu_bucket_reduce_counts(
                    buckets_total, s, self.system.concurrent_threads_per_gpu,
                    self.config.gpu_reduce,
                )
                if self.config.multi_gpu == "ndim":
                    # every GPU reduces its own full bucket array
                    share = counts
                else:
                    share = counts.scaled(1.0 / len(owners))
                for g in owners:
                    per_gpu_work[g].reduce.merge(share)
                    per_gpu_work[g].reduce_threads += min(
                        buckets_total, self.system.concurrent_threads_per_gpu
                    )
            window_results.append(reduced.result)

        wr = cpu_window_reduce(window_results, s, curve)
        cpu_counters.merge(wr.counters)
        result = to_affine(wr.result, curve)

        for g, work in enumerate(per_gpu_work):
            work.transfer_points = work.buckets_touched

        times = self._phase_times(curve, n, s, buckets_total, plan, per_gpu_work, cpu_counters)
        total_counters = EventCounters()
        for work in per_gpu_work:
            total_counters.merge(work.scatter)
            total_counters.merge(work.sums)
            total_counters.merge(work.reduce)
        total_counters.merge(cpu_counters)
        return DistMsmResult(
            point=result,
            time_ms=times.total,
            times=times,
            counters=total_counters,
            window_size=s,
            plan=plan,
            per_gpu_counters=[w.scatter for w in per_gpu_work],
        )

    def _execute_precompute(self, scalars, points, curve, s, n_win):
        """Functional path for precompute configs: one collapsed window."""
        signed = self.config.signed_digits
        total_windows = n_win + (1 if signed else 0)
        tables = precompute_tables(points, curve, s, total_windows)
        n = len(scalars)
        buckets_total = self.num_buckets(s)

        flat_points: list[AffinePoint] = []
        digits: list[int] = []
        negate: list[bool] = []
        for pid, k in enumerate(scalars):
            row = (
                signed_windows(k, s, n_win) if signed else unsigned_windows(k, s, n_win)
            )
            for w in range(total_windows):
                d = row[w]
                if d == 0:
                    continue
                flat_points.append(tables[w][pid])
                negate.append(d < 0)
                digits.append(abs(d))

        plan = make_plan(1, self.system.num_gpus, "ndim" if self.config.multi_gpu == "ndim" else "bucket-split")
        self.system.reset_counters()
        per_gpu_work = [_GpuWork() for _ in range(self.system.num_gpus)]
        combined = [XyzzPoint.identity() for _ in range(buckets_total)]
        cpu_counters = EventCounters()
        m = len(digits)
        for assignment in plan.assignments:
            gpu = self.system.gpus[assignment.gpu]
            work = per_gpu_work[assignment.gpu]
            p_lo = int(round(assignment.point_lo * m))
            p_hi = int(round(assignment.point_hi * m))
            b_lo = int(round(assignment.bucket_lo * buckets_total))
            b_hi = int(round(assignment.bucket_hi * buckets_total))
            local = [
                d if b_lo <= d < b_hi else 0 for d in digits[p_lo:p_hi]
            ]
            if self.config.scatter == "hierarchical":
                scat = hierarchical_scatter(gpu, local, buckets_total, self.config)
            else:
                scat = naive_scatter(gpu, local, buckets_total)
            work.scatter.merge(scat.counters)
            assigned = max(1, b_hi - b_lo)
            n_threads = threads_per_bucket(
                assigned, self.system.concurrent_threads_per_gpu,
                self.config.threads_per_bucket_min,
            )
            shifted = [[pid + p_lo for pid in mem] for mem in scat.buckets]
            sums = bucket_sum(shifted, flat_points, curve, n_threads, negate)
            work.sums.merge(sums.counters)
            work.active_sum_threads = max(work.active_sum_threads, assigned * n_threads)
            work.buckets_touched += assigned
            for b, pt in enumerate(sums.sums):
                if pt.is_identity:
                    continue
                if combined[b].is_identity:
                    combined[b] = pt
                else:
                    combined[b] = xyzz_add(combined[b], pt, curve)
                    cpu_counters.cpu_padd += 1

        reduced = cpu_bucket_reduce(combined, curve)
        cpu_counters.merge(reduced.counters)
        result = to_affine(reduced.result, curve)
        for work in per_gpu_work:
            work.transfer_points = work.buckets_touched
        times = self._phase_times(
            curve, n, s, buckets_total, plan, per_gpu_work, cpu_counters
        )
        total = EventCounters()
        for work in per_gpu_work:
            total.merge(work.scatter)
            total.merge(work.sums)
        total.merge(cpu_counters)
        return DistMsmResult(result, times.total, times, total, s, plan)

    # -- analytic estimation ----------------------------------------------------

    def estimate(self, curve: CurveParams, n: int) -> DistMsmResult:
        """Model the execution time for an ``n``-point MSM on this system."""
        if n <= 0:
            raise ValueError("n must be positive")
        s = self.window_size_for(curve, n)
        n_win = window_count(curve.scalar_bits, s)
        if self.config.signed_digits:
            n_win += 1
        if getattr(self.config, "precompute", False):
            return self._estimate_precompute(curve, n, s, n_win)
        buckets_total = self.num_buckets(s)
        plan = self._plan(n_win)
        per_gpu_work = [_GpuWork() for _ in range(self.system.num_gpus)]

        for assignment in plan.assignments:
            work = per_gpu_work[assignment.gpu]
            n_eff = n * assignment.point_share
            share = assignment.bucket_share
            self._accumulate_analytic(work, n_eff, share, buckets_total)

        cpu_counters = EventCounters()
        for w in range(n_win):
            contributors = plan.for_window(w)
            owners = {a.gpu for a in contributors}
            if self.config.bucket_reduce_on_cpu:
                if self.config.multi_gpu == "ndim" and len(owners) > 1:
                    # host merges every GPU's bucket array before reducing
                    cpu_counters.cpu_padd += (len(owners) - 1) * int(
                        round(min(buckets_total, n / len(owners) + 1))
                    )
                cpu_counters.merge(cpu_bucket_reduce_counts(buckets_total))
            else:
                counts = gpu_bucket_reduce_counts(
                    buckets_total, s, self.system.concurrent_threads_per_gpu,
                    self.config.gpu_reduce,
                )
                if self.config.multi_gpu == "ndim":
                    share_counts = counts  # every GPU reduces its own array
                    if len(owners) > 1:
                        # host merges one reduced point per GPU per window
                        cpu_counters.cpu_padd += len(owners) - 1
                else:
                    share_counts = counts.scaled(1.0 / len(owners))
                for g in owners:
                    per_gpu_work[g].reduce.merge(share_counts)
                    per_gpu_work[g].reduce_threads += min(
                        buckets_total, self.system.concurrent_threads_per_gpu
                    )
        cpu_counters.cpu_pdbl += n_win * s
        cpu_counters.cpu_padd += n_win

        times = self._phase_times(
            curve, n, s, buckets_total, plan, per_gpu_work, cpu_counters
        )
        total = EventCounters()
        for work in per_gpu_work:
            total.merge(work.scatter)
            total.merge(work.sums)
            total.merge(work.reduce)
        total.merge(cpu_counters)
        return DistMsmResult(None, times.total, times, total, s, plan)

    def _estimate_precompute(self, curve, n, s, n_win):
        """Analytic path for precompute configs: one collapsed window."""
        buckets_total = self.num_buckets(s)
        plan = make_plan(1, self.system.num_gpus, "ndim" if self.config.multi_gpu == "ndim" else "bucket-split")
        per_gpu_work = [_GpuWork() for _ in range(self.system.num_gpus)]
        m = n * n_win  # flattened point stream
        for assignment in plan.assignments:
            work = per_gpu_work[assignment.gpu]
            self._accumulate_analytic(
                work, m * assignment.point_share, assignment.bucket_share, buckets_total
            )
        cpu_counters = cpu_bucket_reduce_counts(buckets_total)
        times = self._phase_times(
            curve, n, s, buckets_total, plan, per_gpu_work, cpu_counters
        )
        total = EventCounters()
        for work in per_gpu_work:
            total.merge(work.scatter)
            total.merge(work.sums)
        total.merge(cpu_counters)
        return DistMsmResult(None, times.total, times, total, s, plan)

    def _accumulate_analytic(self, work, n_eff, bucket_share, buckets_total):
        """Add one assignment's expected counts to a GPU's work summary."""
        inserts = n_eff * bucket_share
        if self.config.scatter == "hierarchical":
            counts = hierarchical_scatter_counts(
                int(round(n_eff)), buckets_total, self.config
            )
        else:
            counts = naive_scatter_counts(int(round(n_eff)), buckets_total)
        if bucket_share < 1.0:  # only a slice of buckets is kept
            counts.global_atomics = int(round(counts.global_atomics * bucket_share))
            counts.shared_atomics = int(round(counts.shared_atomics * bucket_share))
        work.scatter.merge(counts)

        assigned = max(1, int(round(buckets_total * bucket_share)))
        n_threads = threads_per_bucket(
            assigned,
            self.system.concurrent_threads_per_gpu,
            self.config.threads_per_bucket_min,
        )
        work.sums.merge(bucket_sum_counts(int(round(inserts)), buckets_total, n_threads))
        work.active_sum_threads = max(work.active_sum_threads, assigned * n_threads)
        work.buckets_touched += assigned
        work.transfer_points += assigned

    # -- shared timing -------------------------------------------------------

    def _phase_times(
        self,
        curve: CurveParams,
        n: int,
        s: int,
        buckets_total: int,
        plan: Plan,
        per_gpu_work: list,
        cpu_counters: EventCounters,
    ) -> PhaseTimes:
        spec = self.system.spec
        desc = KernelDescriptor(curve, self.config.kernel_opts)
        eff = self.config.efficiency

        scatter_ms = 0.0
        sum_ms = 0.0
        reduce_gpu_ms = 0.0
        transfer_ms = 0.0
        launch_ms = 0.0
        gpu_totals = []
        for work in per_gpu_work:
            g_scatter = scatter_time_ms(
                spec,
                work.scatter,
                buckets_total,
                min(spec.concurrent_threads, max(1, work.active_sum_threads or 1)),
                self.config.threads_per_block,
            ) / eff
            api = self.config.api
            g_sum = (
                ec_ops_time_ms(desc, "pacc", work.sums.pacc, spec, work.active_sum_threads or None, api)
                + ec_ops_time_ms(desc, "padd", work.sums.padd, spec, work.active_sum_threads or None, api)
            ) / eff
            reduce_threads = min(
                spec.concurrent_threads, work.reduce_threads or buckets_total
            )
            g_reduce = (
                ec_ops_time_ms(desc, "padd", work.reduce.padd, spec, reduce_threads, api)
                + ec_ops_time_ms(desc, "padd", work.reduce.pdbl, spec, reduce_threads, api)
            ) / eff
            point_bytes = 4 * curve.num_limbs * 4  # XYZZ coordinates
            g_transfer = host_transfer_time_ms(work.transfer_points * point_bytes, spec)
            g_launch = launch_overhead_ms(
                work.scatter.kernel_launches + work.sums.kernel_launches + work.reduce.kernel_launches,
                spec,
            )
            scatter_ms = max(scatter_ms, g_scatter)
            sum_ms = max(sum_ms, g_sum)
            reduce_gpu_ms = max(reduce_gpu_ms, g_reduce)
            transfer_ms = max(transfer_ms, g_transfer)
            launch_ms = max(launch_ms, g_launch)
            gpu_totals.append(g_scatter + g_sum + g_reduce + g_transfer + g_launch)

        cpu_rate = self.system.cpu_padd_rate()
        cpu_reduce_ms = cpu_ec_time_ms(cpu_counters.cpu_padd, 0, cpu_rate)
        window_reduce_ms = cpu_ec_time_ms(0, cpu_counters.cpu_pdbl, cpu_rate)
        # pipeline overlap: per-window reduces hide behind the GPUs' work on
        # subsequent windows.  Visible CPU time is the tail reduce plus any
        # backlog beyond the overlappable GPU time — the first window's GPU
        # fill cannot overlap (two-machine flow-shop makespan).
        if self.config.bucket_reduce_on_cpu and plan.num_windows > 1:
            k = plan.num_windows
            per_window = cpu_reduce_ms / k
            gpu_busy = max(gpu_totals) if gpu_totals else 0.0
            overlappable = gpu_busy * (k - 1) / k
            visible_cpu = per_window + max(
                0.0, cpu_reduce_ms - per_window - overlappable
            )
        else:
            visible_cpu = cpu_reduce_ms

        # inter-node coordination: one sync per DGX node boundary
        coordination_ms = NODE_SYNC_MS * self.system.nodes

        return PhaseTimes(
            scatter=scatter_ms,
            bucket_sum=sum_ms,
            bucket_reduce=reduce_gpu_ms + visible_cpu,
            window_reduce=window_reduce_ms,
            transfer=transfer_ms + coordination_ms,
            launch=launch_ms,
        )
