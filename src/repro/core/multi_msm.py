"""Cross-MSM pipelining (paper §3.2.3).

"Proof generation involves several MSM calculations and other GPU tasks,
which means that bucket-reduce can be efficiently pipelined": while the CPU
reduces MSM *i*'s buckets, the GPUs already run MSM *i+1*.  This module
models that two-resource pipeline — a classic two-machine flow shop — as
two resources on the event-driven timeline (:mod:`repro.engine`), with a
closed form for identical jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distmsm import DistMsm
from repro.curves.params import CurveParams
from repro.engine.resources import GPU_COMPUTE, HOST_CPU, Resource
from repro.engine.timeline import Task, Timeline, simulate
from repro.gpu.timing import cpu_ec_time_ms

#: the flow shop's two machines
GPU_STAGE = Resource("gpu", GPU_COMPUTE)
CPU_STAGE = Resource("cpu", HOST_CPU)


@dataclass(frozen=True)
class MsmJob:
    """One MSM of a proof: its GPU time and its (un-overlapped) CPU time."""

    label: str
    gpu_ms: float
    cpu_ms: float


@dataclass
class PipelineSchedule:
    """Outcome of scheduling a job sequence over the GPU+CPU pipeline."""

    jobs: list[MsmJob]
    pipelined_ms: float
    serial_ms: float
    timeline: list[tuple[str, float, float, float, float]]
    #: the underlying engine schedule (same spans as ``timeline``)
    engine_timeline: Timeline | None = None

    @property
    def speedup(self) -> float:
        if self.pipelined_ms == 0:
            return 1.0
        return self.serial_ms / self.pipelined_ms


def schedule_pipeline(jobs: list[MsmJob]) -> PipelineSchedule:
    """Two-stage flow shop on the engine: GPU stage then CPU stage per job.

    Each job becomes two tasks — its GPU stage on the shared GPU resource,
    its bucket-reduce on the CPU, dependent on the GPU stage.  The engine's
    FIFO resources reproduce the classic recurrence: the GPU starts job
    *i+1* as soon as job *i*'s GPU stage ends, while the CPU processes
    reduce stages in order, each starting when both its GPU stage and the
    previous CPU stage have finished.
    """
    tasks: list[Task] = []
    for i, job in enumerate(jobs):
        if job.gpu_ms < 0 or job.cpu_ms < 0:
            raise ValueError(f"negative stage time in job {job.label!r}")
        gpu_name = f"{job.label}#{i}:gpu"
        tasks.append(Task(gpu_name, GPU_STAGE, job.gpu_ms, stage=job.label))
        tasks.append(
            Task(
                f"{job.label}#{i}:cpu",
                CPU_STAGE,
                job.cpu_ms,
                deps=(gpu_name,),
                stage=job.label,
            )
        )
    engine_timeline = simulate(tasks)
    timeline: list[tuple[str, float, float, float, float]] = []
    for i, job in enumerate(jobs):
        g = engine_timeline.span(f"{job.label}#{i}:gpu")
        c = engine_timeline.span(f"{job.label}#{i}:cpu")
        timeline.append((job.label, g.start_ms, g.end_ms, c.start_ms, c.end_ms))
    pipelined = timeline[-1][4] if jobs else 0.0
    serial = sum(j.gpu_ms + j.cpu_ms for j in jobs)
    return PipelineSchedule(list(jobs), pipelined, serial, timeline, engine_timeline)


def identical_jobs_makespan(gpu_ms: float, cpu_ms: float, count: int) -> float:
    """Closed form for ``count`` identical jobs: first GPU stage, then the
    slower stage paces the pipeline, then the final CPU stage drains."""
    if count <= 0:
        return 0.0
    return gpu_ms + (count - 1) * max(gpu_ms, cpu_ms) + cpu_ms


def msm_job_from_estimate(engine: DistMsm, curve: CurveParams, n: int, label: str = "msm") -> MsmJob:
    """Split one engine estimate into GPU and raw-CPU stage times.

    The engine's own estimate already overlaps the CPU reduce *within* the
    MSM; here we want the raw split so the cross-MSM scheduler owns all the
    overlap accounting.
    """
    est = engine.estimate(curve, n)
    cpu_raw_ms = cpu_ec_time_ms(
        est.counters.cpu_padd, est.counters.cpu_pdbl, engine.system.cpu_padd_rate()
    )
    gpu_ms = (
        est.times.scatter
        + est.times.bucket_sum
        + est.times.transfer
        + est.times.launch
    )
    return MsmJob(label=label, gpu_ms=gpu_ms, cpu_ms=cpu_raw_ms)


def groth16_msm_jobs(
    engine: DistMsm, curve: CurveParams, constraints: int
) -> list[MsmJob]:
    """The MSM sequence of one Groth16 proof: A, B, C queries plus H.

    A/B/C queries run over the witness length (~constraints), the H query
    over the quotient degree (~domain size); the G2 MSM is folded into B's
    cost at 3x (Fp2 arithmetic).
    """
    if constraints <= 0:
        raise ValueError("constraint count must be positive")
    n = max(2, constraints)
    jobs = [
        msm_job_from_estimate(engine, curve, n, "A-query"),
        msm_job_from_estimate(engine, curve, n, "B-query(G1)"),
    ]
    b2 = msm_job_from_estimate(engine, curve, n, "B-query(G2)")
    jobs.append(MsmJob("B-query(G2)", b2.gpu_ms * 3, b2.cpu_ms * 3))
    jobs.append(msm_job_from_estimate(engine, curve, n, "C-query"))
    jobs.append(msm_job_from_estimate(engine, curve, n, "H-query"))
    return jobs


def proof_msm_schedule(engine: DistMsm, curve: CurveParams, constraints: int) -> PipelineSchedule:
    """Pipelined schedule for one proof's MSMs (paper's pipelining claim)."""
    return schedule_pipeline(groth16_msm_jobs(engine, curve, constraints))


def render_gantt(schedule: PipelineSchedule, width: int = 60) -> str:
    """An ASCII Gantt chart of the GPU/CPU pipeline timeline."""
    if not schedule.timeline:
        return "(empty schedule)"
    end = max(c_end for (_, _, _, _, c_end) in schedule.timeline) or 1.0

    def bar(start: float, stop: float, mark: str) -> str:
        lo = round(start / end * width)
        hi = max(lo + 1, round(stop / end * width))
        return " " * lo + mark * (hi - lo)

    label_w = max(len(lbl) for (lbl, *_rest) in schedule.timeline)
    lines = [
        f"pipeline makespan {schedule.pipelined_ms:.2f} ms "
        f"(serial {schedule.serial_ms:.2f} ms, {schedule.speedup:.2f}x)"
    ]
    for label, g0, g1, c0, c1 in schedule.timeline:
        gpu_bar = bar(g0, g1, "#")
        cpu_bar = bar(c0, c1, "~")
        merged = "".join(
            c if c != " " else cpu_bar[i] if i < len(cpu_bar) else " "
            for i, c in enumerate(gpu_bar.ljust(width))
        )
        lines.append(f"{label:>{label_w}} |{merged}")
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(" " * label_w + "  # = GPU stage, ~ = CPU bucket-reduce")
    return "\n".join(lines)
