"""Execution backends for the unified DistMSM orchestration.

`DistMsm._orchestrate` runs ONE pipeline body — plan, per-assignment
scatter + bucket-sum, per-window combine + reduce, final window reduce —
parameterised only by a :class:`Backend`:

* :class:`FunctionalBackend` executes every step against the simulated
  GPUs (bit-exact MSM result, measured event counts) — the old
  ``DistMsm.execute`` path;
* :class:`AnalyticBackend` fills the same event counters from closed-form
  expectations so paper-scale inputs evaluate instantly — the old
  ``DistMsm.estimate`` path.

Both feed identical work summaries into the shared timing model and the
event-driven timeline, which is the point: there is exactly one
orchestration to keep correct.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.core.bucket_reduce import (
    cpu_bucket_reduce,
    cpu_bucket_reduce_counts,
    cpu_window_reduce,
)
from repro.core.bucket_sum import bucket_sum, threads_per_bucket
from repro.core.planner import Assignment
from repro.core.scatter import hierarchical_scatter, naive_scatter
from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint, XyzzPoint, to_affine, xyzz_add
from repro.curves.scalar import signed_windows, unsigned_windows
from repro.gpu.counters import EventCounters
from repro.msm.precompute import cached_precompute_tables

if TYPE_CHECKING:
    from repro.core.distmsm import DistMsm, _GpuWork

#: one window's partial sums from one assignment (None on the analytic path)
Partial = "list[XyzzPoint] | None"


class Backend(Protocol):
    """What one DistMSM execution strategy must provide.

    ``prepare``/``prepare_precompute`` set up the digit stream and return
    its length; ``run_assignment`` performs (or counts) one assignment's
    scatter + bucket-sum; the remaining methods cover the per-window
    combine/reduce and the final window fold.  Functional backends return
    real points where analytic ones return ``None``.
    """

    functional: bool

    def prepare(self, s: int, n_win: int, total_windows: int) -> int: ...

    def prepare_precompute(self, s: int, n_win: int, total_windows: int) -> int: ...

    def run_assignment(
        self, work: "_GpuWork", assignment: Assignment, buckets_total: int
    ) -> list[XyzzPoint] | None: ...

    def combine_window(
        self,
        window: int,
        partials: list[tuple[Assignment, list[XyzzPoint] | None]],
        buckets_total: int,
    ) -> tuple[list[XyzzPoint] | None, int]: ...

    def cpu_reduce_window(
        self, combined: list[XyzzPoint] | None, buckets_total: int
    ) -> tuple[EventCounters, XyzzPoint | None]: ...

    def reduce_value(self, combined: list[XyzzPoint] | None) -> XyzzPoint | None: ...

    def window_reduce(
        self, window_results: list[XyzzPoint | None]
    ) -> tuple[EventCounters, AffinePoint | None]: ...

    def finalize_precompute(
        self, window_results: list[XyzzPoint | None]
    ) -> tuple[EventCounters, AffinePoint | None]: ...


class FunctionalBackend:
    """Bit-exact simulated execution against the simulated GPUs."""

    functional = True

    def __init__(
        self,
        msm: "DistMsm",
        scalars: list[int],
        points: list[AffinePoint],
        curve: CurveParams,
    ) -> None:
        self.msm = msm
        self.config = msm.config
        self.scalars = scalars
        self.points = points
        self.curve = curve
        self.s = 0
        self._flat = False
        self._digit_rows: list[list[int]] = []
        self._stream_points: list[AffinePoint] = points
        self._flat_digits: list[int] = []
        self._flat_negate: list[bool] = []
        self._m = len(scalars)
        self._stream = None  # VectorizedStream when config.vectorized

    def _vectorize(self) -> bool:
        """Resolve the config's ``vectorized`` policy for this curve.

        ``"auto"`` picks the batch kernels exactly when the base field
        takes the single-limb fast path (``p < 2^32``); see
        :class:`~repro.core.config.DistMsmConfig.vectorized`.
        """
        mode = self.config.vectorized
        if mode == "auto":
            return self.curve.p < (1 << 32)
        return bool(mode)

    def prepare(self, s: int, n_win: int, total_windows: int) -> int:
        self.s = s
        self._flat = False
        self._stream = None
        self._digit_rows = []
        if self._vectorize():
            from repro.core.vectorized import VectorizedStream

            self._stream = VectorizedStream.from_windows(
                self.scalars, self.points, self.curve, s, n_win,
                self.config.signed_digits,
            )
        elif self.config.signed_digits:
            self._digit_rows = [signed_windows(k, s, n_win) for k in self.scalars]
        else:
            self._digit_rows = [unsigned_windows(k, s, n_win) for k in self.scalars]
        self._stream_points = self.points
        self._m = len(self.scalars)
        return self._m

    def prepare_precompute(self, s: int, n_win: int, total_windows: int) -> int:
        """Collapse all windows into one flattened (digit, point) stream."""
        self.s = s
        self._flat = True
        self._stream = None
        signed = self.config.signed_digits
        tables = cached_precompute_tables(self.points, self.curve, s, total_windows)
        flat_points: list[AffinePoint] = []
        digits: list[int] = []
        negate: list[bool] = []
        for pid, k in enumerate(self.scalars):
            row = (
                signed_windows(k, s, n_win) if signed else unsigned_windows(k, s, n_win)
            )
            for w in range(total_windows):
                d = row[w]
                if d == 0:
                    continue
                flat_points.append(tables[w][pid])
                negate.append(d < 0)
                digits.append(abs(d))
        self._stream_points = flat_points
        self._flat_digits = digits
        self._flat_negate = negate
        self._m = len(digits)
        if self._vectorize():
            from repro.core.vectorized import VectorizedStream

            self._stream = VectorizedStream.from_flat(
                digits, negate, flat_points, self.curve
            )
        return self._m

    def _scalar_digit_rows(self) -> list[list[int]]:
        """Digit rows for the scalar fallback (materialized from the matrix)."""
        if not self._digit_rows and self._stream is not None:
            self._digit_rows = [
                self._stream.digit_row(pid) for pid in range(self._m)
            ]
        return self._digit_rows

    def run_assignment(
        self, work: "_GpuWork", assignment: Assignment, buckets_total: int
    ) -> list[XyzzPoint]:
        gpu = self.msm.system.gpus[assignment.gpu]
        m = self._m
        p_lo = int(round(assignment.point_lo * m))
        p_hi = int(round(assignment.point_hi * m))
        b_lo = int(round(assignment.bucket_lo * buckets_total))
        b_hi = int(round(assignment.bucket_hi * buckets_total))

        # the race detector needs per-access traces, which only the scalar
        # loops produce; everything else runs the batch kernels
        if self._stream is not None and gpu.tracer is None:
            return self._run_assignment_vectorized(
                work, assignment, buckets_total, gpu, p_lo, p_hi, b_lo, b_hi
            )

        if self._flat:
            digits = [
                d if b_lo <= d < b_hi else 0 for d in self._flat_digits[p_lo:p_hi]
            ]
            negate = self._flat_negate
        else:
            w = assignment.window
            signed = self.config.signed_digits
            rows = self._scalar_digit_rows()
            digits = []
            negate = [False] * m
            for pid in range(p_lo, p_hi):
                d = rows[pid][w]
                if signed and d < 0:
                    negate[pid] = True
                    d = -d
                digits.append(d if b_lo <= d < b_hi else 0)

        if self.config.scatter == "hierarchical":
            scat = hierarchical_scatter(gpu, digits, buckets_total, self.config)
        else:
            scat = naive_scatter(gpu, digits, buckets_total)
        work.scatter.merge(scat.counters)

        assigned_buckets = max(1, b_hi - b_lo)
        n_threads = threads_per_bucket(
            assigned_buckets,
            self.msm.system.concurrent_threads_per_gpu,
            self.config.threads_per_bucket_min,
        )
        # shift point ids back to global index space
        buckets_global = [[pid + p_lo for pid in members] for members in scat.buckets]
        sums = bucket_sum(
            buckets_global, self._stream_points, self.curve, n_threads, negate
        )
        work.sums.merge(sums.counters)
        work.active_sum_threads = max(
            work.active_sum_threads, assigned_buckets * n_threads
        )
        work.buckets_touched += assigned_buckets
        return sums.sums

    def _run_assignment_vectorized(
        self,
        work: "_GpuWork",
        assignment: Assignment,
        buckets_total: int,
        gpu,
        p_lo: int,
        p_hi: int,
        b_lo: int,
        b_hi: int,
    ) -> list[XyzzPoint]:
        """Array-path body of :meth:`run_assignment` (bit-identical)."""
        import numpy as np

        from repro.core.vectorized import vector_bucket_sum, vector_scatter

        stream = self._stream
        assert stream is not None
        if self._flat:
            col = stream.digits[p_lo:p_hi]
            negate = stream.negate[p_lo:p_hi] if stream.negate is not None else None
        else:
            raw = stream.digits[p_lo:p_hi, assignment.window].astype(np.int64)
            negate = raw < 0
            col = np.abs(raw)
        digits = np.where((col >= b_lo) & (col < b_hi), col, 0)

        scat = vector_scatter(gpu, digits, buckets_total, self.config)
        work.scatter.merge(scat.counters)

        assigned_buckets = max(1, b_hi - b_lo)
        n_threads = threads_per_bucket(
            assigned_buckets,
            self.msm.system.concurrent_threads_per_gpu,
            self.config.threads_per_bucket_min,
        )
        sums = vector_bucket_sum(stream, scat, p_lo, negate, n_threads)
        work.sums.merge(sums.counters)
        work.active_sum_threads = max(
            work.active_sum_threads, assigned_buckets * n_threads
        )
        work.buckets_touched += assigned_buckets
        return sums.sums

    def combine_window(
        self,
        window: int,
        partials: list[tuple[Assignment, list[XyzzPoint] | None]],
        buckets_total: int,
    ) -> tuple[list[XyzzPoint], int]:
        combined = [XyzzPoint.identity() for _ in range(buckets_total)]
        merge_padds = 0
        for _assignment, sums in partials:
            assert sums is not None
            for b, pt in enumerate(sums):
                if pt.is_identity:
                    continue
                if combined[b].is_identity:
                    combined[b] = pt
                else:  # ndim: same bucket fed from several point slices
                    combined[b] = xyzz_add(combined[b], pt, self.curve)
                    merge_padds += 1
        return combined, merge_padds

    def cpu_reduce_window(
        self, combined: list[XyzzPoint] | None, buckets_total: int
    ) -> tuple[EventCounters, XyzzPoint]:
        assert combined is not None
        reduced = cpu_bucket_reduce(combined, self.curve)
        return reduced.counters, reduced.result

    def reduce_value(self, combined: list[XyzzPoint] | None) -> XyzzPoint:
        """GPU-reduce configs: same math, counters charged to the GPUs."""
        assert combined is not None
        return cpu_bucket_reduce(combined, self.curve).result

    def window_reduce(
        self, window_results: list[XyzzPoint | None]
    ) -> tuple[EventCounters, AffinePoint]:
        results = [r for r in window_results if r is not None]
        wr = cpu_window_reduce(results, self.s, self.curve)
        return wr.counters, to_affine(wr.result, self.curve)

    def finalize_precompute(
        self, window_results: list[XyzzPoint | None]
    ) -> tuple[EventCounters, AffinePoint]:
        assert window_results and window_results[0] is not None
        return EventCounters(), to_affine(window_results[0], self.curve)


class AnalyticBackend:
    """Closed-form expected counts; no points, instant at paper scale."""

    functional = False

    def __init__(self, msm: "DistMsm", curve: CurveParams, n: int) -> None:
        self.msm = msm
        self.config = msm.config
        self.curve = curve
        self.n = n
        self.s = 0
        self._m = n
        self._precompute = False

    def prepare(self, s: int, n_win: int, total_windows: int) -> int:
        self.s = s
        self._m = self.n
        self._precompute = False
        return self._m

    def prepare_precompute(self, s: int, n_win: int, total_windows: int) -> int:
        self.s = s
        self._m = self.n * total_windows  # flattened point stream
        self._precompute = True
        return self._m

    def run_assignment(
        self, work: "_GpuWork", assignment: Assignment, buckets_total: int
    ) -> None:
        self.msm._accumulate_analytic(
            work,
            self._m * assignment.point_share,
            assignment.bucket_share,
            buckets_total,
        )
        return None

    def combine_window(
        self,
        window: int,
        partials: list[tuple[Assignment, list[XyzzPoint] | None]],
        buckets_total: int,
    ) -> tuple[None, int]:
        if self._precompute:
            return None, 0
        owners = {a.gpu for a, _ in partials}
        merge_padds = 0
        if self.config.multi_gpu == "ndim" and len(owners) > 1:
            if self.config.bucket_reduce_on_cpu:
                # host merges every GPU's bucket array before reducing
                merge_padds = (len(owners) - 1) * int(
                    round(min(buckets_total, self.n / len(owners) + 1))
                )
            else:
                # host merges one reduced point per GPU per window
                merge_padds = len(owners) - 1
        return None, merge_padds

    def cpu_reduce_window(
        self, combined: list[XyzzPoint] | None, buckets_total: int
    ) -> tuple[EventCounters, None]:
        return cpu_bucket_reduce_counts(buckets_total), None

    def reduce_value(self, combined: list[XyzzPoint] | None) -> None:
        return None

    def window_reduce(
        self, window_results: list[XyzzPoint | None]
    ) -> tuple[EventCounters, None]:
        counters = EventCounters()
        counters.cpu_pdbl = len(window_results) * self.s
        counters.cpu_padd = len(window_results)
        return counters, None

    def finalize_precompute(
        self, window_results: list[XyzzPoint | None]
    ) -> tuple[EventCounters, None]:
        return EventCounters(), None
