"""A Poseidon-style algebraic hash over the BN254 scalar field.

The production circuits of Table 4 are dominated by algebraic hashes
(Pedersen/Poseidon-class): long chains of an S-box permutation whose only
non-linear operation is a low-degree power — exactly what R1CS prices
cheaply.  This module implements a Poseidon-shaped sponge permutation
(width 3, ``x^5`` S-box, full/partial round split, Cauchy MDS matrix) both
natively and as a circuit gadget through
:class:`repro.zksnark.builder.CircuitBuilder`, with tests pinning the two
to each other.

**Synthetic instantiation**: round constants come from a seeded
deterministic generator and the MDS matrix from a Cauchy construction —
the standardised Grain-LFSR constants are not reproducible here.  The
algebraic structure (and hence the constraint profile: ~3 constraints per
S-box) is the real one.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.curves.params import curve_by_name
from repro.zksnark.builder import CircuitBuilder, Wire

P = curve_by_name("BN254").r

STATE_WIDTH = 3
FULL_ROUNDS = 8
PARTIAL_ROUNDS = 56


@lru_cache(maxsize=1)
def round_constants() -> tuple:
    """Deterministic per-round constants (synthetic; see module docstring)."""
    total = (FULL_ROUNDS + PARTIAL_ROUNDS) * STATE_WIDTH
    out = []
    counter = 0
    while len(out) < total:
        digest = hashlib.sha256(f"repro-poseidon-{counter}".encode()).digest()
        value = int.from_bytes(digest, "big") % P
        out.append(value)
        counter += 1
    return tuple(out)


@lru_cache(maxsize=1)
def mds_matrix() -> tuple:
    """A 3x3 Cauchy matrix — maximal-distance-separable by construction."""
    xs = (1, 2, 3)
    ys = (4, 5, 6)
    return tuple(
        tuple(pow((x + y) % P, -1, P) for y in ys) for x in xs
    )


def _sbox(x: int) -> int:
    return pow(x, 5, P)


def permute(state: list[int]) -> list[int]:
    """The Poseidon-style permutation on a width-3 state."""
    if len(state) != STATE_WIDTH:
        raise ValueError(f"state must have width {STATE_WIDTH}")
    state = [s % P for s in state]
    constants = round_constants()
    mds = mds_matrix()
    half_full = FULL_ROUNDS // 2
    idx = 0
    for rnd in range(FULL_ROUNDS + PARTIAL_ROUNDS):
        state = [(s + constants[idx + i]) % P for i, s in enumerate(state)]
        idx += STATE_WIDTH
        full = rnd < half_full or rnd >= half_full + PARTIAL_ROUNDS
        if full:
            state = [_sbox(s) for s in state]
        else:
            state[0] = _sbox(state[0])
        state = [
            sum(mds[r][c] * state[c] for c in range(STATE_WIDTH)) % P
            for r in range(STATE_WIDTH)
        ]
    return state


def hash2(a: int, b: int) -> int:
    """Two-to-one compression: absorb (a, b), squeeze one element."""
    return permute([0, a % P, b % P])[0]


def hash_chain(seed: int, length: int) -> int:
    """Iterated hashing — the Zcash-Sprout workload shape."""
    acc = seed % P
    for i in range(length):
        acc = hash2(acc, i)
    return acc


# -- circuit gadget ------------------------------------------------------------


def sbox_gadget(builder: CircuitBuilder, x: Wire) -> Wire:
    """``x^5`` in 3 constraints (x2, x4, x5)."""
    x2 = x * x
    x4 = x2 * x2
    return x4 * x


def permutation_gadget(builder: CircuitBuilder, state: list[Wire]) -> list[Wire]:
    """The permutation over wires; mirrors :func:`permute` exactly.

    Constant additions and the MDS layer are linear — free in R1CS; only
    the S-boxes cost constraints: ``3 * (8 full rounds) + 56 partial = 80``
    S-boxes, 3 constraints each.
    """
    if len(state) != STATE_WIDTH:
        raise ValueError(f"state must have width {STATE_WIDTH}")
    constants = round_constants()
    mds = mds_matrix()
    half_full = FULL_ROUNDS // 2
    idx = 0
    for rnd in range(FULL_ROUNDS + PARTIAL_ROUNDS):
        state = [s + constants[idx + i] for i, s in enumerate(state)]
        idx += STATE_WIDTH
        full = rnd < half_full or rnd >= half_full + PARTIAL_ROUNDS
        if full:
            state = [sbox_gadget(builder, s) for s in state]
        else:
            state = [sbox_gadget(builder, state[0])] + state[1:]
        state = [
            sum((state[c] * mds[r][c] for c in range(1, STATE_WIDTH)),
                state[0] * mds[r][0])
            for r in range(STATE_WIDTH)
        ]
    return state


def hash2_gadget(builder: CircuitBuilder, a: Wire, b: Wire) -> Wire:
    """Circuit counterpart of :func:`hash2`."""
    state = [builder.constant(0), a, b]
    return permutation_gadget(builder, state)[0]


#: R1CS constraints of one two-to-one hash (the workload sizing figure)
CONSTRAINTS_PER_HASH = 3 * (3 * FULL_ROUNDS + PARTIAL_ROUNDS)


def poseidon_chain_circuit(length: int, seed: int = 1):
    """A hash-chain circuit using the real algebraic hash.

    The production-faithful counterpart of
    :func:`repro.zksnark.workloads.hash_chain_circuit`: ~240 constraints per
    chain link, the density the paper's Zcash-Sprout instance exhibits.
    """
    import random

    rng = random.Random(seed)
    builder = CircuitBuilder()
    start = rng.randrange(P)
    acc = builder.private(start)
    for i in range(length):
        acc = hash2_gadget(builder, acc, builder.constant(i))
    builder.public_output(acc)
    r1cs, assignment = builder.synthesize()
    expected = hash_chain(start, length)
    if r1cs.public_inputs(assignment) != [expected]:
        raise AssertionError("gadget and native hash disagree")
    return r1cs, assignment
