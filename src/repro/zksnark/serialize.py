"""Compact proof serialization — the paper's "proof sizes under 1 KB".

Table 4's discussion quotes 127-byte proofs with 1.2 ms verification.  A
Groth16 proof is two G1 points and one G2 point; with point compression
(x-coordinate plus one sign bit, folded into the spare top bits of the
32-byte field encoding) that is ``32 + 32 + 64 = 128`` bytes — matching
the paper's figure to within its rounding.

Decompression recovers ``y`` from the curve equation, so a tampered byte
either fails decompression outright or yields a different (and
non-verifying) point.
"""

from __future__ import annotations

from repro.curves.params import curve_by_name
from repro.curves.point import AffinePoint
from repro.fields.prime_field import PrimeField
from repro.zksnark.groth16 import Proof
from repro.zksnark.pairing import B2, FQ2, is_on_curve_fq

BN254 = curve_by_name("BN254")
_FIELD = PrimeField(BN254.p)

FLAG_INFINITY = 0x40
FLAG_Y_ODD = 0x80
#: total bytes of a compressed proof: G1 + G1 + G2
PROOF_BYTES = 32 + 32 + 64


class SerializationError(ValueError):
    """Raised when bytes do not decode to valid curve points."""


def compress_g1(pt: AffinePoint) -> bytes:
    """32-byte big-endian x with sign/infinity flags in the top bits."""
    if pt.infinity:
        return bytes([FLAG_INFINITY]) + bytes(31)
    flags = FLAG_Y_ODD if pt.y & 1 else 0
    raw = pt.x.to_bytes(32, "big")
    if raw[0] & 0xC0:
        raise SerializationError("field element collides with flag bits")
    return bytes([raw[0] | flags]) + raw[1:]


def decompress_g1(data: bytes) -> AffinePoint:
    """Recover a G1 point: solve ``y^2 = x^3 + 3`` and pick by sign bit."""
    if len(data) != 32:
        raise SerializationError(f"G1 encoding must be 32 bytes, got {len(data)}")
    flags = data[0] & 0xC0
    if flags & FLAG_INFINITY:
        if any(data[1:]) or data[0] != FLAG_INFINITY:
            raise SerializationError("malformed infinity encoding")
        return AffinePoint.identity()
    x = int.from_bytes(bytes([data[0] & 0x3F]) + data[1:], "big")
    if x >= BN254.p:
        raise SerializationError("x-coordinate out of field range")
    rhs = (x * x * x + BN254.b) % BN254.p
    y = _FIELD.sqrt(rhs)
    if y is None:
        raise SerializationError("x-coordinate is not on the curve")
    if (y & 1) != bool(flags & FLAG_Y_ODD):
        y = BN254.p - y
    return AffinePoint(x, y)


def compress_g2(pt: tuple) -> bytes:
    """64-byte encoding: both Fp2 limbs of x, flags on the first byte.

    The sign bit stores the parity of the ``a`` limb of ``y``; when that
    limb is zero the parity of the ``b`` limb disambiguates (flagged via
    the second byte's top bit, which is always free).
    """
    if pt is None:
        return bytes([FLAG_INFINITY]) + bytes(63)
    x, y = pt
    parity_source = y.coeffs[0] if y.coeffs[0] else y.coeffs[1]
    flags = FLAG_Y_ODD if parity_source & 1 else 0
    raw_a = x.coeffs[0].to_bytes(32, "big")
    raw_b = x.coeffs[1].to_bytes(32, "big")
    if raw_a[0] & 0xC0:
        raise SerializationError("field element collides with flag bits")
    return bytes([raw_a[0] | flags]) + raw_a[1:] + raw_b


def decompress_g2(data: bytes) -> tuple:
    """Recover a G2 point on the twist ``y^2 = x^3 + b2``."""
    if len(data) != 64:
        raise SerializationError(f"G2 encoding must be 64 bytes, got {len(data)}")
    flags = data[0] & 0xC0
    if flags & FLAG_INFINITY:
        if any(data[1:]) or data[0] != FLAG_INFINITY:
            raise SerializationError("malformed infinity encoding")
        return None
    xa = int.from_bytes(bytes([data[0] & 0x3F]) + data[1:32], "big")
    xb = int.from_bytes(data[32:], "big")
    if xa >= BN254.p or xb >= BN254.p:
        raise SerializationError("x-coordinate out of field range")
    x = FQ2([xa, xb])
    rhs = x * x * x + B2
    y = _fq2_sqrt(rhs)
    if y is None:
        raise SerializationError("x-coordinate is not on the twist")
    parity_source = y.coeffs[0] if y.coeffs[0] else y.coeffs[1]
    if (parity_source & 1) != bool(flags & FLAG_Y_ODD):
        y = -y
    return (x, y)


def _fq2_sqrt(value: FQ2) -> FQ2 | None:
    """Square root in Fp2 via the norm trick (p = 3 mod 4)."""
    a, b = value.coeffs
    p = BN254.p
    if b == 0:
        root = _FIELD.sqrt(a)
        if root is not None:
            return FQ2([root, 0])
        # sqrt(a) = sqrt(-a) * sqrt(-1); -1 is a non-residue (p = 3 mod 4)
        root = _FIELD.sqrt((-a) % p)
        if root is None:
            return None
        return FQ2([0, root])
    norm = (a * a + b * b) % p
    n_root = _FIELD.sqrt(norm)
    if n_root is None:
        return None
    for sign in (1, -1):
        half = (a + sign * n_root) * pow(2, -1, p) % p
        c = _FIELD.sqrt(half)
        if c is None or c == 0:
            continue
        d = b * pow(2 * c, -1, p) % p
        cand = FQ2([c, d])
        if cand * cand == value:
            return cand
    return None


def serialize_proof(proof: Proof) -> bytes:
    """Compress a proof to :data:`PROOF_BYTES` bytes (A || B || C)."""
    return compress_g1(proof.a) + compress_g2(proof.b) + compress_g1(proof.c)


def deserialize_proof(data: bytes) -> Proof:
    """Decode and validate a compressed proof."""
    if len(data) != PROOF_BYTES:
        raise SerializationError(
            f"proof must be {PROOF_BYTES} bytes, got {len(data)}"
        )
    a = decompress_g1(data[:32])
    b = decompress_g2(data[32:96])
    c = decompress_g1(data[96:])
    if not a.infinity and not BN254.is_on_curve(a.x, a.y):
        raise SerializationError("proof.A is off-curve")
    if b is not None and not is_on_curve_fq(b, B2):
        raise SerializationError("proof.B is off the twist")
    return Proof(a=a, b=b, c=c)
