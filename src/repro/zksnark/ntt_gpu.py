"""GPU NTT model: the proof pipeline's second kernel (§5.1.1).

The paper accelerates the NTT on a single GPU (898x over the CPU) but
leaves it out of the multi-GPU redesign; Table 4's post-acceleration stage
distribution (NTT becomes dominant) follows directly.  This module gives
the repository an executable GPU-style NTT:

* a *functional* simulation that runs the radix-2 butterfly network in the
  stage-parallel order a GPU kernel uses — all ``n/2`` butterflies of a
  stage in parallel, a barrier between stages — validating against the
  serial NTT and counting butterflies / syncs / traffic;
* an *analytic* timing model built on the same throughput substrate as the
  EC kernels, used by the pipeline when modelled NTT times are requested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.occupancy import occupancy_for
from repro.gpu.specs import KERNEL_EFFICIENCY, GpuSpec, NVIDIA_A100
from repro.gpu.timing import occupancy_efficiency
from repro.zksnark.ntt import NttDomain, _bit_reverse_permute


@dataclass
class NttGpuCounters:
    """Work tallies of one stage-parallel NTT execution."""

    butterflies: int = 0
    stages: int = 0
    global_syncs: int = 0
    device_bytes: int = 0
    kernel_launches: int = 0


def simulate_gpu_ntt(
    domain: NttDomain,
    values: list[int],
    threads_per_block: int = 256,
) -> tuple[list[int], NttGpuCounters]:
    """Execute the NTT in GPU stage order; returns (result, counters).

    Stages with butterfly span inside one block need only block barriers;
    wider spans force a grid-wide synchronisation (kernel relaunch) — the
    structure real GPU NTTs (and the paper's Sppark NTT) have.
    """
    n = domain.size
    if len(values) != n:
        raise ValueError(f"expected {n} values, got {len(values)}")
    p = domain.modulus
    counters = NttGpuCounters()
    a = _bit_reverse_permute([v % p for v in values])

    length = 2
    while length <= n:
        w_step = pow(domain.omega, n // length, p)
        half = length // 2
        # one parallel stage: n/2 independent butterflies
        for start in range(0, n, length):
            w = 1
            for k in range(start, start + half):
                even, odd = a[k], a[k + half] * w % p
                a[k] = (even + odd) % p
                a[k + half] = (even - odd) % p
                w = w * w_step % p
        counters.butterflies += n // 2
        counters.stages += 1
        counters.device_bytes += 2 * n * 32  # read + write the vector
        if half >= threads_per_block:
            counters.global_syncs += 1
            counters.kernel_launches += 1
        length *= 2
    if counters.kernel_launches == 0:
        counters.kernel_launches = 1
    return a, counters


def ntt_counts(log_n: int, threads_per_block: int = 256) -> NttGpuCounters:
    """Closed-form counters for a size-``2^log_n`` NTT."""
    n = 1 << log_n
    counters = NttGpuCounters()
    counters.stages = log_n
    counters.butterflies = log_n * (n // 2)
    counters.device_bytes = log_n * 2 * n * 32
    wide_stages = max(0, log_n - int(math.log2(threads_per_block)))
    counters.global_syncs = wide_stages
    counters.kernel_launches = max(1, wide_stages)
    return counters


#: word operations of one butterfly over an 8-limb scalar field: one
#: Montgomery multiplication (2N^2 + N muls plus adds) and two additions.
def _butterfly_word_ops(limbs: int = 8) -> float:
    muls = 2 * limbs * limbs + limbs
    adds = 4 * limbs * limbs + 2 * limbs  # reduction adds + the two sums
    return muls + adds / 2.0


#: registers of the butterfly kernel: ~4 live scalars plus addressing
NTT_REGS_PER_THREAD = 40


def ntt_time_ms(log_n: int, spec: GpuSpec = NVIDIA_A100, limbs: int = 8) -> float:
    """Modelled single-GPU NTT time (the paper's Sppark-style kernel)."""
    counters = ntt_counts(log_n)
    occ = occupancy_for(spec, NTT_REGS_PER_THREAD)
    eff = occupancy_efficiency(occ.occupancy)
    rate = spec.int32_tops * 1e12 * eff * KERNEL_EFFICIENCY
    compute_s = counters.butterflies * _butterfly_word_ops(limbs) / rate
    mem_s = counters.device_bytes / (spec.mem_bw_gbps * 1e9)
    launch_s = counters.kernel_launches * spec.kernel_launch_us * 1e-6
    return (max(compute_s, mem_s) + launch_s) * 1e3


def cpu_ntt_time_ms(log_n: int, limbs: int = 8) -> float:
    """Modelled CPU NTT time, anchored to the paper's 898x GPU speedup."""
    from repro.analysis import paper_data

    return ntt_time_ms(log_n, limbs=limbs) * paper_data.GPU_SPEEDUP_NTT
