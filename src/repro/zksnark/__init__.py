"""zkSNARK substrate: everything proof generation needs, for real.

The paper's end-to-end evaluation (Table 4) runs Groth16 provers; this
package implements the full stack from scratch so the MSM engines have a
genuine consumer:

* :mod:`repro.zksnark.ntt` — number-theoretic transforms over the curves'
  scalar fields (the evaluation's second-largest kernel).
* :mod:`repro.zksnark.r1cs` — rank-1 constraint systems.
* :mod:`repro.zksnark.qap` — R1CS -> quadratic arithmetic program.
* :mod:`repro.zksnark.pairing` — the BN254 optimal-ate pairing
  (Fp2/Fp6/Fp12 tower, Miller loop, final exponentiation).
* :mod:`repro.zksnark.groth16` — setup / prove / verify; the prover's
  commitments run through :mod:`repro.msm`.
* :mod:`repro.zksnark.workloads` — synthetic circuits standing in for the
  paper's Zcash-Sprout / Otti-SGD / ZEN-LeNet instances.
* :mod:`repro.zksnark.pipeline` — the end-to-end proving-time model
  reproducing Table 4.

Beyond the paper's immediate needs: :mod:`repro.zksnark.pairing_bls`
(BLS12-381 ate pairing, second backend for Groth16),
:mod:`repro.zksnark.builder` (a circuit DSL with correct-by-construction
witnesses), :mod:`repro.zksnark.poseidon` (an algebraic hash, native and
as a gadget), :mod:`repro.zksnark.serialize` (the 128-byte compressed
proof encoding), and :mod:`repro.zksnark.ntt_gpu` (a GPU NTT model).
"""

from repro.zksnark.backend import PairingBackend, backend_by_name
from repro.zksnark.builder import CircuitBuilder
from repro.zksnark.groth16 import Groth16, Proof
from repro.zksnark.ntt import NttDomain
from repro.zksnark.r1cs import R1cs
from repro.zksnark.serialize import deserialize_proof, serialize_proof

__all__ = [
    "Groth16",
    "Proof",
    "NttDomain",
    "R1cs",
    "CircuitBuilder",
    "PairingBackend",
    "backend_by_name",
    "serialize_proof",
    "deserialize_proof",
]
