"""Number-theoretic transforms over pairing-curve scalar fields.

The scalar fields of SNARK curves are chosen with high 2-adicity (BN254:
``r - 1 = 2^28 * odd``) precisely so polynomial arithmetic can run through
radix-2 NTTs.  This module provides forward/inverse transforms, coset
evaluation (needed to divide by the vanishing polynomial in QAP), and
NTT-based polynomial multiplication.
"""

from __future__ import annotations

from functools import lru_cache


def two_adicity(modulus: int) -> int:
    """Largest ``k`` with ``2^k`` dividing ``modulus - 1``."""
    if modulus < 3:
        raise ValueError("modulus must be an odd prime >= 3")
    m = modulus - 1
    k = 0
    while m % 2 == 0:
        m //= 2
        k += 1
    return k


@lru_cache(maxsize=None)
def _max_order_root(modulus: int) -> tuple[int, int]:
    """A 2^k-th primitive root of unity with maximal k, and that k.

    Take any quadratic non-residue ``z``; then ``z^((r-1)/2^k)`` has order
    exactly ``2^k`` because ``z^((r-1)/2) = -1``.
    """
    k = two_adicity(modulus)
    z = 2
    while pow(z, (modulus - 1) // 2, modulus) != modulus - 1:
        z += 1
    return pow(z, (modulus - 1) >> k, modulus), k


def _bit_reverse_permute(values: list[int]) -> list[int]:
    n = len(values)
    bits = n.bit_length() - 1
    out = [0] * n
    for i, v in enumerate(values):
        out[int(format(i, f"0{bits}b")[::-1], 2) if bits else 0] = v
    return out


class NttDomain:
    """A power-of-two evaluation domain in ``GF(modulus)``.

    >>> dom = NttDomain(17, 4)   # 17 has 2-adicity 4
    >>> dom.intt(dom.ntt([1, 2, 3, 4]))
    [1, 2, 3, 4]
    """

    def __init__(self, modulus: int, size: int):
        if size <= 0 or size & (size - 1):
            raise ValueError(f"domain size must be a power of two, got {size}")
        root, max_k = _max_order_root(modulus)
        log_size = size.bit_length() - 1
        if log_size > max_k:
            raise ValueError(
                f"field 2-adicity {max_k} cannot host a size-{size} domain"
            )
        self.modulus = modulus
        self.size = size
        self.omega = pow(root, 1 << (max_k - log_size), modulus)
        self.omega_inv = pow(self.omega, -1, modulus)
        self.size_inv = pow(size, -1, modulus)

    @property
    def elements(self) -> list[int]:
        """The domain points ``omega^0 .. omega^(n-1)``."""
        out = [1]
        for _ in range(self.size - 1):
            out.append(out[-1] * self.omega % self.modulus)
        return out

    def _transform(self, values: list[int], omega: int) -> list[int]:
        n = self.size
        if len(values) != n:
            raise ValueError(f"expected {n} values, got {len(values)}")
        p = self.modulus
        a = _bit_reverse_permute([v % p for v in values])
        length = 2
        while length <= n:
            w_step = pow(omega, n // length, p)
            for start in range(0, n, length):
                w = 1
                half = length // 2
                for k in range(start, start + half):
                    even, odd = a[k], a[k + half] * w % p
                    a[k] = (even + odd) % p
                    a[k + half] = (even - odd) % p
                    w = w * w_step % p
            length *= 2
        return a

    def ntt(self, coefficients: list[int]) -> list[int]:
        """Evaluate the polynomial (coefficient form) on the domain."""
        return self._transform(coefficients, self.omega)

    def intt(self, evaluations: list[int]) -> list[int]:
        """Interpolate domain evaluations back to coefficients."""
        out = self._transform(evaluations, self.omega_inv)
        return [v * self.size_inv % self.modulus for v in out]

    # -- coset operations (for dividing by the vanishing polynomial) ------

    def coset_ntt(self, coefficients: list[int], shift: int) -> list[int]:
        """Evaluate on the coset ``shift * omega^i``."""
        p = self.modulus
        scaled = []
        power = 1
        for c in coefficients:
            scaled.append(c * power % p)
            power = power * shift % p
        return self.ntt(scaled)

    def coset_intt(self, evaluations: list[int], shift: int) -> list[int]:
        """Interpolate from coset evaluations back to coefficients."""
        p = self.modulus
        coeffs = self.intt(evaluations)
        shift_inv = pow(shift, -1, p)
        out = []
        power = 1
        for c in coeffs:
            out.append(c * power % p)
            power = power * shift_inv % p
        return out

    def vanishing_on_coset(self, shift: int) -> int:
        """``Z(shift * omega^i) = shift^n - 1`` — constant on the coset."""
        return (pow(shift, self.size, self.modulus) - 1) % self.modulus


def poly_mul(a: list[int], b: list[int], modulus: int) -> list[int]:
    """Polynomial product via NTT (falls back to schoolbook for tiny sizes)."""
    if not a or not b:
        return []
    out_len = len(a) + len(b) - 1
    if out_len <= 8:
        out = [0] * out_len
        for i, x in enumerate(a):
            for j, y in enumerate(b):
                out[i + j] = (out[i + j] + x * y) % modulus
        return out
    size = 1 << (out_len - 1).bit_length()
    dom = NttDomain(modulus, size)
    fa = dom.ntt(a + [0] * (size - len(a)))
    fb = dom.ntt(b + [0] * (size - len(b)))
    prod = [x * y % modulus for x, y in zip(fa, fb)]
    return dom.intt(prod)[:out_len]


def poly_eval(coefficients: list[int], x: int, modulus: int) -> int:
    """Horner evaluation of a coefficient-form polynomial."""
    acc = 0
    for c in reversed(coefficients):
        acc = (acc * x + c) % modulus
    return acc
