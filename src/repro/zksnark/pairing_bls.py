"""The BLS12-381 ate pairing — the second pairing family the paper's
curves span (BLS12-377/381 provers use exactly this construction).

Tower: ``Fp2 = Fp[i]/(i^2 + 1)`` and the flat
``Fp12 = Fp[w]/(w^12 - 2 w^6 + 2)`` — equivalent to the usual
``Fp6 = Fp2[v]/(v^3 - (1 + i))``, ``Fp12 = Fp6[w]/(w^2 - v)`` because
``w^6 = 1 + i`` satisfies ``(w^6 - 1)^2 = -1``.

The BLS ate pairing is *simpler* than BN's optimal ate: the Miller loop
runs over the curve parameter ``|u|`` with no Frobenius tail steps.  Final
exponentiation is the plain ``(p^12 - 1) / r`` power (slow, unambiguous),
shared through :func:`final_exponentiate_bls`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.curves.params import BLS12_381_U, curve_by_name
from repro.zksnark.pairing import (
    FQP,
    is_on_curve_fq,
    point_add,
    point_double,
    point_mul,
    point_neg,
)

_BLS = curve_by_name("BLS12-381")
P_BLS = _BLS.p
R_BLS = _BLS.r

#: the BLS ate loop count is |u| for the curve parameter u (u < 0 here)
ATE_LOOP_COUNT_BLS = -BLS12_381_U
LOG_ATE_LOOP_COUNT_BLS = ATE_LOOP_COUNT_BLS.bit_length() - 2


class FQ2B(FQP):
    degree = 2
    modulus_coeffs = (1, 0)  # i^2 = -1
    prime = P_BLS


class FQ12B(FQP):
    degree = 12
    modulus_coeffs = (2, 0, 0, 0, 0, 0, -2, 0, 0, 0, 0, 0)  # w^12 = 2w^6 - 2
    prime = P_BLS


#: twisted-curve coefficient: b2 = 4 * (1 + i)
B2_BLS = FQ2B([4, 4])
B12_BLS = FQ12B.from_int(4)

G1_GENERATOR_BLS = (_BLS.gx, _BLS.gy)

G2_GENERATOR_BLS = (
    FQ2B(
        [
            0x024AA2B2F08F0A91260805272DC51051C6E47AD4FA403B02B4510B647AE3D1770BAC0326A805BBEFD48056C8C121BDB8,
            0x13E02B6052719F607DACD3A088274F65596BD0D09920B61AB5DA61BBDC7F5049334CF11213945D57E5AC7D055D042B7E,
        ]
    ),
    FQ2B(
        [
            0x0CE5D527727D6E118CC9CDC6DA2E351AADFD9BAA8CBDD3A76D429A695160D12C923AC9CC3BACA289E193548608B82801,
            0x0606C4A02EA734CC32ACD2B02BC28B99CB3E287E85A763AF267492AB572E99AB3F370D275CEC1DA1AAA9075FF05F79BE,
        ]
    ),
)


def twist_bls(pt):
    """Map a G2 point over Fp2 onto the Fp12 curve (``i -> w^6 - 1``)."""
    if pt is None:
        return None
    x, y = pt
    xc = [x.coeffs[0] - x.coeffs[1], x.coeffs[1]]
    yc = [y.coeffs[0] - y.coeffs[1], y.coeffs[1]]
    nx = FQ12B([xc[0], 0, 0, 0, 0, 0, xc[1], 0, 0, 0, 0, 0])
    ny = FQ12B([yc[0], 0, 0, 0, 0, 0, yc[1], 0, 0, 0, 0, 0])
    w = FQ12B([0, 1] + [0] * 10)
    return (nx / w**2, ny / w**3)


def cast_g1_to_fq12_bls(pt):
    if pt is None:
        return None
    x, y = pt
    return (FQ12B.from_int(x), FQ12B.from_int(y))


def _linefunc(p1, p2, t):
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = t
    if x1 != x2:
        m = (y2 - y1) / (x2 - x1)
        return m * (xt - x1) - (yt - y1)
    if y1 == y2:
        m = (3 * x1 * x1) / (2 * y1)
        return m * (xt - x1) - (yt - y1)
    return xt - x1


def miller_loop_bls(q, p_pt) -> FQ12B:
    """The BLS ate Miller loop (no Frobenius tail), sans final exp."""
    if q is None or p_pt is None:
        return FQ12B.one()
    r_pt = q
    f = FQ12B.one()
    for i in range(LOG_ATE_LOOP_COUNT_BLS, -1, -1):
        f = f * f * _linefunc(r_pt, r_pt, p_pt)
        r_pt = point_double(r_pt)
        if ATE_LOOP_COUNT_BLS & (1 << i):
            f = f * _linefunc(r_pt, q, p_pt)
            r_pt = point_add(r_pt, q)
    return f


@lru_cache(maxsize=1)
def _final_exponent_bls() -> int:
    return (P_BLS**12 - 1) // R_BLS


def final_exponentiate_bls(f: FQ12B) -> FQ12B:
    return f ** _final_exponent_bls()


def pairing_bls(q2, p1) -> FQ12B:
    """``e(P1, Q2)`` on BLS12-381; inputs as in the BN254 module."""
    _check_inputs(q2, p1)
    f = miller_loop_bls(twist_bls(q2), cast_g1_to_fq12_bls(p1))
    return final_exponentiate_bls(f)


def pairing_check_bls(pairs: list) -> bool:
    """Whether ``prod e(P_i, Q_i) == 1`` with one final exponentiation."""
    acc = FQ12B.one()
    for p1, q2 in pairs:
        _check_inputs(q2, p1)
        acc = acc * miller_loop_bls(twist_bls(q2), cast_g1_to_fq12_bls(p1))
    return final_exponentiate_bls(acc) == FQ12B.one()


def _check_inputs(q2, p1) -> None:
    if p1 is not None:
        x, y = p1
        if (y * y - x * x * x - _BLS.b) % P_BLS:
            raise ValueError("G1 point is not on BLS12-381")
    if q2 is not None and not is_on_curve_fq(q2, B2_BLS):
        raise ValueError("G2 point is not on the BLS12-381 twist")


def g2_mul_bls(pt, k: int):
    return point_mul(pt, k)


def g2_neg_bls(pt):
    return point_neg(pt)
