"""Groth16: setup, prove, verify — all real, over two pairing families.

The prover's commitments run through this library's own MSM
(:func:`repro.msm.pippenger.pippenger_msm` for G1, the generic-group
Pippenger for G2), making the zkSNARK pipeline a genuine consumer of the
paper's kernel: Table 4's workloads execute this code at reduced scale, and
proofs verify through the from-scratch pairings (BN254 optimal-ate or
BLS12-381 ate, selected by the backend).

Protocol (Groth, EUROCRYPT'16), with the usual CRS layout:

* proving key: ``[alpha]1, [beta]1, [beta]2, [delta]1, [delta]2``, per-variable
  ``[A_i(tau)]1``, ``[B_i(tau)]1``, ``[B_i(tau)]2``, private-variable
  ``[(beta A_i + alpha B_i + C_i)(tau)/delta]1`` and powers
  ``[tau^i Z(tau)/delta]1``;
* verification key: ``[alpha]1, [beta]2, [gamma]2, [delta]2`` and the public
  ``IC`` points;
* verification equation:
  ``e(A, B) = e(alpha, beta) e(IC(x), gamma) e(C, delta)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.curves.params import CurveParams
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    affine_neg,
    pmul,
    to_affine,
    xyzz_add,
)
from repro.msm.generic import GroupOps, pippenger_generic
from repro.msm.pippenger import pippenger_msm
from repro.zksnark.backend import PairingBackend, backend_by_name
from repro.zksnark.qap import Qap
from repro.zksnark.r1cs import R1cs


def g1_add(a: AffinePoint, b: AffinePoint, curve: CurveParams) -> AffinePoint:
    return to_affine(
        xyzz_add(XyzzPoint.from_affine(a), XyzzPoint.from_affine(b), curve), curve
    )


def g1_mul(a: AffinePoint, k: int, curve: CurveParams) -> AffinePoint:
    return pmul(a, k % curve.r, curve)


def _to_pairing_g1(pt: AffinePoint):
    return None if pt.infinity else (pt.x, pt.y)


@dataclass(frozen=True)
class Proof:
    """A Groth16 proof: two G1 points and one G2 point (~128 bytes)."""

    a: AffinePoint
    b: tuple  # G2 point over Fp2
    c: AffinePoint


@dataclass
class ProvingKey:
    alpha_g1: AffinePoint
    beta_g1: AffinePoint
    beta_g2: tuple
    delta_g1: AffinePoint
    delta_g2: tuple
    a_query: list  # [A_i(tau)]_1 per variable
    b_g1_query: list
    b_g2_query: list
    l_query: list  # private-variable query
    h_query: list  # [tau^i Z(tau) / delta]_1


@dataclass
class VerifyingKey:
    alpha_g1: AffinePoint
    beta_g2: tuple
    gamma_g2: tuple
    delta_g2: tuple
    ic: list  # public-input commitment points


class Groth16:
    """The Groth16 proving system for one R1CS instance.

    ``backend`` selects the pairing family: "BN254" (default) or
    "BLS12-381"; the R1CS must be built over that curve's scalar field.
    """

    def __init__(self, r1cs: R1cs, backend: str | PairingBackend = "BN254"):
        self.backend = (
            backend if isinstance(backend, PairingBackend) else backend_by_name(backend)
        )
        self.curve = self.backend.curve
        if r1cs.modulus != self.curve.r:
            raise ValueError(
                f"R1CS modulus must be the {self.backend.name} scalar field"
            )
        self.r1cs = r1cs
        self.qap = Qap.from_r1cs(r1cs)

    # -- trusted setup -----------------------------------------------------

    def setup(self, rng: random.Random | None = None) -> tuple[ProvingKey, VerifyingKey]:
        """Run the (simulated) trusted setup; returns (pk, vk)."""
        rng = rng or random.Random(0xA11CE)
        curve = self.curve
        r = curve.r
        alpha, beta, gamma, delta, tau = (rng.randrange(1, r) for _ in range(5))
        gamma_inv = pow(gamma, -1, r)
        delta_inv = pow(delta, -1, r)

        g1 = AffinePoint(curve.gx, curve.gy)
        g2 = self.backend.g2_generator

        a_polys, b_polys, c_polys = self.qap.variable_polynomials()
        a_at_tau = [_eval(poly, tau, r) for poly in a_polys]
        b_at_tau = [_eval(poly, tau, r) for poly in b_polys]
        c_at_tau = [_eval(poly, tau, r) for poly in c_polys]

        num_pub = self.r1cs.num_public
        ic, l_query = [], []
        for i in range(self.r1cs.num_variables):
            combined = (beta * a_at_tau[i] + alpha * b_at_tau[i] + c_at_tau[i]) % r
            if i <= num_pub:
                ic.append(g1_mul(g1, combined * gamma_inv % r, curve))
            else:
                l_query.append(g1_mul(g1, combined * delta_inv % r, curve))

        n = self.qap.domain.size
        z_tau = (pow(tau, n, r) - 1) % r
        h_query = []
        power = 1
        for _ in range(n - 1):
            h_query.append(g1_mul(g1, power * z_tau % r * delta_inv % r, curve))
            power = power * tau % r

        pk = ProvingKey(
            alpha_g1=g1_mul(g1, alpha, curve),
            beta_g1=g1_mul(g1, beta, curve),
            beta_g2=self.backend.g2_mul(g2, beta),
            delta_g1=g1_mul(g1, delta, curve),
            delta_g2=self.backend.g2_mul(g2, delta),
            a_query=[g1_mul(g1, v, curve) for v in a_at_tau],
            b_g1_query=[g1_mul(g1, v, curve) for v in b_at_tau],
            b_g2_query=[self.backend.g2_mul(g2, v) for v in b_at_tau],
            l_query=l_query,
            h_query=h_query,
        )
        vk = VerifyingKey(
            alpha_g1=pk.alpha_g1,
            beta_g2=pk.beta_g2,
            gamma_g2=self.backend.g2_mul(g2, gamma),
            delta_g2=pk.delta_g2,
            ic=ic,
        )
        return pk, vk

    # -- proving ----------------------------------------------------------------

    def prove(
        self,
        pk: ProvingKey,
        assignment: list[int],
        rng: random.Random | None = None,
    ) -> Proof:
        """Produce a proof for a satisfying assignment.

        The three G1 commitments are multi-scalar multiplications — the
        workload the whole library is about; the B-query's G2 MSM runs
        through the generic-group Pippenger.
        """
        if not self.r1cs.is_satisfied(assignment):
            raise ValueError("assignment does not satisfy the constraint system")
        rng = rng or random.Random(0xB11DED)
        curve = self.curve
        r_mod = curve.r
        r_blind = rng.randrange(r_mod)
        s_blind = rng.randrange(r_mod)

        h_coeffs = self.qap.quotient_coefficients(assignment)

        a_sum = pippenger_msm(list(assignment), pk.a_query, curve)
        proof_a = g1_add(
            g1_add(pk.alpha_g1, a_sum, curve),
            g1_mul(pk.delta_g1, r_blind, curve),
            curve,
        )

        b_g1_sum = pippenger_msm(list(assignment), pk.b_g1_query, curve)
        proof_b_g1 = g1_add(
            g1_add(pk.beta_g1, b_g1_sum, curve),
            g1_mul(pk.delta_g1, s_blind, curve),
            curve,
        )

        g2_ops = GroupOps(
            add=self.backend.g2_add, neg=self.backend.g2_neg, identity=None
        )
        b_g2_sum = pippenger_generic(
            list(assignment), pk.b_g2_query, g2_ops, curve.scalar_bits
        )
        proof_b = self.backend.g2_add(
            self.backend.g2_add(pk.beta_g2, b_g2_sum),
            self.backend.g2_mul(pk.delta_g2, s_blind),
        )

        private = list(assignment[self.r1cs.num_public + 1 :])
        c_acc = pippenger_msm(private, pk.l_query, curve)
        if h_coeffs:
            h_part = pippenger_msm(
                [c % r_mod for c in h_coeffs], pk.h_query[: len(h_coeffs)], curve
            )
            c_acc = g1_add(c_acc, h_part, curve)
        c_acc = g1_add(c_acc, g1_mul(proof_a, s_blind, curve), curve)
        c_acc = g1_add(c_acc, g1_mul(proof_b_g1, r_blind, curve), curve)
        c_acc = g1_add(
            c_acc,
            affine_neg(g1_mul(pk.delta_g1, r_blind * s_blind % r_mod, curve), curve),
            curve,
        )
        return Proof(a=proof_a, b=proof_b, c=c_acc)

    # -- verification ------------------------------------------------------------

    def verify(self, vk: VerifyingKey, proof: Proof, public_inputs: list[int]) -> bool:
        """Check a proof against the public inputs (four pairings)."""
        if len(public_inputs) != self.r1cs.num_public:
            raise ValueError(
                f"expected {self.r1cs.num_public} public inputs, "
                f"got {len(public_inputs)}"
            )
        curve = self.curve
        acc = vk.ic[0]
        for value, pt in zip(public_inputs, vk.ic[1:]):
            acc = g1_add(acc, g1_mul(pt, value, curve), curve)
        return self.backend.pairing_check(
            [
                (_to_pairing_g1(affine_neg(proof.a, curve)), proof.b),
                (_to_pairing_g1(vk.alpha_g1), vk.beta_g2),
                (_to_pairing_g1(acc), vk.gamma_g2),
                (_to_pairing_g1(proof.c), vk.delta_g2),
            ]
        )


def _eval(coefficients: list[int], x: int, modulus: int) -> int:
    acc = 0
    for c in reversed(coefficients):
        acc = (acc * x + c) % modulus
    return acc
