"""The BN254 optimal-ate pairing, implemented from scratch.

Tower: ``Fp2 = Fp[i]/(i^2 + 1)`` and ``Fp12 = Fp[w]/(w^12 - 18 w^6 + 82)``
(equivalent to the usual ``Fp12 = Fp6[w]/(w^2 - v)`` with
``v^3 = 9 + i``: setting ``w^6 = 9 + i`` gives exactly that minimal
polynomial).  G2 points over Fp2 are mapped into Fp12 via the sextic twist,
and the Miller loop accumulates line-function values at the G1 point.

The final exponentiation is the plain ``(p^12 - 1) / r`` power — slow but
unambiguous; :func:`pairing_check` batches several pairs under a single
final exponentiation, which is what Groth16 verification needs.

Verified properties (see tests): non-degeneracy, bilinearity
``e(aP, bQ) = e(P, Q)^(ab)``, and inverse behaviour ``e(-P, Q) e(P, Q) = 1``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.curves.params import BN254_T, curve_by_name

_BN254 = curve_by_name("BN254")
P = _BN254.p
R = _BN254.r

#: optimal-ate loop count: 6t + 2 for the BN parameter t
ATE_LOOP_COUNT = 6 * BN254_T + 2
LOG_ATE_LOOP_COUNT = ATE_LOOP_COUNT.bit_length() - 2  # 63

FQ2_MODULUS_COEFFS = (1, 0)  # i^2 = -1
FQ12_MODULUS_COEFFS = (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0)  # w^12 = 18w^6 - 82


class FQP:
    """An element of ``Fp[x] / (x^degree + modulus poly)``.

    Coefficients are ints mod ``prime``; subclasses fix the base prime and
    the modulus polynomial (BN254 here; BLS12-381 in
    :mod:`repro.zksnark.pairing_bls`).
    """

    degree = 0
    modulus_coeffs: tuple = ()
    prime = P

    __slots__ = ("coeffs",)

    def __init__(self, coeffs):
        if len(coeffs) != self.degree:
            raise ValueError(
                f"{type(self).__name__} needs {self.degree} coefficients, "
                f"got {len(coeffs)}"
            )
        self.coeffs = tuple(int(c) % self.prime for c in coeffs)

    # construction helpers ------------------------------------------------

    @classmethod
    def one(cls):
        return cls([1] + [0] * (cls.degree - 1))

    @classmethod
    def zero(cls):
        return cls([0] * cls.degree)

    @classmethod
    def from_int(cls, value: int):
        return cls([value] + [0] * (cls.degree - 1))

    # arithmetic ---------------------------------------------------------

    def _coerce(self, other):
        if isinstance(other, int):
            return type(self).from_int(other)
        if isinstance(other, type(self)):
            return other
        return None

    def __add__(self, other):
        other = self._coerce(other)
        if other is None:
            return NotImplemented
        return type(self)([a + b for a, b in zip(self.coeffs, other.coeffs)])

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is None:
            return NotImplemented
        return type(self)([a - b for a, b in zip(self.coeffs, other.coeffs)])

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is None:
            return NotImplemented
        return other - self

    def __neg__(self):
        return type(self)([-a for a in self.coeffs])

    def __mul__(self, other):
        if isinstance(other, int):
            return type(self)([c * other for c in self.coeffs])
        if not isinstance(other, type(self)):
            return NotImplemented
        deg = self.degree
        buf = [0] * (2 * deg - 1)
        for i, a in enumerate(self.coeffs):
            if not a:
                continue
            for j, b in enumerate(other.coeffs):
                buf[i + j] += a * b
        # reduce by the modulus polynomial
        for top_idx in range(len(buf) - 1, deg - 1, -1):
            top = buf[top_idx]
            if not top:
                continue
            offset = top_idx - deg
            for i, m in enumerate(self.modulus_coeffs):
                if m:
                    buf[offset + i] -= top * m
            buf[top_idx] = 0
        return type(self)([c % self.prime for c in buf[:deg]])

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is None:
            return NotImplemented
        return self * other.inverse()

    def __pow__(self, exponent: int):
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = type(self).one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def inverse(self):
        """Extended-Euclid inverse in the polynomial quotient ring."""
        deg = self.degree
        p = self.prime
        lm, hm = [1] + [0] * deg, [0] * (deg + 1)
        low = list(self.coeffs) + [0]
        high = list(self.modulus_coeffs) + [1]
        while _poly_deg(low):
            r = _poly_rounded_div(high, low, p)
            r += [0] * (deg + 1 - len(r))
            nm, new = list(hm), list(high)
            for i in range(deg + 1):
                for j in range(deg + 1 - i):
                    nm[i + j] -= lm[i] * r[j]
                    new[i + j] -= low[i] * r[j]
            nm = [x % p for x in nm]
            new = [x % p for x in new]
            lm, low, hm, high = nm, new, lm, low
        if low[0] == 0:
            raise ZeroDivisionError("element is not invertible")
        inv_low0 = pow(low[0], -1, p)
        return type(self)([c * inv_low0 % p for c in lm[:deg]])

    # comparisons ----------------------------------------------------------

    def __eq__(self, other):
        other = self._coerce(other)
        if other is None:
            return NotImplemented
        return self.coeffs == other.coeffs

    def __hash__(self):
        return hash((type(self).__name__, self.coeffs))

    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def __repr__(self):
        return f"{type(self).__name__}{self.coeffs}"


def _poly_deg(coeffs: list) -> int:
    d = len(coeffs) - 1
    while d and coeffs[d] == 0:
        d -= 1
    return d


def _poly_rounded_div(a: list, b: list, prime: int = P) -> list:
    deg_a, deg_b = _poly_deg(a), _poly_deg(b)
    temp = list(a)
    out = [0] * len(a)
    b_lead_inv = pow(b[deg_b], -1, prime)
    for i in range(deg_a - deg_b, -1, -1):
        out[i] = (out[i] + temp[deg_b + i] * b_lead_inv) % prime
        for c in range(deg_b + 1):
            temp[c + i] = (temp[c + i] - out[i] * b[c]) % prime
    return out[: _poly_deg(out) + 1]


class FQ2(FQP):
    degree = 2
    modulus_coeffs = FQ2_MODULUS_COEFFS


class FQ12(FQP):
    degree = 12
    modulus_coeffs = FQ12_MODULUS_COEFFS


# -- generic affine curve arithmetic over any of the fields ------------------
# points are (x, y) tuples of field elements; None is the point at infinity


def is_on_curve_fq(pt, b) -> bool:
    if pt is None:
        return True
    x, y = pt
    return y * y - x * x * x == b


def point_double(pt):
    if pt is None:
        return None
    x, y = pt
    if y.is_zero() if hasattr(y, "is_zero") else y == 0:
        return None
    m = (3 * x * x) / (2 * y)
    nx = m * m - 2 * x
    ny = m * (x - nx) - y
    return (nx, ny)


def point_add(p1, p2):
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if x1 == x2:
        if y1 == y2:
            return point_double(p1)
        return None
    m = (y2 - y1) / (x2 - x1)
    nx = m * m - x1 - x2
    ny = m * (x1 - nx) - y1
    return (nx, ny)


def point_neg(pt):
    if pt is None:
        return None
    x, y = pt
    return (x, -y)


def point_mul(pt, k: int):
    if k < 0:
        return point_mul(point_neg(pt), -k)
    result = None
    addend = pt
    while k:
        if k & 1:
            result = point_add(result, addend)
        addend = point_double(addend)
        k >>= 1
    return result


# -- group generators ---------------------------------------------------------

#: twisted-curve coefficient: b2 = 3 / (9 + i)
B2 = FQ2([3, 0]) / FQ2([9, 1])
B12 = FQ12.from_int(3)

G2_GENERATOR = (
    FQ2(
        [
            10857046999023057135944570762232829481370756359578518086990519993285655852781,
            11559732032986387107991004021392285783925812861821192530917403151452391805634,
        ]
    ),
    FQ2(
        [
            8495653923123431417604973247489272438418190587263600148770280649306958101930,
            4082367875863433681332203403145435568316851327593401208105741076214120093531,
        ]
    ),
)

G1_GENERATOR = (_BN254.gx, _BN254.gy)


def twist(pt):
    """Map a G2 point (over Fp2) onto the curve over Fp12.

    Uses the field isomorphism sending ``i`` to ``w^6 - 9``, then scales by
    ``w^2`` / ``w^3`` to land on the untwisted curve.
    """
    if pt is None:
        return None
    x, y = pt
    xc = [x.coeffs[0] - 9 * x.coeffs[1], x.coeffs[1]]
    yc = [y.coeffs[0] - 9 * y.coeffs[1], y.coeffs[1]]
    nx = FQ12([xc[0], 0, 0, 0, 0, 0, xc[1], 0, 0, 0, 0, 0])
    ny = FQ12([yc[0], 0, 0, 0, 0, 0, yc[1], 0, 0, 0, 0, 0])
    w = FQ12([0, 1] + [0] * 10)
    return (nx * w**2, ny * w**3)


def cast_g1_to_fq12(pt):
    """Embed a G1 point (int coordinates) into the Fp12 curve."""
    if pt is None:
        return None
    x, y = pt
    return (FQ12.from_int(x), FQ12.from_int(y))


# -- Miller loop ----------------------------------------------------------------


def _linefunc(p1, p2, t):
    """Evaluate the line through p1, p2 at point t (all over Fp12)."""
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = t
    if x1 != x2:
        m = (y2 - y1) / (x2 - x1)
        return m * (xt - x1) - (yt - y1)
    if y1 == y2:
        m = (3 * x1 * x1) / (2 * y1)
        return m * (xt - x1) - (yt - y1)
    return xt - x1


def miller_loop(q, p_pt) -> FQ12:
    """The optimal-ate Miller loop, *without* final exponentiation.

    ``q`` is a twisted G2 point over Fp12; ``p_pt`` a G1 point over Fp12.
    """
    if q is None or p_pt is None:
        return FQ12.one()
    r_pt = q
    f = FQ12.one()
    for i in range(LOG_ATE_LOOP_COUNT, -1, -1):
        f = f * f * _linefunc(r_pt, r_pt, p_pt)
        r_pt = point_double(r_pt)
        if ATE_LOOP_COUNT & (1 << i):
            f = f * _linefunc(r_pt, q, p_pt)
            r_pt = point_add(r_pt, q)
    # Frobenius endomorphism applications
    q1 = (q[0] ** P, q[1] ** P)
    nq2 = (q1[0] ** P, -(q1[1] ** P))
    f = f * _linefunc(r_pt, q1, p_pt)
    r_pt = point_add(r_pt, q1)
    f = f * _linefunc(r_pt, nq2, p_pt)
    return f


@lru_cache(maxsize=1)
def _final_exponent() -> int:
    return (P**12 - 1) // R


def final_exponentiate(f: FQ12) -> FQ12:
    """Raise a Miller-loop output to ``(p^12 - 1) / r``."""
    return f ** _final_exponent()


def pairing(q2, p1) -> FQ12:
    """The full pairing ``e(P1, Q2)`` for G1 point ``p1`` and G2 point ``q2``.

    ``p1`` is an (x, y) int tuple or None; ``q2`` an (FQ2, FQ2) tuple or None.
    """
    _check_inputs(q2, p1)
    f = miller_loop(twist(q2), cast_g1_to_fq12(p1))
    return final_exponentiate(f)


def pairing_check(pairs: list) -> bool:
    """Whether ``prod e(P_i, Q_i) == 1`` — one shared final exponentiation.

    ``pairs`` is a list of (G1 point, G2 point) tuples.  This is the 4-pair
    product Groth16 verification evaluates.
    """
    acc = FQ12.one()
    for p1, q2 in pairs:
        _check_inputs(q2, p1)
        acc = acc * miller_loop(twist(q2), cast_g1_to_fq12(p1))
    return final_exponentiate(acc) == FQ12.one()


def _check_inputs(q2, p1) -> None:
    if p1 is not None:
        x, y = p1
        if (y * y - x * x * x - 3) % P:
            raise ValueError("G1 point is not on the curve")
    if q2 is not None and not is_on_curve_fq(q2, B2):
        raise ValueError("G2 point is not on the twisted curve")


def g2_mul(pt, k: int):
    """Scalar multiplication in G2 (affine, over Fp2)."""
    return point_mul(pt, k)


def g2_add(p1, p2):
    return point_add(p1, p2)
