"""Size accounting for proofs, keys and witnesses.

Succinctness is the paper's motivating property: proofs stay ~128 bytes and
verification keys small, while the *proving* key grows linearly with the
circuit — the asymmetry that makes proof generation (and hence MSM) the
bottleneck worth 32 GPUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.curves.params import CurveParams, curve_by_name
from repro.zksnark.r1cs import R1cs
from repro.zksnark.serialize import PROOF_BYTES


def g1_bytes(curve: CurveParams, compressed: bool = True) -> int:
    """Encoded size of a G1 point."""
    coord = math.ceil(curve.field_bits / 8)
    return coord if compressed else 2 * coord


def g2_bytes(curve: CurveParams, compressed: bool = True) -> int:
    """Encoded size of a G2 point (coordinates over Fp2)."""
    return 2 * g1_bytes(curve, compressed)


@dataclass(frozen=True)
class CrsSizes:
    """Byte sizes of one Groth16 instantiation's artifacts."""

    proving_key_bytes: int
    verifying_key_bytes: int
    proof_bytes: int
    witness_bytes: int

    @property
    def proving_key_mb(self) -> float:
        return self.proving_key_bytes / (1 << 20)


def groth16_sizes(r1cs: R1cs, curve: CurveParams | None = None, compressed: bool = True) -> CrsSizes:
    """Model the artifact sizes for an R1CS instance.

    Proving key: 3 G1 queries + 1 G2 query over the variables, the private
    L-query, the H powers (domain size - 1), plus the five fixed elements.
    Verification key: 4 fixed elements + one IC point per public input.
    """
    curve = curve or curve_by_name("BN254")
    g1 = g1_bytes(curve, compressed)
    g2 = g2_bytes(curve, compressed)
    num_vars = r1cs.num_variables
    domain = 1 << max(1, (max(1, r1cs.num_constraints) - 1).bit_length())

    pk = (
        3 * g1 + 2 * g2  # alpha1, beta1, delta1, beta2, delta2
        + 2 * num_vars * g1  # A and B(G1) queries
        + num_vars * g2  # B(G2) query
        + (num_vars - r1cs.num_public - 1) * g1  # L query
        + (domain - 1) * g1  # H query
    )
    vk = g1 + 3 * g2 + (r1cs.num_public + 1) * g1
    scalar_bytes = math.ceil(curve.scalar_bits / 8)
    return CrsSizes(
        proving_key_bytes=pk,
        verifying_key_bytes=vk,
        proof_bytes=PROOF_BYTES,
        witness_bytes=num_vars * scalar_bytes,
    )


def paper_scale_proving_key_mb(constraints: int, variables: int | None = None) -> float:
    """Proving-key size at production scale (e.g. ZEN-LeNet: ~18 GB)."""
    curve = curve_by_name("BN254")
    variables = variables if variables is not None else constraints
    g1 = g1_bytes(curve)
    g2 = g2_bytes(curve)
    domain = 1 << max(1, (constraints - 1).bit_length())
    total = 3 * variables * g1 + variables * g2 + domain * g1
    return total / (1 << 20)
