"""Synthetic R1CS workloads standing in for the paper's Table 4 circuits.

The paper proves production circuits — Zcash-Sprout (2.59M constraints),
Otti-SGD (6.97M) and ZEN-LeNet (77.7M) — whose constraint systems are not
available here.  Each generator below produces a circuit with the same
structural flavour at a configurable size, together with a satisfying
witness, so the identical Groth16 code path runs for real; the full-scale
timing comes from :mod:`repro.zksnark.pipeline`'s model parameterised by the
paper's constraint counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.curves.params import curve_by_name
from repro.zksnark.r1cs import R1cs

BN254_R = curve_by_name("BN254").r


@dataclass(frozen=True)
class WorkloadSpec:
    """Metadata tying a generator to its Table 4 row."""

    name: str
    paper_constraints: int
    paper_libsnark_seconds: float
    description: str


ZCASH_SPROUT = WorkloadSpec(
    name="Zcash-Sprout",
    paper_constraints=2_585_747,
    paper_libsnark_seconds=145.8,
    description="shielded-transaction circuit: long hash chains",
)
OTTI_SGD = WorkloadSpec(
    name="Otti-SGD",
    paper_constraints=6_968_254,
    paper_libsnark_seconds=291.0,
    description="verified optimisation: SGD step certification",
)
ZEN_LENET = WorkloadSpec(
    name="Zen_acc-LeNet",
    paper_constraints=77_689_757,
    paper_libsnark_seconds=5036.7,
    description="verified quantised CNN inference",
)

ALL_WORKLOADS = (ZCASH_SPROUT, OTTI_SGD, ZEN_LENET)


def hash_chain_circuit(length: int, seed: int = 1) -> tuple[R1cs, list[int]]:
    """A Zcash-Sprout-flavoured circuit: an iterated quadratic hash chain.

    ``x_{i+1} = x_i^2 + x_i + c_i`` — one multiplication constraint per
    round, mirroring the algebraic-hash chains that dominate shielded
    transactions.  Public: the chain output.  Private: the seed.
    """
    rng = random.Random(seed)
    p = BN254_R
    r1cs = R1cs(modulus=p)
    out_var = r1cs.declare_public(1)[0]
    x_var = r1cs.new_variable()

    x_val = rng.randrange(p)
    values = {0: 1, x_var: x_val}
    current_var, current_val = x_var, x_val
    for _ in range(length):
        c = rng.randrange(p)
        sq_var = r1cs.new_variable()
        sq_val = current_val * current_val % p
        values[sq_var] = sq_val
        r1cs.enforce_product(current_var, current_var, sq_var)
        next_var = r1cs.new_variable()
        next_val = (sq_val + current_val + c) % p
        values[next_var] = next_val
        r1cs.enforce_linear({sq_var: 1, current_var: 1, 0: c}, next_var)
        current_var, current_val = next_var, next_val
    r1cs.add_constraint({current_var: 1}, {0: 1}, {out_var: 1})
    values[out_var] = current_val

    assignment = [values.get(i, 0) for i in range(r1cs.num_variables)]
    return r1cs, assignment


def sgd_step_circuit(features: int, samples: int, seed: int = 2) -> tuple[R1cs, list[int]]:
    """An Otti-SGD-flavoured circuit: certify one least-squares SGD step.

    For each sample: prediction = <w, x>, residual = prediction - y, and the
    gradient contributions residual * x_j — inner products and element-wise
    multiplications, the constraint mix of verified optimisation.
    Public: the updated weights.  Private: data and old weights.
    """
    rng = random.Random(seed)
    p = BN254_R
    r1cs = R1cs(modulus=p)
    new_w_vars = r1cs.declare_public(features)

    w_vars = [r1cs.new_variable() for _ in range(features)]
    w_vals = [rng.randrange(100) for _ in range(features)]
    values = {0: 1}
    for var, val in zip(w_vars, w_vals):
        values[var] = val

    grad_vals = [0] * features
    grad_terms: list[dict] = [dict() for _ in range(features)]
    for _ in range(samples):
        x_vars = [r1cs.new_variable() for _ in range(features)]
        x_vals = [rng.randrange(100) for _ in range(features)]
        for var, val in zip(x_vars, x_vals):
            values[var] = val
        y_val = rng.randrange(100)

        # prediction = <w, x> via chained product accumulators
        pred_val = 0
        pred_terms = {}
        for w_var, w_val, x_var, x_val in zip(w_vars, w_vals, x_vars, x_vals):
            prod_var = r1cs.new_variable()
            prod_val = w_val * x_val % p
            values[prod_var] = prod_val
            r1cs.enforce_product(w_var, x_var, prod_var)
            pred_terms[prod_var] = 1
            pred_val = (pred_val + prod_val) % p
        resid_var = r1cs.new_variable()
        resid_val = (pred_val - y_val) % p
        values[resid_var] = resid_val
        r1cs.enforce_linear({**pred_terms, 0: -y_val}, resid_var)

        # gradient contributions residual * x_j
        for j, (x_var, x_val) in enumerate(zip(x_vars, x_vals)):
            g_var = r1cs.new_variable()
            g_val = resid_val * x_val % p
            values[g_var] = g_val
            r1cs.enforce_product(resid_var, x_var, g_var)
            grad_terms[j][g_var] = 1
            grad_vals[j] = (grad_vals[j] + g_val) % p

    # w' = w - grad (learning rate folded to 1 for constraint purposes)
    for j in range(features):
        new_val = (w_vals[j] - grad_vals[j]) % p
        values[new_w_vars[j]] = new_val
        terms = {w_vars[j]: 1}
        for g_var in grad_terms[j]:
            terms[g_var] = p - 1
        r1cs.enforce_linear(terms, new_w_vars[j])

    assignment = [values.get(i, 0) for i in range(r1cs.num_variables)]
    return r1cs, assignment


def lenet_style_circuit(
    channels: int = 2, width: int = 4, kernel: int = 2, seed: int = 3
) -> tuple[R1cs, list[int]]:
    """A ZEN-LeNet-flavoured circuit: a quantised convolution layer.

    Each output pixel is an inner product of a kernel window with the input
    feature map followed by a (squared) activation — the multiply-accumulate
    pattern of verified CNN inference.  Public: the output feature map sum.
    """
    rng = random.Random(seed)
    p = BN254_R
    r1cs = R1cs(modulus=p)
    out_var = r1cs.declare_public(1)[0]
    values = {0: 1}

    input_vars = {}
    for c in range(channels):
        for i in range(width):
            for j in range(width):
                var = r1cs.new_variable()
                values[var] = rng.randrange(256)  # quantised activations
                input_vars[(c, i, j)] = var
    kernel_vars = {}
    for c in range(channels):
        for ki in range(kernel):
            for kj in range(kernel):
                var = r1cs.new_variable()
                values[var] = rng.randrange(256)
                kernel_vars[(c, ki, kj)] = var

    out_sum_val = 0
    out_terms = {}
    out_dim = width - kernel + 1
    for i in range(out_dim):
        for j in range(out_dim):
            acc_val = 0
            acc_terms = {}
            for c in range(channels):
                for ki in range(kernel):
                    for kj in range(kernel):
                        x_var = input_vars[(c, i + ki, j + kj)]
                        k_var = kernel_vars[(c, ki, kj)]
                        prod_var = r1cs.new_variable()
                        prod_val = values[x_var] * values[k_var] % p
                        values[prod_var] = prod_val
                        r1cs.enforce_product(x_var, k_var, prod_var)
                        acc_terms[prod_var] = 1
                        acc_val = (acc_val + prod_val) % p
            pixel_var = r1cs.new_variable()
            values[pixel_var] = acc_val
            r1cs.enforce_linear(acc_terms, pixel_var)
            # squared activation (field-friendly non-linearity)
            act_var = r1cs.new_variable()
            act_val = acc_val * acc_val % p
            values[act_var] = act_val
            r1cs.enforce_product(pixel_var, pixel_var, act_var)
            out_terms[act_var] = 1
            out_sum_val = (out_sum_val + act_val) % p

    r1cs.enforce_linear(out_terms, out_var)
    values[out_var] = out_sum_val
    assignment = [values.get(i, 0) for i in range(r1cs.num_variables)]
    return r1cs, assignment


def workload_circuit(spec: WorkloadSpec, scale: int = 16) -> tuple[R1cs, list[int]]:
    """A reduced-scale instance of a Table 4 workload."""
    if spec.name == ZCASH_SPROUT.name:
        return hash_chain_circuit(length=scale)
    if spec.name == OTTI_SGD.name:
        return sgd_step_circuit(features=max(2, scale // 4), samples=2)
    if spec.name == ZEN_LENET.name:
        return lenet_style_circuit(channels=2, width=max(3, scale // 4))
    raise KeyError(f"unknown workload {spec.name!r}")
