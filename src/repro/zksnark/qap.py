"""R1CS -> QAP (quadratic arithmetic program) over an NTT domain.

Constraint ``k`` is attached to domain point ``omega^k``; per-variable
polynomials ``A_i, B_i, C_i`` interpolate the columns of the constraint
matrices.  A witness satisfies the R1CS iff
``A(x) * B(x) - C(x)`` is divisible by the vanishing polynomial
``Z(x) = x^n - 1``, and the quotient ``h(x)`` is exactly what the Groth16
prover commits to.  The division runs on a multiplicative coset where ``Z``
is a non-zero constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.zksnark.ntt import NttDomain
from repro.zksnark.r1cs import R1cs

#: coset shift used for the Z-division (any non-root of unity works)
COSET_SHIFT = 5


@dataclass
class Qap:
    """An R1CS instance lifted to polynomial form on an NTT domain."""

    r1cs: R1cs
    domain: NttDomain

    @classmethod
    def from_r1cs(cls, r1cs: R1cs) -> "Qap":
        size = max(2, 1 << max(1, (max(1, r1cs.num_constraints) - 1).bit_length()))
        return cls(r1cs, NttDomain(r1cs.modulus, size))

    # -- witness-combined evaluations ------------------------------------

    def combined_evaluations(self, assignment: list[int]) -> tuple[list[int], list[int], list[int]]:
        """Domain evaluations of ``A(x)``, ``B(x)``, ``C(x)`` for a witness.

        ``A(omega^k) = <A_k, z>`` by construction — no interpolation needed.
        """
        n = self.domain.size
        a_evals = [0] * n
        b_evals = [0] * n
        c_evals = [0] * n
        for k, constraint in enumerate(self.r1cs.constraints):
            a_evals[k] = self.r1cs.row_dot(constraint.a, assignment)
            b_evals[k] = self.r1cs.row_dot(constraint.b, assignment)
            c_evals[k] = self.r1cs.row_dot(constraint.c, assignment)
        return a_evals, b_evals, c_evals

    def quotient_coefficients(self, assignment: list[int]) -> list[int]:
        """Coefficients of ``h(x) = (A*B - C) / Z`` (degree < n - 1).

        Interpolate A, B, C to coefficient form, re-evaluate on a coset,
        divide by the (constant) coset value of ``Z``, interpolate back.
        Raises ``ValueError`` if the witness does not satisfy the R1CS
        (the quotient's top coefficients would not vanish).
        """
        p = self.domain.modulus
        a_evals, b_evals, c_evals = self.combined_evaluations(assignment)
        a_coeff = self.domain.intt(a_evals)
        b_coeff = self.domain.intt(b_evals)
        c_coeff = self.domain.intt(c_evals)

        shift = COSET_SHIFT
        a_coset = self.domain.coset_ntt(a_coeff, shift)
        b_coset = self.domain.coset_ntt(b_coeff, shift)
        c_coset = self.domain.coset_ntt(c_coeff, shift)
        z_value = self.domain.vanishing_on_coset(shift)
        z_inv = pow(z_value, -1, p)

        h_coset = [
            (a * b - c) % p * z_inv % p
            for a, b, c in zip(a_coset, b_coset, c_coset)
        ]
        h_coeff = self.domain.coset_intt(h_coset, shift)
        # deg(A*B - C) <= 2n-2, so deg(h) <= n-2: for a satisfying witness
        # the top coefficient of the n recovered values must vanish
        if h_coeff[-1] != 0:
            raise ValueError("witness does not satisfy the constraint system")
        return h_coeff[:-1]

    # -- per-variable polynomials (setup side) ------------------------------

    def variable_polynomials(self) -> tuple[list, list, list]:
        """Coefficient-form ``A_i``, ``B_i``, ``C_i`` for every variable.

        O(variables x n log n); only the trusted setup runs this.
        """
        n = self.domain.size
        num_vars = self.r1cs.num_variables
        a_cols = [[0] * n for _ in range(num_vars)]
        b_cols = [[0] * n for _ in range(num_vars)]
        c_cols = [[0] * n for _ in range(num_vars)]
        for k, constraint in enumerate(self.r1cs.constraints):
            for var, coeff in constraint.a.items():
                a_cols[var][k] = coeff
            for var, coeff in constraint.b.items():
                b_cols[var][k] = coeff
            for var, coeff in constraint.c.items():
                c_cols[var][k] = coeff
        a_polys = [self.domain.intt(col) for col in a_cols]
        b_polys = [self.domain.intt(col) for col in b_cols]
        c_polys = [self.domain.intt(col) for col in c_cols]
        return a_polys, b_polys, c_polys
