"""End-to-end proving time model (paper Table 4 and §5.1.1).

The paper decomposes CPU proof generation as 78.2% MSM, 17.9% NTT, 3.9%
"others", with single-GPU accelerations of 871x (MSM) and 898x (NTT) while
"others" stays on the CPU.  DistMSM parallelises the MSM share over 8 GPUs
(the NTT remains single-GPU, per the paper's setup), so the end-to-end
speedup is an Amdahl's-law consequence — about 25.5x.

Our model: calibrate the libsnark per-constraint cost from the paper's CPU
column, split by the published shares, accelerate the MSM share with *our*
DistMSM estimate for the workload's MSM sizes, and the NTT share by the
published factor.  Small instances of the same workloads run for real
through :mod:`repro.zksnark.groth16`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis import paper_data
from repro.core.distmsm import DistMsm
from repro.curves.params import curve_by_name
from repro.engine.resources import GPU_COMPUTE, HOST_CPU, Resource
from repro.engine.timeline import Task, Timeline, simulate
from repro.gpu.cluster import MultiGpuSystem
from repro.zksnark.workloads import ALL_WORKLOADS, WorkloadSpec

BN254 = curve_by_name("BN254")

#: libsnark cost per constraint (seconds), fit from Table 4's CPU column
LIBSNARK_SECONDS_PER_CONSTRAINT = 56.4e-6

#: G1 MSM instances per Groth16 proof, in multiples of the constraint count:
#: A-query, B-query, L-query, H-query (the G2 MSM is folded into the MSM
#: share the same way the paper's 78.2% figure does)
MSM_INSTANCES_PER_PROOF = 4


@dataclass(frozen=True)
class EndToEndEstimate:
    """Modelled end-to-end proving times for one workload."""

    workload: str
    constraints: int
    cpu_seconds: float
    distmsm_seconds: float
    msm_seconds: float
    ntt_seconds: float
    others_seconds: float
    #: the engine schedule of the proof's stages; its makespan (in ms) is
    #: ``distmsm_seconds * 1e3``
    timeline: Timeline | None = None

    @property
    def speedup(self) -> float:
        return self.cpu_seconds / self.distmsm_seconds


def proof_stage_timeline(
    msm_seconds: float, ntt_seconds: float, others_seconds: float
) -> Timeline:
    """The proof's stage sequence as an engine schedule (times in seconds).

    Groth16 stages are dependent (MSM inputs come from the NTT-extended
    witness; "others" finalises the proof), so this is a serial chain over
    the accelerator and host resources — but as engine tasks, so the same
    totals now carry utilization and critical-path structure.
    """
    gpu = Resource("gpu-cluster", GPU_COMPUTE)
    cpu = Resource("cpu", HOST_CPU)
    return simulate(
        [
            Task("msm", gpu, msm_seconds * 1e3, stage="msm"),
            Task("ntt", gpu, ntt_seconds * 1e3, deps=("msm",), stage="ntt"),
            Task("others", cpu, others_seconds * 1e3, deps=("ntt",), stage="others"),
        ]
    )


def libsnark_cpu_seconds(constraints: int) -> float:
    """Modelled libsnark proving time (per-constraint cost calibrated to
    the paper's CPU column)."""
    if constraints <= 0:
        raise ValueError("constraint count must be positive")
    return constraints * LIBSNARK_SECONDS_PER_CONSTRAINT


#: NTT passes per Groth16 proof over the QAP domain: three interpolations,
#: three coset evaluations, one coset interpolation (see repro.zksnark.qap)
NTT_PASSES_PER_PROOF = 7


def estimate_end_to_end(
    spec: WorkloadSpec,
    num_gpus: int = 8,
    cpu_seconds: float | None = None,
    ntt_model: str = "paper",
) -> EndToEndEstimate:
    """Model one Table 4 row.

    ``cpu_seconds`` defaults to the calibrated per-constraint model; pass
    the paper's measured value to reproduce the table exactly on the CPU
    side.  ``ntt_model`` selects the NTT time source: "paper" divides the
    CPU share by the published 898x factor; "modeled" uses our own GPU NTT
    timing model (:mod:`repro.zksnark.ntt_gpu`).
    """
    if ntt_model not in ("paper", "modeled"):
        raise ValueError(f"unknown ntt_model {ntt_model!r}")
    constraints = spec.paper_constraints
    cpu = cpu_seconds if cpu_seconds is not None else libsnark_cpu_seconds(constraints)
    shares = paper_data.STAGE_SHARES_CPU
    cpu_msm = cpu * shares["msm"]
    cpu_ntt = cpu * shares["ntt"]
    cpu_others = cpu * shares["others"]

    # MSM share on the multi-GPU system: our DistMSM estimate for the
    # proof's MSM instances at the workload's size
    system = MultiGpuSystem(num_gpus)
    engine = DistMsm(system)
    msm_n = 1 << max(8, math.ceil(math.log2(constraints)))
    one_msm_ms = engine.estimate(BN254, msm_n).time_ms
    gpu_msm = MSM_INSTANCES_PER_PROOF * one_msm_ms / 1e3

    # NTT: single-GPU implementation
    if ntt_model == "modeled":
        from repro.zksnark.ntt_gpu import ntt_time_ms

        log_domain = max(8, math.ceil(math.log2(constraints)))
        gpu_ntt = NTT_PASSES_PER_PROOF * ntt_time_ms(log_domain) / 1e3
    else:
        gpu_ntt = cpu_ntt / paper_data.GPU_SPEEDUP_NTT

    # the serial stage chain on the engine: makespan == gpu_msm + gpu_ntt +
    # cpu_others (same associativity — the spans accumulate left to right)
    timeline = proof_stage_timeline(gpu_msm, gpu_ntt, cpu_others)
    total = timeline.total_ms / 1e3
    return EndToEndEstimate(
        workload=spec.name,
        constraints=constraints,
        cpu_seconds=cpu,
        distmsm_seconds=total,
        msm_seconds=gpu_msm,
        ntt_seconds=gpu_ntt,
        others_seconds=cpu_others,
        timeline=timeline,
    )


@dataclass
class Table4Result:
    rows: list

    def render(self) -> str:
        from repro.analysis.tables import format_table

        out = [
            [
                r.workload,
                f"{r.constraints:,}",
                f"{r.cpu_seconds:.1f}",
                f"{r.distmsm_seconds:.1f}",
                f"{r.speedup:.1f}x",
            ]
            for r in self.rows
        ]
        return format_table(
            ["Application", "Size", "libsnark (s)", "DistMSM (s)", "speedup"],
            out,
            title="Table 4: end-to-end proof generation",
        )


def table4(num_gpus: int = 8, use_paper_cpu_times: bool = True) -> Table4Result:
    """Reproduce Table 4 for all three workloads."""
    rows = []
    for spec in ALL_WORKLOADS:
        cpu = spec.paper_libsnark_seconds if use_paper_cpu_times else None
        rows.append(estimate_end_to_end(spec, num_gpus=num_gpus, cpu_seconds=cpu))
    return Table4Result(rows)


def stage_distribution(num_gpus: int = 8) -> dict:
    """The post-acceleration stage shares of §5.1.1.

    With single-GPU MSM+NTT the paper predicts 78.9 / 17.1 / 3.92 (after
    hypothetically accelerating "others" too it normalises differently);
    with 8-GPU MSM the distribution shifts to 38.1 / 50.4 / 11.5.
    """
    shares = paper_data.STAGE_SHARES_CPU
    msm = shares["msm"] / (paper_data.GPU_SPEEDUP_MSM * num_gpus / 1.0)
    ntt = shares["ntt"] / paper_data.GPU_SPEEDUP_NTT
    others = shares["others"] / paper_data.GPU_SPEEDUP_MSM  # hypothetical
    total = msm + ntt + others
    return {"msm": msm / total, "ntt": ntt / total, "others": others / total}
