"""Rank-1 constraint systems (R1CS).

A constraint system over ``GF(r)`` with witness vector
``z = (1, public..., private...)`` and constraints ``<A_k, z> * <B_k, z> =
<C_k, z>``.  Rows are sparse (variable index -> coefficient), which is how
real front-ends (libsnark's protoboard, circom) emit them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Constraint:
    """One R1CS row: ``<a, z> * <b, z> = <c, z>`` with sparse maps."""

    a: dict
    b: dict
    c: dict


@dataclass
class R1cs:
    """An R1CS instance over ``GF(modulus)``.

    Variable 0 is the constant 1; variables ``1..num_public`` are the public
    inputs; the rest are private witness variables.
    """

    modulus: int
    num_public: int = 0
    constraints: list = field(default_factory=list)
    num_variables: int = 1  # the constant-one wire

    def new_variable(self) -> int:
        """Allocate a fresh variable index."""
        idx = self.num_variables
        self.num_variables += 1
        return idx

    def declare_public(self, count: int = 1) -> list[int]:
        """Allocate public-input variables (must precede private ones)."""
        if self.num_variables != self.num_public + 1:
            raise ValueError("public inputs must be declared before privates")
        out = [self.new_variable() for _ in range(count)]
        self.num_public += count
        return out

    def add_constraint(self, a: dict, b: dict, c: dict) -> None:
        """Append ``<a,z> * <b,z> = <c,z>``; coefficients reduced mod r."""
        p = self.modulus

        def clean(row: dict) -> dict:
            out = {}
            for var, coeff in row.items():
                if not 0 <= var < self.num_variables:
                    raise ValueError(f"unknown variable {var}")
                coeff %= p
                if coeff:
                    out[var] = coeff
            return out

        self.constraints.append(Constraint(clean(a), clean(b), clean(c)))

    # convenience gates ------------------------------------------------------

    def enforce_product(self, x: int, y: int, out: int) -> None:
        """x * y = out."""
        self.add_constraint({x: 1}, {y: 1}, {out: 1})

    def enforce_linear(self, terms: dict, out: int) -> None:
        """sum(coeff * var) = out  (multiplication by the constant wire)."""
        self.add_constraint(dict(terms), {0: 1}, {out: 1})

    def enforce_constant(self, x: int, value: int) -> None:
        """x = value."""
        self.add_constraint({x: 1}, {0: 1}, {0: value})

    # evaluation ------------------------------------------------------------

    def row_dot(self, row: dict, assignment: list[int]) -> int:
        return sum(coeff * assignment[var] for var, coeff in row.items()) % self.modulus

    def is_satisfied(self, assignment: list[int]) -> bool:
        """Whether a full assignment satisfies every constraint."""
        if len(assignment) != self.num_variables:
            raise ValueError(
                f"assignment has {len(assignment)} entries, "
                f"expected {self.num_variables}"
            )
        if assignment[0] != 1:
            raise ValueError("assignment[0] must be the constant 1")
        return all(
            self.row_dot(k.a, assignment) * self.row_dot(k.b, assignment) % self.modulus
            == self.row_dot(k.c, assignment)
            for k in self.constraints
        )

    def first_violation(self, assignment: list[int]) -> int | None:
        """Index of the first violated constraint, or None."""
        for i, k in enumerate(self.constraints):
            lhs = (
                self.row_dot(k.a, assignment)
                * self.row_dot(k.b, assignment)
                % self.modulus
            )
            if lhs != self.row_dot(k.c, assignment):
                return i
        return None

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def public_inputs(self, assignment: list[int]) -> list[int]:
        return assignment[1 : 1 + self.num_public]

    def __repr__(self):
        return (
            f"R1cs({self.num_constraints} constraints, "
            f"{self.num_variables} variables, {self.num_public} public)"
        )
