"""A small circuit-builder DSL with automatic witness computation.

Hand-maintaining parallel (constraint, witness) code — as the raw
:class:`~repro.zksnark.r1cs.R1cs` API requires — is how real front-ends
get soundness bugs.  This builder tracks values alongside wires: arithmetic
on :class:`Wire` objects emits R1CS constraints *and* computes the witness,
so ``synthesize()`` always returns a satisfying assignment by construction.

>>> c = CircuitBuilder()
>>> x = c.private(3)
>>> out = c.public_output(x * x * x + x + 5)
>>> r1cs, assignment = c.synthesize()
>>> r1cs.is_satisfied(assignment)
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.curves.params import curve_by_name
from repro.zksnark.r1cs import R1cs

BN254_R = curve_by_name("BN254").r


@dataclass(frozen=True)
class Wire:
    """A circuit value: a linear combination of R1CS variables.

    Wires are immutable; arithmetic returns new wires.  Additions and
    constant multiplications stay *free* (they fold into the linear
    combination); only ``*`` between two non-constant wires allocates a
    variable and a constraint — exactly R1CS's cost model.
    """

    builder: "CircuitBuilder"
    terms: tuple  # ((var, coeff), ...) sorted by var
    value: int

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other):
        other = self.builder.wire_of(other)
        return self.builder._linear_combine(self, other, 1)

    __radd__ = __add__

    def __sub__(self, other):
        other = self.builder.wire_of(other)
        return self.builder._linear_combine(self, other, -1)

    def __rsub__(self, other):
        return self.builder.wire_of(other) - self

    def __neg__(self):
        return self.builder.constant(0) - self

    def __mul__(self, other):
        if isinstance(other, int):
            p = self.builder.modulus
            terms = tuple((v, c * other % p) for v, c in self.terms)
            return Wire(self.builder, terms, self.value * other % p)
        if isinstance(other, Wire):
            return self.builder.multiply(self, other)
        return NotImplemented

    __rmul__ = __mul__

    def is_constant(self) -> bool:
        return all(v == 0 for v, _ in self.terms)


class CircuitBuilder:
    """Builds an R1CS and its satisfying witness simultaneously."""

    def __init__(self, modulus: int = BN254_R):
        self.modulus = modulus
        self._r1cs = R1cs(modulus=modulus)
        self._values = {0: 1}
        self._public_wires: list[Wire] = []
        self._private_pending: list[tuple] = []
        self._synthesized = False

    # -- inputs ----------------------------------------------------------

    def constant(self, value: int) -> Wire:
        return Wire(self, ((0, value % self.modulus),), value % self.modulus)

    def wire_of(self, value) -> Wire:
        if isinstance(value, Wire):
            return value
        if isinstance(value, int):
            return self.constant(value)
        raise TypeError(f"cannot build a wire from {type(value).__name__}")

    def private(self, value: int) -> Wire:
        """A private witness input with the given value."""
        var = self._new_private_var(value)
        return Wire(self, ((var, 1),), value % self.modulus)

    def public_output(self, wire) -> Wire:
        """Expose a wire's value as a public input/output of the circuit."""
        wire = self.wire_of(wire)
        self._public_wires.append(wire)
        return wire

    # -- gates ---------------------------------------------------------------

    def multiply(self, a: Wire, b: Wire) -> Wire:
        """Allocate ``out = a * b`` (one R1CS constraint)."""
        value = a.value * b.value % self.modulus
        if a.is_constant():
            return b * a.value
        if b.is_constant():
            return a * b.value
        out_var = self._new_private_var(value)
        self._private_pending.append(
            (dict(a.terms), dict(b.terms), {out_var: 1})
        )
        return Wire(self, ((out_var, 1),), value)

    def assert_equal(self, a, b) -> None:
        """Constrain two wires to the same value (fails fast if they are
        not — the builder refuses to build unsatisfiable systems)."""
        a, b = self.wire_of(a), self.wire_of(b)
        if a.value != b.value:
            raise ValueError(
                f"assert_equal on differing values {a.value} != {b.value}"
            )
        diff = a - b
        self._private_pending.append((dict(diff.terms), {0: 1}, {}))

    def assert_boolean(self, a) -> None:
        """Constrain ``a`` to {0, 1}: ``a * (a - 1) = 0``."""
        a = self.wire_of(a)
        if a.value not in (0, 1):
            raise ValueError(f"assert_boolean on non-boolean value {a.value}")
        self._private_pending.append(
            (dict(a.terms), dict((a - 1).terms), {})
        )

    def inverse(self, a: Wire) -> Wire:
        """Allocate ``a^-1`` with the constraint ``a * inv = 1``."""
        a = self.wire_of(a)
        if a.value == 0:
            raise ZeroDivisionError("cannot invert a zero wire")
        inv_value = pow(a.value, -1, self.modulus)
        inv_var = self._new_private_var(inv_value)
        self._private_pending.append((dict(a.terms), {inv_var: 1}, {0: 1}))
        return Wire(self, ((inv_var, 1),), inv_value)

    # -- synthesis ---------------------------------------------------------------

    def synthesize(self) -> tuple[R1cs, list[int]]:
        """Produce the R1CS and its (correct-by-construction) witness.

        Public wires are materialised first (R1CS requires public variables
        before private ones), then private variables are renumbered in
        allocation order.
        """
        if self._synthesized:
            raise RuntimeError("synthesize() may only be called once")
        self._synthesized = True

        r1cs = R1cs(modulus=self.modulus)
        public_vars = r1cs.declare_public(len(self._public_wires))
        # renumber: old private var -> new var id
        remap = {0: 0}
        values = {0: 1}
        for old_var in sorted(v for v in self._values if v != 0):
            new_var = r1cs.new_variable()
            remap[old_var] = new_var
            values[new_var] = self._values[old_var]

        def remap_row(row: dict) -> dict:
            return {remap[v]: c for v, c in row.items()}

        for a_row, b_row, c_row in self._private_pending:
            r1cs.add_constraint(remap_row(a_row), remap_row(b_row), remap_row(c_row))
        for var, wire in zip(public_vars, self._public_wires):
            r1cs.add_constraint(
                remap_row(dict(wire.terms)), {0: 1}, {var: 1}
            )
            values[var] = wire.value

        assignment = [values.get(i, 0) for i in range(r1cs.num_variables)]
        return r1cs, assignment

    # -- internals ------------------------------------------------------------

    def _new_private_var(self, value: int) -> int:
        var = len(self._values)
        self._values[var] = value % self.modulus
        return var

    def _linear_combine(self, a: Wire, b: Wire, sign: int) -> Wire:
        p = self.modulus
        combined = dict(a.terms)
        for var, coeff in b.terms:
            combined[var] = (combined.get(var, 0) + sign * coeff) % p
        terms = tuple(sorted((v, c) for v, c in combined.items() if c))
        return Wire(self, terms or ((0, 0),), (a.value + sign * b.value) % p)
