"""Pairing backends: the curve-specific pieces Groth16 needs.

Groth16 is generic over any pairing-friendly curve; the protocol code in
:mod:`repro.zksnark.groth16` keys every curve-specific operation through a
:class:`PairingBackend`, and this module provides the two families the
paper's curves span — BN254 (optimal ate) and BLS12-381 (BLS ate).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.curves.params import CurveParams, curve_by_name


@dataclass(frozen=True)
class PairingBackend:
    """Everything curve-specific about a Groth16 instantiation.

    ``g2_generator``/``g2_add``/``g2_mul``/``g2_neg`` operate on the
    backend's affine-over-Fp2 representation; ``pairing_check`` evaluates
    ``prod e(P_i, Q_i) == 1`` for (G1 tuple-or-None, G2 point) pairs.
    """

    name: str
    curve: CurveParams
    g2_generator: object
    g2_add: Callable
    g2_mul: Callable
    g2_neg: Callable
    pairing_check: Callable

    @property
    def scalar_modulus(self) -> int:
        return self.curve.r


@lru_cache(maxsize=None)
def backend_by_name(name: str) -> PairingBackend:
    """The registered pairing backends: "BN254" and "BLS12-381"."""
    if name.upper() == "BN254":
        from repro.zksnark import pairing as pr

        return PairingBackend(
            name="BN254",
            curve=curve_by_name("BN254"),
            g2_generator=pr.G2_GENERATOR,
            g2_add=pr.g2_add,
            g2_mul=pr.g2_mul,
            g2_neg=pr.point_neg,
            pairing_check=pr.pairing_check,
        )
    if name.upper() in ("BLS12-381", "BLS12_381"):
        from repro.zksnark import pairing_bls as prb

        return PairingBackend(
            name="BLS12-381",
            curve=curve_by_name("BLS12-381"),
            g2_generator=prb.G2_GENERATOR_BLS,
            g2_add=lambda a, b: prb.point_add(a, b),
            g2_mul=prb.g2_mul_bls,
            g2_neg=prb.g2_neg_bls,
            pairing_check=prb.pairing_check_bls,
        )
    raise KeyError(f"no pairing backend for {name!r}")
