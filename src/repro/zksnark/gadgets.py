"""Reusable circuit gadgets on top of the builder DSL.

The pieces production circuits are assembled from: bit decomposition /
range checks, conditional selection, and Merkle-path membership over the
Poseidon hash — the core of a Zcash-style shielded transaction (prove a
note is in the commitment tree without revealing which one).
"""

from __future__ import annotations

from repro.zksnark.builder import CircuitBuilder, Wire
from repro.zksnark.poseidon import hash2, hash2_gadget


def to_bits(builder: CircuitBuilder, wire: Wire, width: int) -> list[Wire]:
    """Decompose a wire into ``width`` boolean wires (little-endian).

    Adds one boolean constraint per bit plus the recomposition equality —
    the standard range check: the decomposition only exists when
    ``wire.value < 2^width``.
    """
    if width <= 0:
        raise ValueError("bit width must be positive")
    value = wire.value
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = []
    for i in range(width):
        bit = builder.private((value >> i) & 1)
        builder.assert_boolean(bit)
        bits.append(bit)
    recomposed = builder.constant(0)
    for i, bit in enumerate(bits):
        recomposed = recomposed + bit * (1 << i)
    builder.assert_equal(recomposed, wire)
    return bits


def assert_in_range(builder: CircuitBuilder, wire: Wire, width: int) -> None:
    """Constrain ``0 <= wire < 2^width``."""
    to_bits(builder, wire, width)


def select(builder: CircuitBuilder, bit: Wire, if_one: Wire, if_zero: Wire) -> Wire:
    """``bit ? if_one : if_zero`` for a boolean wire (one constraint)."""
    # out = if_zero + bit * (if_one - if_zero)
    return if_zero + bit * (if_one - if_zero)


def swap_on_bit(
    builder: CircuitBuilder, bit: Wire, left: Wire, right: Wire
) -> tuple[Wire, Wire]:
    """Return (left, right) or (right, left) depending on ``bit``."""
    new_left = select(builder, bit, right, left)
    new_right = select(builder, bit, left, right)
    return new_left, new_right


# -- Merkle trees over Poseidon ------------------------------------------------


def merkle_root(leaves: list[int]) -> int:
    """Native Merkle root (power-of-two leaf count) over Poseidon."""
    if not leaves or len(leaves) & (len(leaves) - 1):
        raise ValueError("leaf count must be a positive power of two")
    level = list(leaves)
    while len(level) > 1:
        level = [
            hash2(level[i], level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]


def merkle_path(leaves: list[int], index: int) -> list[int]:
    """The sibling path authenticating ``leaves[index]``."""
    if not 0 <= index < len(leaves):
        raise ValueError("leaf index out of range")
    path = []
    level = list(leaves)
    idx = index
    while len(level) > 1:
        path.append(level[idx ^ 1])
        level = [
            hash2(level[i], level[i + 1]) for i in range(0, len(level), 2)
        ]
        idx //= 2
    return path


def merkle_membership_gadget(
    builder: CircuitBuilder,
    leaf: Wire,
    index_bits: list[Wire],
    path: list[Wire],
) -> Wire:
    """Recompute the root from a leaf, its index bits and sibling path.

    ~240 constraints (one Poseidon) per tree level — the dominant cost of
    shielded-transaction circuits.  Callers bind the returned wire to the
    public root.
    """
    if len(index_bits) != len(path):
        raise ValueError("need one index bit per path level")
    current = leaf
    for bit, sibling in zip(index_bits, path):
        left, right = swap_on_bit(builder, bit, current, sibling)
        current = hash2_gadget(builder, left, right)
    return current


def merkle_membership_circuit(
    leaves: list[int], index: int
) -> tuple:
    """A full membership circuit: public root, private leaf/index/path.

    Returns ``(r1cs, assignment, root)``; the root is the single public
    input, everything identifying the leaf stays private — the
    zero-knowledge property a shielded pool needs.
    """
    builder = CircuitBuilder()
    depth = (len(leaves) - 1).bit_length()
    leaf = builder.private(leaves[index])
    index_bits = []
    for level in range(depth):
        bit = builder.private((index >> level) & 1)
        builder.assert_boolean(bit)
        index_bits.append(bit)
    path_wires = [builder.private(v) for v in merkle_path(leaves, index)]
    root_wire = merkle_membership_gadget(builder, leaf, index_bits, path_wires)
    builder.public_output(root_wire)
    r1cs, assignment = builder.synthesize()
    return r1cs, assignment, merkle_root(leaves)
