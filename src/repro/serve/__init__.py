"""repro.serve — continuous-batching MSM proof serving in simulated time.

The serving layer turns the repository's single-MSM machinery into a
request-serving system: seeded arrival processes feed a bounded queue
behind admission control, a continuous batcher forms MSM batches
(size/age/deadline triggers) and plans them through persistent plan and
precompute caches, and every batch lands on ONE shared event-driven
timeline so GPU compute, node transfers, and host bucket-reduce overlap
across requests.  Faults degrade capacity and retry work honestly;
metrics report the SLO story (p50/p95/p99, throughput, utilization,
shed/violation counts) as JSON.

See DESIGN.md §10 for the architecture walk-through.
"""

from repro.serve.admission import (
    SHED_INFEASIBLE,
    SHED_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
    ShedEvent,
    degraded_batch_size,
)
from repro.serve.batcher import (
    Batch,
    BatchPolicy,
    ContinuousBatcher,
    emit_request_tasks,
    request_task_names,
)
from repro.serve.metrics import RequestRecord, ServeMetrics
from repro.serve.plancache import CachedPlan, CacheStats, PlanCache, cache_report
from repro.serve.queue import (
    ClosedLoopSource,
    MsmPayload,
    ProofRequest,
    RequestQueue,
    bursty_trace,
    poisson_trace,
)
from repro.serve.server import (
    MsmProofServer,
    ServeConfig,
    ServeResult,
    serve_one_at_a_time,
)

__all__ = [
    "SHED_INFEASIBLE",
    "SHED_QUEUE_FULL",
    "AdmissionConfig",
    "AdmissionController",
    "Batch",
    "BatchPolicy",
    "CacheStats",
    "CachedPlan",
    "ClosedLoopSource",
    "ContinuousBatcher",
    "MsmPayload",
    "MsmProofServer",
    "PlanCache",
    "ProofRequest",
    "RequestQueue",
    "RequestRecord",
    "ServeConfig",
    "ServeMetrics",
    "ServeResult",
    "ShedEvent",
    "bursty_trace",
    "cache_report",
    "degraded_batch_size",
    "emit_request_tasks",
    "poisson_trace",
    "request_task_names",
    "serve_one_at_a_time",
]
