"""SLO metrics for the serving layer: latency breakdowns and percentiles.

Every served request gets a :class:`RequestRecord` with the full
life-cycle timestamps — arrival, batch-close, admission onto the engine,
first GPU start, completion — from which the three-way latency breakdown
(queue wait / batch formation+planning / execution) falls out.  The
:class:`ServeMetrics` aggregate adds the SLO quantities a serving
deployment is judged on: p50/p95/p99 latency, throughput, per-resource
GPU utilization, deadline-violation and shed counts, and cache behaviour
— all exportable as JSON for the benchmark suite
(``benchmarks/bench_serving.py`` writes ``results/serving_latency.txt``).

Percentiles use the deterministic nearest-rank definition (no
interpolation), so reported tails are values that actually occurred.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.curves.point import AffinePoint
from repro.observe.stats import percentile
from repro.serve.admission import ShedEvent


@dataclass
class RequestRecord:
    """One served request's life cycle, all timestamps in engine ms.

    ``arrival_ms <= formed_ms <= admit_ms <= start_ms <= complete_ms``;
    the gap between ``formed_ms`` and ``admit_ms`` is the modelled
    planning latency (zero on a plan-cache hit).
    """

    req_id: int
    label: str
    n: int
    arrival_ms: float
    formed_ms: float
    admit_ms: float
    start_ms: float
    complete_ms: float
    batch_id: int
    group: int
    deadline_ms: float | None = None
    #: number of fault-recovery re-executions this request needed
    retries: int = 0
    #: functional serving only: the bit-exact MSM result point
    result: AffinePoint | None = None

    @property
    def queue_ms(self) -> float:
        """Waiting-room time: arrival until the batch closed around it."""
        return self.formed_ms - self.arrival_ms

    @property
    def batch_form_ms(self) -> float:
        """Batch formation + planning time (plan-cache misses pay here)."""
        return self.admit_ms - self.formed_ms

    @property
    def execute_ms(self) -> float:
        """Engine time: admission until the host reduce delivered."""
        return self.complete_ms - self.admit_ms

    @property
    def total_ms(self) -> float:
        return self.complete_ms - self.arrival_ms

    @property
    def deadline_violated(self) -> bool:
        return self.deadline_ms is not None and self.complete_ms > self.deadline_ms

    def as_dict(self) -> dict:
        return {
            "req_id": self.req_id,
            "label": self.label,
            "n": self.n,
            "arrival_ms": self.arrival_ms,
            "queue_ms": self.queue_ms,
            "batch_form_ms": self.batch_form_ms,
            "execute_ms": self.execute_ms,
            "total_ms": self.total_ms,
            "batch_id": self.batch_id,
            "group": self.group,
            "retries": self.retries,
            "deadline_violated": self.deadline_violated,
        }


@dataclass
class ServeMetrics:
    """The aggregate SLO report of one serving run."""

    records: list[RequestRecord] = field(default_factory=list)
    shed: list[ShedEvent] = field(default_factory=list)
    makespan_ms: float = 0.0
    #: busy fraction per engine resource name over the makespan
    utilization: dict = field(default_factory=dict)
    #: plan/precompute cache snapshot (repro.serve.plancache.cache_report)
    caches: dict = field(default_factory=dict)

    # -- SLO quantities ------------------------------------------------------

    @property
    def served(self) -> int:
        return len(self.records)

    @property
    def submitted(self) -> int:
        return len(self.records) + len(self.shed)

    def latencies_ms(self) -> list[float]:
        return [r.total_ms for r in self.records]

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms(), 50.0)

    @property
    def p95_ms(self) -> float:
        return percentile(self.latencies_ms(), 95.0)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms(), 99.0)

    @property
    def mean_ms(self) -> float:
        lat = self.latencies_ms()
        return sum(lat) / len(lat) if lat else 0.0

    @property
    def throughput_rps(self) -> float:
        """Served requests per second over the run's makespan."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.served / self.makespan_ms * 1e3

    @property
    def deadline_violations(self) -> int:
        return sum(1 for r in self.records if r.deadline_violated)

    @property
    def retried_requests(self) -> int:
        return sum(1 for r in self.records if r.retries > 0)

    def shed_count(self, reason: str | None = None) -> int:
        if reason is None:
            return len(self.shed)
        return sum(1 for e in self.shed if e.reason == reason)

    def gpu_utilization(self) -> float:
        """Mean busy fraction over the GPU compute resources."""
        gpu = [v for name, v in self.utilization.items() if name.startswith("gpu")]
        return sum(gpu) / len(gpu) if gpu else 0.0

    def mean_breakdown_ms(self) -> dict:
        """Average queue / batch-form / execute split over served requests."""
        if not self.records:
            return {"queue_ms": 0.0, "batch_form_ms": 0.0, "execute_ms": 0.0}
        k = len(self.records)
        return {
            "queue_ms": sum(r.queue_ms for r in self.records) / k,
            "batch_form_ms": sum(r.batch_form_ms for r in self.records) / k,
            "execute_ms": sum(r.execute_ms for r in self.records) / k,
        }

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "served": self.served,
            "shed": self.shed_count(),
            "shed_by_reason": {
                reason: self.shed_count(reason)
                for reason in sorted({e.reason for e in self.shed})
            },
            "submitted": self.submitted,
            "makespan_ms": self.makespan_ms,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
            },
            "breakdown_ms": self.mean_breakdown_ms(),
            "deadline_violations": self.deadline_violations,
            "retried_requests": self.retried_requests,
            "gpu_utilization": self.gpu_utilization(),
            "caches": self.caches,
            "requests": [r.as_dict() for r in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """One-paragraph human summary (benchmark table row material)."""
        shed = self.shed_count()
        return (
            f"served {self.served}/{self.submitted} "
            f"(shed {shed}), makespan {self.makespan_ms:.3f} ms, "
            f"{self.throughput_rps:.1f} req/s, latency p50 {self.p50_ms:.3f} / "
            f"p95 {self.p95_ms:.3f} / p99 {self.p99_ms:.3f} ms, "
            f"gpu util {self.gpu_utilization():.0%}, "
            f"{self.deadline_violations} deadline violations"
        )
