"""Admission control: backpressure, load shedding, fault-aware degrade.

The serving layer never silently drops work and never queues work it
cannot finish.  Every arriving request passes through the
:class:`AdmissionController`, which either admits it into the bounded
:class:`~repro.serve.queue.RequestQueue` or sheds it with a typed
:class:`ShedEvent`:

* ``queue-full`` — the bounded queue is at capacity (backpressure: in a
  real deployment the client would see HTTP 429 / retry-after);
* ``deadline-infeasible`` — even starting immediately on the
  least-loaded group, the request's modelled completion would overshoot
  its deadline, so accepting it would only waste GPU time.
* ``untrusted-capacity`` — chunk verification is on and no GPU is both
  alive and trusted (every survivor is a known always-cheating Byzantine
  worker), so no result the cluster could produce would ever pass
  verify-on-receive; queueing would promise work that can only be
  rejected.

Shed requests *never execute* — the servecheck verifier
(:mod:`repro.verify.servecheck`) audits that no shed request has a task
on the timeline.

Under faults the controller degrades rather than fails: when the failure
detector reports dead GPUs (heartbeat semantics from
:mod:`repro.faults.recovery`), the surviving capacity fraction shrinks
the effective batch size (``degraded_batch_size``) and feasibility is
judged against the re-planned, slower service times — serving keeps its
promises or refuses them, it does not break them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.queue import ProofRequest

#: shed reasons (the only values ShedEvent.reason may take)
SHED_QUEUE_FULL = "queue-full"
SHED_INFEASIBLE = "deadline-infeasible"
SHED_UNTRUSTED = "untrusted-capacity"


@dataclass(frozen=True)
class ShedEvent:
    """One load-shedding decision: which request, when, and why."""

    request: ProofRequest
    at_ms: float
    reason: str

    def __post_init__(self) -> None:
        if self.reason not in (SHED_QUEUE_FULL, SHED_INFEASIBLE, SHED_UNTRUSTED):
            raise ValueError(f"unknown shed reason {self.reason!r}")


@dataclass(frozen=True)
class AdmissionConfig:
    """Policy knobs of the admission controller.

    ``max_queue`` bounds the waiting room; ``reject_infeasible`` enables
    deadline-based shedding with ``slack_ms`` of safety margin; the
    degrade floor keeps at least one request per batch under any
    capacity loss.
    """

    max_queue: int = 64
    reject_infeasible: bool = True
    slack_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.slack_ms < 0:
            raise ValueError(f"slack_ms must be >= 0, got {self.slack_ms}")


@dataclass
class AdmissionController:
    """Decides, per arrival, between admission and typed shedding."""

    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    shed: list[ShedEvent] = field(default_factory=list)

    def decide(
        self,
        request: ProofRequest,
        queue_len: int,
        earliest_start_ms: float,
        service_estimate_ms: float,
    ) -> ShedEvent | None:
        """Admit (``None``) or shed (the recorded :class:`ShedEvent`).

        ``earliest_start_ms`` is the earliest time any group could start
        the request (arrival vs. least-loaded group's backlog);
        ``service_estimate_ms`` the cached plan's un-overlapped service
        time at current (possibly fault-degraded) capacity.
        """
        if queue_len >= self.config.max_queue:
            return self._shed(request, request.arrival_ms, SHED_QUEUE_FULL)
        if (
            self.config.reject_infeasible
            and request.deadline_ms is not None
            and earliest_start_ms + service_estimate_ms + self.config.slack_ms
            > request.deadline_ms
        ):
            return self._shed(request, request.arrival_ms, SHED_INFEASIBLE)
        return None

    def _shed(self, request: ProofRequest, at_ms: float, reason: str) -> ShedEvent:
        event = ShedEvent(request, at_ms, reason)
        self.shed.append(event)
        return event

    def shed_untrusted(self, request: ProofRequest, at_ms: float) -> ShedEvent:
        """Shed because no GPU is both alive and trusted (quarantine)."""
        return self._shed(request, at_ms, SHED_UNTRUSTED)

    def shed_count(self, reason: str | None = None) -> int:
        if reason is None:
            return len(self.shed)
        return sum(1 for e in self.shed if e.reason == reason)


def degraded_batch_size(
    base_batch_size: int, surviving_gpus: int, total_gpus: int
) -> int:
    """Batch size under fault-replanned capacity, floored at one.

    Losing half the GPUs halves the batch the batcher may close — smaller
    batches keep per-request latency bounded while the survivors carry
    the re-planned, slower service times.
    """
    if base_batch_size < 1:
        raise ValueError(f"base_batch_size must be >= 1, got {base_batch_size}")
    if not 0 <= surviving_gpus <= total_gpus:
        raise ValueError(
            f"surviving_gpus {surviving_gpus} out of range 0..{total_gpus}"
        )
    if total_gpus == 0:
        return 1
    return max(1, (base_batch_size * surviving_gpus) // total_gpus)
