"""Request arrival and queueing for the proof-serving layer.

Everything runs in *simulated* milliseconds, the same clock the execution
engine (:mod:`repro.engine.timeline`) schedules on.  A
:class:`ProofRequest` is one client-submitted MSM: a curve, a size, an
arrival time, and optionally a deadline, a priority, and a functional
payload (the actual scalars and points, for bit-exact serving).

Two open-loop trace generators build deterministic arrival processes from
a seed — :func:`poisson_trace` (exponential inter-arrivals at a fixed
offered rate) and :func:`bursty_trace` (synchronised request bursts, the
adversarial case for admission control) — and :class:`ClosedLoopSource`
models a fixed client population where each client submits its next
request only after the previous response lands (plus think time).

:class:`RequestQueue` is the bounded waiting room between admission
control and the batcher: requests wait in urgency order (priority, then
deadline, then arrival), and the batcher drains them when a batch trigger
fires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint


@dataclass(frozen=True)
class MsmPayload:
    """The functional content of a request: real scalars and points.

    Optional — analytic serving (timing only) leaves it ``None``.  Tuples,
    not lists, so a request stays hashable and immutable in flight.
    """

    scalars: tuple[int, ...]
    points: tuple[AffinePoint, ...]

    def __post_init__(self) -> None:
        if len(self.scalars) != len(self.points):
            raise ValueError(
                f"payload length mismatch: {len(self.scalars)} scalars, "
                f"{len(self.points)} points"
            )


@dataclass(frozen=True)
class ProofRequest:
    """One MSM proof request as submitted by a client.

    ``deadline_ms`` is absolute (same clock as ``arrival_ms``); ``None``
    means best-effort.  Lower ``priority`` values are more urgent.
    """

    req_id: int
    curve: CurveParams
    n: int
    arrival_ms: float
    deadline_ms: float | None = None
    priority: int = 0
    label: str = "req"
    payload: MsmPayload | None = None
    #: closed-loop bookkeeping: which client issued the request (-1 = open)
    client: int = -1
    #: multi-tenant serving (repro.cluster): which tenant submitted the
    #: request ("" = untenanted single-server workloads)
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"request {self.req_id}: n must be positive")
        if self.arrival_ms < 0:
            raise ValueError(
                f"request {self.req_id}: negative arrival {self.arrival_ms}"
            )
        if self.deadline_ms is not None and self.deadline_ms < self.arrival_ms:
            raise ValueError(
                f"request {self.req_id}: deadline {self.deadline_ms} before "
                f"arrival {self.arrival_ms}"
            )
        if self.payload is not None and len(self.payload.scalars) != self.n:
            raise ValueError(
                f"request {self.req_id}: payload has "
                f"{len(self.payload.scalars)} scalars but n={self.n}"
            )

    @property
    def urgency(self) -> tuple:
        """Sort key for the queue: priority, then EDF, then FIFO."""
        deadline = self.deadline_ms if self.deadline_ms is not None else float("inf")
        return (self.priority, deadline, self.arrival_ms, self.req_id)


class RequestQueue:
    """The bounded waiting room between admission and the batcher.

    ``push`` never rejects — admission control decides *before* pushing
    (see :class:`repro.serve.admission.AdmissionController`); the queue
    only enforces the invariant that it was never overfilled.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._waiting: list[ProofRequest] = []

    def __len__(self) -> int:
        return len(self._waiting)

    @property
    def full(self) -> bool:
        return len(self._waiting) >= self.capacity

    def push(self, request: ProofRequest) -> None:
        if self.full:
            raise OverflowError(
                f"queue over capacity {self.capacity}; admission must shed first"
            )
        self._waiting.append(request)

    def oldest_arrival_ms(self) -> float | None:
        """Arrival time of the longest-waiting request (age trigger input)."""
        if not self._waiting:
            return None
        return min(r.arrival_ms for r in self._waiting)

    def earliest_deadline_ms(self) -> float | None:
        deadlines = [
            r.deadline_ms for r in self._waiting if r.deadline_ms is not None
        ]
        return min(deadlines) if deadlines else None

    def pop_batch(self, max_size: int) -> list[ProofRequest]:
        """Remove up to ``max_size`` requests in urgency order."""
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self._waiting.sort(key=lambda r: r.urgency)
        batch, self._waiting = self._waiting[:max_size], self._waiting[max_size:]
        return batch

    def snapshot(self) -> tuple[ProofRequest, ...]:
        """The waiting requests, in urgency order (read-only view)."""
        return tuple(sorted(self._waiting, key=lambda r: r.urgency))


def _sizes_at(sizes: int | tuple[int, ...] | list[int], i: int) -> int:
    if isinstance(sizes, int):
        return sizes
    return sizes[i % len(sizes)]


def poisson_trace(
    curve: CurveParams,
    count: int,
    rate_rps: float,
    seed: int,
    sizes: int | tuple[int, ...] | list[int] = 1 << 16,
    deadline_ms: float | None = None,
    priority: int = 0,
    start_id: int = 0,
) -> list[ProofRequest]:
    """An open-loop Poisson arrival process at ``rate_rps`` requests/s.

    Inter-arrival gaps are exponential with mean ``1e3 / rate_rps`` ms,
    drawn from a seeded generator, so the trace is fully reproducible.
    ``sizes`` is either one MSM size or a cycle of sizes (mixed traffic);
    ``deadline_ms`` is a *relative* latency SLO attached to every request.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    rng = random.Random(seed)
    now = 0.0
    out: list[ProofRequest] = []
    for i in range(count):
        now += rng.expovariate(rate_rps) * 1e3
        out.append(
            ProofRequest(
                req_id=start_id + i,
                curve=curve,
                n=_sizes_at(sizes, i),
                arrival_ms=now,
                deadline_ms=None if deadline_ms is None else now + deadline_ms,
                priority=priority,
                label=f"poisson{start_id + i}",
            )
        )
    return out


def bursty_trace(
    curve: CurveParams,
    bursts: int,
    burst_size: int,
    gap_ms: float,
    seed: int = 0,
    sizes: int | tuple[int, ...] | list[int] = 1 << 16,
    jitter_ms: float = 0.0,
    deadline_ms: float | None = None,
    start_id: int = 0,
) -> list[ProofRequest]:
    """Synchronised bursts: ``burst_size`` requests every ``gap_ms``.

    The adversarial admission-control case — all clients fire at once.
    ``jitter_ms`` > 0 spreads each burst's arrivals uniformly over that
    window (seeded, deterministic).
    """
    if bursts < 0 or burst_size < 1:
        raise ValueError("bursts must be >= 0 and burst_size >= 1")
    if gap_ms <= 0:
        raise ValueError(f"gap_ms must be > 0, got {gap_ms}")
    rng = random.Random(seed)
    out: list[ProofRequest] = []
    rid = start_id
    for b in range(bursts):
        base = b * gap_ms
        for _ in range(burst_size):
            at = base + (rng.uniform(0.0, jitter_ms) if jitter_ms > 0 else 0.0)
            out.append(
                ProofRequest(
                    req_id=rid,
                    curve=curve,
                    n=_sizes_at(sizes, rid - start_id),
                    arrival_ms=at,
                    deadline_ms=None if deadline_ms is None else at + deadline_ms,
                    label=f"burst{b}.{rid}",
                )
            )
            rid += 1
    out.sort(key=lambda r: (r.arrival_ms, r.req_id))
    return out


@dataclass
class ClosedLoopSource:
    """A fixed population of clients, each with one request in flight.

    Every client submits immediately at t=0; when a response completes,
    the client "thinks" for ``think_ms`` and submits its next request,
    until ``requests_per_client`` have been issued.  The server drives
    this: it calls :meth:`initial_arrivals` once and
    :meth:`on_complete` at every completion it schedules.
    """

    curve: CurveParams
    clients: int
    requests_per_client: int
    think_ms: float = 0.0
    sizes: int | tuple[int, ...] | list[int] = 1 << 16
    deadline_ms: float | None = None
    _issued: dict[int, int] = field(default_factory=dict)
    _next_id: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.requests_per_client < 1:
            raise ValueError(
                f"requests_per_client must be >= 1, got {self.requests_per_client}"
            )
        if self.think_ms < 0:
            raise ValueError(f"think_ms must be >= 0, got {self.think_ms}")

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client

    def _issue(self, client: int, at_ms: float) -> ProofRequest:
        rid = self._next_id
        self._next_id += 1
        self._issued[client] = self._issued.get(client, 0) + 1
        return ProofRequest(
            req_id=rid,
            curve=self.curve,
            n=_sizes_at(self.sizes, rid),
            arrival_ms=at_ms,
            deadline_ms=None if self.deadline_ms is None else at_ms + self.deadline_ms,
            label=f"client{client}.{self._issued[client] - 1}",
            client=client,
        )

    def initial_arrivals(self) -> list[ProofRequest]:
        """The first wave: one request per client at t=0."""
        return [self._issue(c, 0.0) for c in range(self.clients)]

    def on_complete(self, request: ProofRequest, complete_ms: float) -> ProofRequest | None:
        """The client's next request, or ``None`` when it is done."""
        if request.client < 0:
            return None
        if self._issued.get(request.client, 0) >= self.requests_per_client:
            return None
        return self._issue(request.client, complete_ms + self.think_ms)
