"""Continuous batching: forming MSM batches and admitting them as tasks.

The batcher is the piece between the waiting room and the execution
engine.  It watches the queue and closes a batch when one of three
triggers fires:

* **size** — the queue holds a full batch (``max_batch_size``, possibly
  degraded under faults);
* **age** — the oldest waiting request has waited ``max_wait_ms``
  (bounded batching delay, the knob that trades p50 for throughput);
* **deadline** — waiting any longer would make a waiting request's
  deadline infeasible even if it started immediately.

A closed batch is bound to one GPU group and emitted as engine tasks:
per-request GPU stages on every GPU of the group (FIFO streams serialize
requests within the batch), one device-to-host transfer on the group's
node link (requiring the group's GPUs alive — GPU memory dies with the
GPU), and one host bucket-reduce on the shared CPU.  Because every batch
lands on the *same* shared timeline, batches from different requests
overlap GPU compute, node transfers, and CPU bucket-reduce exactly the
way §3.2.3 pipelines one proof's MSM sequence — generalised to an
arbitrary request stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine.resources import Resource, SystemResources
from repro.engine.timeline import Task
from repro.serve.plancache import CachedPlan
from repro.serve.queue import ProofRequest, RequestQueue


@dataclass(frozen=True)
class BatchPolicy:
    """The batch-formation triggers."""

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    deadline_slack_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.deadline_slack_ms < 0:
            raise ValueError(
                f"deadline_slack_ms must be >= 0, got {self.deadline_slack_ms}"
            )


@dataclass
class Batch:
    """One formed batch: requests bound to a GPU group at a point in time.

    ``formed_ms`` is when the trigger fired; ``admit_ms`` adds the
    modelled planning latency (plan-cache misses); ``window_sizes`` maps
    request id to the §3.1 window size its plan chose.
    """

    batch_id: int
    group: int
    requests: list[ProofRequest]
    formed_ms: float
    admit_ms: float
    window_sizes: dict = field(default_factory=dict)
    plan_misses: int = 0

    @property
    def size(self) -> int:
        return len(self.requests)


def request_task_names(req_id: int, attempt: int, gpu_indices: list[int]) -> dict:
    """The engine task names of one request execution attempt."""
    prefix = f"req{req_id}.a{attempt}"
    return {
        "gpu": [f"{prefix}:gpu{i}" for i in gpu_indices],
        "xfer": f"{prefix}:xfer",
        "reduce": f"{prefix}:reduce",
    }


def emit_request_tasks(
    request: ProofRequest,
    attempt: int,
    plan: CachedPlan,
    group_gpus: list[Resource],
    resources: SystemResources,
    not_before_ms: float,
    stage: str,
    extra_deps: tuple[str, ...] = (),
) -> list[Task]:
    """One request's execution as engine tasks on its group's resources.

    GPU stages run on every GPU of the (possibly fault-shrunken) group,
    the transfer on the first group member's node link — requiring every
    group GPU alive, since partial bucket sums live in GPU memory until
    the copy lands — and the bucket-reduce on the shared host CPU.
    ``extra_deps`` serialises the one-at-a-time baseline (each request's
    GPU stage waits for the previous request's reduce).
    """
    if not group_gpus:
        raise ValueError(f"request {request.req_id}: empty GPU group")
    names = request_task_names(request.req_id, attempt, [g.index for g in group_gpus])
    tasks = [
        Task(
            name,
            gpu,
            plan.gpu_ms,
            deps=extra_deps,
            stage=stage,
            not_before_ms=not_before_ms,
        )
        for name, gpu in zip(names["gpu"], group_gpus)
    ]
    tasks.append(
        Task(
            names["xfer"],
            resources.channel_for_gpu(group_gpus[0].index),
            plan.transfer_ms,
            deps=tuple(names["gpu"]),
            stage=stage,
            not_before_ms=not_before_ms,
            requires_alive=tuple(g.name for g in group_gpus),
        )
    )
    tasks.append(
        Task(
            names["reduce"],
            resources.cpu,
            plan.cpu_ms,
            deps=(names["xfer"],),
            stage=stage,
            not_before_ms=not_before_ms,
        )
    )
    return tasks


class ContinuousBatcher:
    """Batch-formation policy over a :class:`RequestQueue`.

    The server owns the clock and the queue; the batcher answers two
    questions — *when* to close the next batch and *which* requests go
    into it — and emits the closed batch's tasks.
    """

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self.batches: list[Batch] = []

    def next_close_ms(
        self,
        queue: RequestQueue,
        now_ms: float,
        effective_max_batch: int,
        service_peek: Callable[[ProofRequest], float | None],
    ) -> float | None:
        """When the next batch should close, given the queue right now.

        ``None`` when the queue is empty.  ``service_peek`` returns the
        cached service-time estimate for a request (``None`` when the
        plan cache has never seen its shape — no deadline pressure can be
        computed for it yet).
        """
        if not len(queue):
            return None
        if len(queue) >= effective_max_batch:
            return now_ms
        oldest = queue.oldest_arrival_ms()
        assert oldest is not None
        close = oldest + self.policy.max_wait_ms
        for request in queue.snapshot():
            if request.deadline_ms is None:
                continue
            estimate = service_peek(request)
            if estimate is None:
                continue
            latest_viable = (
                request.deadline_ms - estimate - self.policy.deadline_slack_ms
            )
            close = min(close, latest_viable)
        return max(now_ms, close)

    def form(
        self,
        queue: RequestQueue,
        group: int,
        formed_ms: float,
        admit_ms: float,
        effective_max_batch: int,
        window_sizes: dict,
        plan_misses: int,
    ) -> Batch:
        """Close a batch: drain the queue in urgency order and record it."""
        requests = queue.pop_batch(effective_max_batch)
        batch = Batch(
            batch_id=len(self.batches),
            group=group,
            requests=requests,
            formed_ms=formed_ms,
            admit_ms=admit_ms,
            window_sizes=dict(window_sizes),
            plan_misses=plan_misses,
        )
        self.batches.append(batch)
        return batch
