"""The MSM proof server: queue -> admission -> batcher -> engine -> metrics.

:class:`MsmProofServer` serves a request workload (an open-loop trace or
a :class:`~repro.serve.queue.ClosedLoopSource`) on one
:class:`~repro.gpu.cluster.MultiGpuSystem` in simulated time.  The
cluster's GPUs are partitioned into ``gpu_groups`` groups; each batch is
bound to the least-loaded group, its per-request work is planned through
the persistent :class:`~repro.serve.plancache.PlanCache` (misses pay a
modelled planning latency), and the tasks are admitted onto ONE shared
event-driven timeline (:func:`repro.engine.timeline.simulate`) — so the
GPU phases of different requests, their node-link transfers, and their
host bucket-reduces all overlap, continuous-batching style.

Faults: a :class:`~repro.engine.faults.FaultPlan` makes the same run a
chaos test.  GPU deaths known to the heartbeat detector shrink group
capacity and degrade the effective batch size
(:func:`~repro.serve.admission.degraded_batch_size`); work lost to a
death before detection is re-emitted on the surviving GPUs after the
detection tick, re-planned at the survivors' capacity, and the request
completes late but correct — functional payloads stay bit-exact because
the MSM math never depends on which GPUs ran it.

Byzantine workers (:class:`~repro.engine.faults.ByzantineWorker` events)
extend the same machinery to fail-*lying* GPUs: with chunk verification
on (``DistMsmConfig.verify_chunks``), an attempt executed on a cheating
GPU is rejected at its reduce's completion (verify-on-receive — host
side, no heartbeat latency), the cheater is quarantined with the same
bookkeeping that blacklists dead GPUs (capacity degrade included), and
the attempt is re-emitted on trusted survivors.  When no GPU is both
alive and trusted, arrivals are shed with the typed
``untrusted-capacity`` reason instead of queueing unkeepable promises.

``ServeConfig(overlap=False)`` is the honest one-request-at-a-time
baseline: one group, batch size one, and each request's GPU stage gated
on the previous request's host reduce — no cross-request overlap at all.
That baseline is what ``benchmarks/bench_serving.py`` beats on p95.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analyze.modelcheck import check_plan
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.curves.point import AffinePoint
from repro.engine.faults import FaultPlan, RetryPolicy
from repro.engine.resources import SystemResources
from repro.engine.timeline import TIME_EPS, Task, Timeline, simulate
from repro.faults.recovery import FaultRecoveryError, detection_time_ms
from repro.gpu.cluster import MultiGpuSystem
from repro.serve.admission import (
    SHED_UNTRUSTED,
    AdmissionConfig,
    AdmissionController,
    ShedEvent,
    degraded_batch_size,
)
from repro.serve.batcher import (
    Batch,
    BatchPolicy,
    ContinuousBatcher,
    emit_request_tasks,
    request_task_names,
)
from repro.serve.metrics import RequestRecord, ServeMetrics
from repro.serve.plancache import CachedPlan, PlanCache, cache_report
from repro.serve.queue import ClosedLoopSource, ProofRequest, RequestQueue

if TYPE_CHECKING:
    from repro.observe.tracer import Tracer


@dataclass(frozen=True)
class ServeConfig:
    """Policy of one serving deployment.

    ``gpu_groups`` partitions the cluster (a batch runs on one group);
    ``plan_ms`` is the modelled planner latency charged per plan-cache
    miss; ``overlap=False`` selects the one-request-at-a-time baseline
    (forces one group, batch size one, and full serialisation).
    """

    gpu_groups: int = 1
    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    max_queue: int = 64
    reject_infeasible: bool = True
    slack_ms: float = 0.0
    plan_ms: float = 0.5
    overlap: bool = True
    degrade_on_faults: bool = True

    def __post_init__(self) -> None:
        if self.gpu_groups < 1:
            raise ValueError(f"gpu_groups must be >= 1, got {self.gpu_groups}")
        if self.plan_ms < 0:
            raise ValueError(f"plan_ms must be >= 0, got {self.plan_ms}")
        if not self.overlap and (self.gpu_groups != 1 or self.max_batch_size != 1):
            raise ValueError(
                "overlap=False is the one-at-a-time baseline: it requires "
                "gpu_groups=1 and max_batch_size=1"
            )

    def batch_policy(self) -> BatchPolicy:
        return BatchPolicy(
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            deadline_slack_ms=self.slack_ms,
        )

    def admission_config(self) -> AdmissionConfig:
        return AdmissionConfig(
            max_queue=self.max_queue,
            reject_infeasible=self.reject_infeasible,
            slack_ms=self.slack_ms,
        )


@dataclass
class _Emission:
    """One execution attempt of one request on the shared timeline."""

    request: ProofRequest
    attempt: int
    group: int
    gpu_indices: list[int]
    names: dict
    batch_id: int
    formed_ms: float
    admit_ms: float


@dataclass
class ServeResult:
    """Everything one serving run produced, for metrics and audit."""

    requests: list[ProofRequest]
    records: list[RequestRecord]
    shed: list[ShedEvent]
    batches: list[Batch]
    timeline: Timeline
    metrics: ServeMetrics
    faults: FaultPlan | None = None
    #: task-emission audit trail: request id -> its attempts, in order
    emissions: dict = field(default_factory=dict)
    #: Byzantine quarantine decisions: gpu id -> time its first rejected
    #: attempt completed (empty when verification never rejected anything)
    quarantined: dict = field(default_factory=dict)

    def record_for(self, req_id: int) -> RequestRecord | None:
        for record in self.records:
            if record.req_id == req_id:
                return record
        return None


class MsmProofServer:
    """Continuous-batching MSM serving on one simulated multi-GPU system."""

    def __init__(
        self,
        system: MultiGpuSystem,
        config: DistMsmConfig | None = None,
        serve_config: ServeConfig | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        self.system = system
        self.config = config or DistMsmConfig()
        self.serve_config = serve_config or ServeConfig()
        if self.serve_config.gpu_groups > system.num_gpus:
            raise ValueError(
                f"{self.serve_config.gpu_groups} groups need at least as many "
                f"GPUs (system has {system.num_gpus})"
            )
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.resources: SystemResources = system.resources()
        self.groups: list[tuple[int, ...]] = self._partition_gpus()
        self._engines: dict[int, DistMsm] = {}

    # -- static structure ----------------------------------------------------

    def _partition_gpus(self) -> list[tuple[int, ...]]:
        """Contiguous, near-even GPU groups (node-locality preserved)."""
        num, groups = self.system.num_gpus, self.serve_config.gpu_groups
        base, extra = divmod(num, groups)
        out, start = [], 0
        for g in range(groups):
            size = base + (1 if g < extra else 0)
            out.append(tuple(range(start, start + size)))
            start += size
        return out

    def _engine_for(self, gpu_count: int) -> DistMsm:
        """A planning engine for a ``gpu_count``-GPU slice of the cluster."""
        engine = self._engines.get(gpu_count)
        if engine is None:
            engine = DistMsm(
                MultiGpuSystem(
                    gpu_count,
                    spec=self.system.spec,
                    cpu=self.system.cpu,
                    gpus_per_node=self.system.gpus_per_node,
                ),
                self.config,
            )
            self._engines[gpu_count] = engine
        return engine

    # -- fault awareness -----------------------------------------------------

    def _known_dead(self, faults: FaultPlan | None, now_ms: float) -> set[int]:
        """GPUs whose death the heartbeat detector has reported by ``now``."""
        if faults is None:
            return set()
        return {
            g
            for g, at in faults.gpu_death_times().items()
            if detection_time_ms(at, self.config.heartbeat_ms) <= now_ms + TIME_EPS
        }

    def _surviving_members(self, group: int, dead: set[int]) -> list[int]:
        return [g for g in self.groups[group] if g not in dead]

    def _live_groups(self, dead: set[int]) -> list[int]:
        return [
            g for g in range(len(self.groups)) if self._surviving_members(g, dead)
        ]

    # -- serving -------------------------------------------------------------

    def serve(
        self,
        workload: list[ProofRequest] | ClosedLoopSource,
        faults: FaultPlan | None = None,
        trace: "Tracer | None" = None,
    ) -> ServeResult:
        """Serve a workload; returns the full audited result.

        Open loop: ``workload`` is a request trace (arrivals fixed up
        front).  Closed loop: a :class:`ClosedLoopSource`, asked for each
        client's next request as its previous response completes.
        Deterministic either way.

        With a ``trace`` (:class:`~repro.observe.tracer.Tracer`), the
        run is transcribed onto it: every engine task on its resource
        track, plus one lane per request with its life-cycle spans
        (queued → batched → executing → done) and shed instants on the
        admission track.
        """
        if faults is not None and faults.gpu_death_times():
            alive = set(range(self.system.num_gpus)) - set(faults.gpu_death_times())
            if not alive:
                raise FaultRecoveryError(
                    "fault plan kills every GPU; no survivor to serve on"
                )
        source = workload if isinstance(workload, ClosedLoopSource) else None
        initial = source.initial_arrivals() if source is not None else list(workload)

        byz = faults.byzantine_workers() if faults is not None else {}
        verify_on = self.config.verify_chunks is True or (
            self.config.verify_chunks == "auto" and bool(byz)
        )
        deaths = faults.gpu_death_times() if faults is not None else {}
        # verification on and every GPU dead or always-cheating: nothing the
        # cluster produces could ever be accepted, so arrivals are shed with
        # the typed untrusted-capacity reason rather than queued
        hopeless = verify_on and all(
            g in deaths or (g in byz and byz[g].round is None)
            for g in range(self.system.num_gpus)
        )
        quarantined: dict[int, float] = {}

        retry = RetryPolicy(self.config.max_retries, self.config.backoff_base_ms)
        policy = self.serve_config.batch_policy()
        queue = RequestQueue(self.serve_config.max_queue)
        admission = AdmissionController(self.serve_config.admission_config())
        batcher = ContinuousBatcher(policy)

        arrivals: list[tuple[float, int, ProofRequest]] = []
        seen_ids: set[int] = set()

        def submit(request: ProofRequest) -> None:
            if request.req_id in seen_ids:
                raise ValueError(f"duplicate request id {request.req_id}")
            seen_ids.add(request.req_id)
            heapq.heappush(arrivals, (request.arrival_ms, request.req_id, request))

        for request in sorted(initial, key=lambda r: (r.arrival_ms, r.req_id)):
            submit(request)

        tasks: list[Task] = []
        submitted: list[ProofRequest] = []
        emissions: dict[int, list[_Emission]] = {}
        results: dict[int, AffinePoint] = {}
        group_free: dict[int, float] = {g: 0.0 for g in range(len(self.groups))}
        fed_back: set[int] = set()
        last_serial_reduce: str | None = None
        clock = 0.0

        def service_peek(request: ProofRequest) -> float | None:
            dead = self._known_dead(faults, clock)
            live = self._live_groups(dead)
            if not live:
                return None
            sizes = {len(self._surviving_members(g, dead)) for g in live}
            plans = [
                self.plan_cache.peek(self._engine_for(k), request.curve, request.n)
                for k in sorted(sizes)
            ]
            known = [p.service_ms for p in plans if p is not None]
            return max(known) if known else None

        while arrivals or len(queue):
            # 1. pull every due arrival through admission
            while arrivals and arrivals[0][0] <= clock + TIME_EPS:
                _, _, request = heapq.heappop(arrivals)
                submitted.append(request)
                if hopeless:
                    admission.shed_untrusted(request, request.arrival_ms)
                    continue
                earliest_start = max(
                    request.arrival_ms, min(group_free.values(), default=0.0)
                )
                estimate = service_peek(request)
                decision = admission.decide(
                    request,
                    queue_len=len(queue),
                    earliest_start_ms=earliest_start,
                    service_estimate_ms=estimate if estimate is not None else 0.0,
                )
                if decision is None:
                    queue.push(request)

            if not len(queue):
                if not arrivals:
                    break
                clock = max(clock, arrivals[0][0])
                continue

            # 2. fault-degraded capacity at this instant (quarantined GPUs
            # count as lost capacity — same bookkeeping as dead ones)
            dead = self._known_dead(faults, clock) | {
                g for g, t in quarantined.items() if t <= clock + TIME_EPS
            }
            live = self._live_groups(dead)
            if not live:
                # every group currently headless: wait for nothing — the
                # plan was validated to leave at least one survivor, and
                # deaths are permanent, so this cannot happen
                raise FaultRecoveryError("no live GPU group to serve on")
            surviving = sum(len(self._surviving_members(g, dead)) for g in live)
            eff_batch = (
                degraded_batch_size(
                    policy.max_batch_size, surviving, self.system.num_gpus
                )
                if self.serve_config.degrade_on_faults
                else policy.max_batch_size
            )

            # 3. when does the next batch close?
            close_at = batcher.next_close_ms(queue, clock, eff_batch, service_peek)
            assert close_at is not None
            if arrivals and arrivals[0][0] <= close_at + TIME_EPS:
                clock = max(clock, arrivals[0][0])
                continue
            clock = close_at

            # 4. close the batch onto the least-loaded live group
            group = min(live, key=lambda g: (group_free[g], g))
            members = self._surviving_members(group, dead)
            engine = self._engine_for(len(members))
            plans: dict[int, CachedPlan] = {}
            window_sizes: dict[int, int] = {}
            misses = 0
            batch_requests = queue.snapshot()[:eff_batch]
            for request in batch_requests:
                plan, hit = self.plan_cache.lookup(engine, request.curve, request.n)
                plans[request.req_id] = plan
                window_sizes[request.req_id] = plan.window_size
                misses += 0 if hit else 1
            admit_ms = clock + self.serve_config.plan_ms * misses
            batch = batcher.form(
                queue, group, clock, admit_ms, eff_batch, window_sizes, misses
            )
            last_serial_reduce = self._emit_batch(
                batch, plans, members, tasks, emissions, results, last_serial_reduce
            )
            group_free[group] = max(group_free[group], admit_ms) + sum(
                plans[r.req_id].gpu_ms for r in batch.requests
            )

            # 5. resolve in-stream when completions feed back (closed loop)
            # or when verification could quarantine a cheater: later batch
            # closes must see the quarantine the instant it happens, exactly
            # like a detected death — no dispatch after quarantine
            if source is not None or (verify_on and byz):
                timeline = self._resolve(
                    tasks, emissions, faults, retry, group_free, quarantined
                )
            if source is not None:
                for req_id, ems in emissions.items():
                    if req_id in fed_back:
                        continue
                    last = ems[-1]
                    span = timeline.spans.get(last.names["reduce"])
                    if span is None:
                        continue
                    fed_back.add(req_id)
                    follow_up = source.on_complete(last.request, span.end_ms)
                    if follow_up is not None:
                        submit(follow_up)

        timeline = self._resolve(
            tasks, emissions, faults, retry, group_free, quarantined
        )
        return self._finish(
            submitted, emissions, results, admission, batcher, timeline, faults,
            quarantined, trace,
        )

    # -- emission and fault recovery -----------------------------------------

    def _emit_batch(
        self,
        batch: Batch,
        plans: dict[int, CachedPlan],
        members: list[int],
        tasks: list[Task],
        emissions: dict[int, list[_Emission]],
        results: dict[int, AffinePoint],
        last_serial_reduce: str | None,
    ) -> str | None:
        """Emit every request of a formed batch onto the shared timeline."""
        group_gpus = [self.resources.gpu(i) for i in members]
        for request in batch.requests:
            extra = ()
            if not self.serve_config.overlap and last_serial_reduce is not None:
                extra = (last_serial_reduce,)
            names = request_task_names(request.req_id, 0, members)
            tasks.extend(
                emit_request_tasks(
                    request,
                    0,
                    plans[request.req_id],
                    group_gpus,
                    self.resources,
                    batch.admit_ms,
                    stage=f"b{batch.batch_id}",
                    extra_deps=extra,
                )
            )
            emissions[request.req_id] = [
                _Emission(
                    request,
                    0,
                    batch.group,
                    list(members),
                    names,
                    batch.batch_id,
                    batch.formed_ms,
                    batch.admit_ms,
                )
            ]
            last_serial_reduce = names["reduce"]
            if request.payload is not None:
                engine = self._engine_for(len(members))
                results[request.req_id] = engine.execute(
                    list(request.payload.scalars),
                    list(request.payload.points),
                    request.curve,
                ).point
        return last_serial_reduce

    def _resolve(
        self,
        tasks: list[Task],
        emissions: dict[int, list[_Emission]],
        faults: FaultPlan | None,
        retry: RetryPolicy,
        group_free: dict[int, float],
        quarantined: dict[int, float],
    ) -> Timeline:
        """Simulate the shared timeline; under faults, re-plan until every
        emitted request's reduce has completed and passed verification.

        A lost attempt (GPU death before its transfer landed, or a
        permanent transfer error) is re-emitted after the failure's
        detection tick on the request's group shrunk to its survivors —
        or, if the whole group died, on the least-loaded surviving group
        — re-planned at the survivors' capacity through the plan cache.

        With chunk verification on, an attempt that ran on a Byzantine
        GPU cheating in that attempt is *rejected* the moment its reduce
        completes (verify-on-receive: detection is host-side, no
        heartbeat tick), the cheater lands in ``quarantined``, and the
        attempt is re-emitted exactly like a lost one — but only onto
        GPUs that are both alive and trusted.  The verdict itself is
        modelled from the plan's ground truth (like the engine's analytic
        path); the chunk-level 2G2T algebra is exercised by
        :meth:`repro.core.distmsm.DistMsm.execute`.
        """
        byz = faults.byzantine_workers() if faults is not None else {}
        verify_on = self.config.verify_chunks is True or (
            self.config.verify_chunks == "auto" and bool(byz)
        )
        max_rounds = (len(faults.events) if faults is not None else 0) + (
            self.system.num_gpus + 2
        )
        for _ in range(max_rounds):
            check_plan(tasks, label="<serve plan>")
            timeline = simulate(tasks, faults=faults, retry=retry)
            if faults is None:
                return timeline
            pending: list[tuple[_Emission, float]] = []
            for ems in emissions.values():
                last = ems[-1]
                span = timeline.spans.get(last.names["reduce"])
                if span is None:
                    fail_at = max(
                        (
                            f.at_ms
                            for name in (
                                *last.names["gpu"],
                                last.names["xfer"],
                                last.names["reduce"],
                            )
                            for f in (timeline.failure_for(name),)
                            if f is not None
                        ),
                        default=last.admit_ms,
                    )
                    pending.append(
                        (last, detection_time_ms(fail_at, self.config.heartbeat_ms))
                    )
                elif verify_on and any(
                    g in byz and byz[g].cheats_in_round(last.attempt)
                    for g in last.gpu_indices
                ):
                    for g in last.gpu_indices:
                        if g in byz and byz[g].cheats_in_round(last.attempt):
                            quarantined.setdefault(g, span.end_ms)
                    pending.append((last, span.end_ms))
            if not pending:
                return timeline
            for emission, detect in sorted(
                pending, key=lambda p: p[0].request.req_id
            ):
                dead = self._known_dead(faults, detect) | set(quarantined)
                members = self._surviving_members(emission.group, dead)
                group = emission.group
                if not members:
                    live = self._live_groups(dead)
                    if not live:
                        raise FaultRecoveryError(
                            "no trusted GPU left to serve on: every GPU is "
                            "dead or quarantined"
                        )
                    group = min(live, key=lambda g: (group_free[g], g))
                    members = self._surviving_members(group, dead)
                engine = self._engine_for(len(members))
                plan, hit = self.plan_cache.lookup(
                    engine, emission.request.curve, emission.request.n
                )
                not_before = detect + (0.0 if hit else self.serve_config.plan_ms)
                attempt = emission.attempt + 1
                names = request_task_names(
                    emission.request.req_id, attempt, members
                )
                tasks.extend(
                    emit_request_tasks(
                        emission.request,
                        attempt,
                        plan,
                        [self.resources.gpu(i) for i in members],
                        self.resources,
                        not_before,
                        stage=f"b{emission.batch_id}.retry{attempt}",
                    )
                )
                emissions[emission.request.req_id].append(
                    _Emission(
                        emission.request,
                        attempt,
                        group,
                        list(members),
                        names,
                        emission.batch_id,
                        emission.formed_ms,
                        emission.admit_ms,
                    )
                )
                group_free[group] = max(group_free[group], not_before) + plan.gpu_ms
        raise FaultRecoveryError(
            f"serving recovery did not converge within {max_rounds} re-plans"
        )

    # -- result assembly -----------------------------------------------------

    def _finish(
        self,
        submitted: list[ProofRequest],
        emissions: dict[int, list[_Emission]],
        results: dict[int, AffinePoint],
        admission: AdmissionController,
        batcher: ContinuousBatcher,
        timeline: Timeline,
        faults: FaultPlan | None,
        quarantined: dict[int, float],
        trace: "Tracer | None" = None,
    ) -> ServeResult:
        records: list[RequestRecord] = []
        for req_id in sorted(emissions):
            ems = emissions[req_id]
            first, last = ems[0], ems[-1]
            first_spans = [
                timeline.spans[name]
                for name in first.names["gpu"]
                if name in timeline.spans
            ]
            start_ms = (
                min(s.start_ms for s in first_spans)
                if first_spans
                else timeline.spans[last.names["gpu"][0]].start_ms
            )
            complete_ms = timeline.spans[last.names["reduce"]].end_ms
            records.append(
                RequestRecord(
                    req_id=req_id,
                    label=first.request.label,
                    n=first.request.n,
                    arrival_ms=first.request.arrival_ms,
                    formed_ms=first.formed_ms,
                    admit_ms=first.admit_ms,
                    start_ms=start_ms,
                    complete_ms=complete_ms,
                    batch_id=first.batch_id,
                    group=first.group,
                    deadline_ms=first.request.deadline_ms,
                    retries=len(ems) - 1,
                    result=results.get(req_id),
                )
            )
        metrics = ServeMetrics(
            records=records,
            shed=list(admission.shed),
            makespan_ms=timeline.total_ms,
            utilization=timeline.utilization(),
            caches=cache_report(self.plan_cache),
        )
        if trace is not None and trace.enabled:
            self._record_trace(trace, records, admission.shed, timeline)
            if quarantined:
                trace.annotate(quarantined_gpus=sorted(quarantined))
        return ServeResult(
            requests=submitted,
            records=records,
            shed=list(admission.shed),
            batches=batcher.batches,
            timeline=timeline,
            metrics=metrics,
            faults=faults,
            emissions=emissions,
            quarantined=dict(quarantined),
        )

    def _record_trace(
        self,
        trace: "Tracer",
        records: list[RequestRecord],
        shed: list[ShedEvent],
        timeline: Timeline,
    ) -> None:
        """Transcribe a finished serving run onto ``trace``.

        Engine tasks land on their resource tracks via
        :func:`~repro.observe.record.record_timeline`; each request gets
        its own ``req{id}`` lane with queued → batched → executing spans
        and a ``done`` instant; shed requests get instants on the
        ``admission`` track with their reason.
        """
        from repro.observe.record import record_timeline

        trace.annotate(
            gpus=self.system.num_gpus,
            gpu_groups=len(self.groups),
            served=len(records),
            shed=len(shed),
        )
        record_timeline(trace, timeline)
        for record in records:
            lane = f"req{record.req_id}"
            args = {"batch": record.batch_id, "group": record.group, "n": record.n}
            trace.add_span(
                "queued", lane, record.arrival_ms, record.formed_ms,
                cat="request", args=args,
            )
            trace.add_span(
                "batched", lane, record.formed_ms, record.admit_ms,
                cat="request", args=args,
            )
            trace.add_span(
                "executing", lane, record.admit_ms, record.complete_ms,
                cat="request", args={**args, "retries": record.retries},
            )
            trace.instant("done", lane, record.complete_ms, cat="request")
        for event in sorted(shed, key=lambda e: (e.at_ms, e.request.req_id)):
            trace.instant(
                f"req{event.request.req_id}:shed",
                "admission",
                event.at_ms,
                cat="shed",
                args={"reason": event.reason},
            )


def serve_one_at_a_time(
    system: MultiGpuSystem,
    requests: list[ProofRequest],
    config: DistMsmConfig | None = None,
    plan_cache: PlanCache | None = None,
    faults: FaultPlan | None = None,
    trace: "Tracer | None" = None,
) -> ServeResult:
    """The FCFS baseline: one request at a time, no overlap anywhere.

    All GPUs serve each request in turn, and the next request's GPU phase
    waits for the previous request's host reduce — the serving equivalent
    of disabling §3.2.3 pipelining.  Same admission control, same caches,
    so the benchmark comparison isolates continuous batching itself.
    """
    server = MsmProofServer(
        system,
        config,
        ServeConfig(
            gpu_groups=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            overlap=False,
        ),
        plan_cache=plan_cache,
    )
    return server.serve(requests, faults=faults, trace=trace)
