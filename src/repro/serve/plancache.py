"""Persistent plan/precompute caches for the serving layer.

Planning an MSM is not free: the §3.1 window-size auto-tune sweeps the
feasible window range, and each probe runs the full analytic model.  A
serving workload repeats the same (curve, size, GPU-group) combinations
over and over, so the :class:`PlanCache` memoizes the planner's output —
window size, work :class:`~repro.core.planner.Plan`, and the per-request
stage times the batcher schedules with — keyed by
``(curve, n, gpu count, GPU spec, config)`` with LRU eviction and
hit/miss statistics.  The server charges a modelled planning latency on
every miss (``ServeConfig.plan_ms``), so cache behaviour shows up
honestly in request latency.

The sibling precompute-table cache (fixed point vectors, §2.2) lives in
:mod:`repro.msm.precompute` next to its producer; :func:`cache_report`
folds both caches' statistics into one serving-metrics snapshot.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.distmsm import DistMsm
from repro.core.planner import Plan
from repro.curves.params import CurveParams
from repro.gpu.timing import cpu_ec_time_ms
from repro.msm.precompute import PrecomputeCacheStats, precompute_cache


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class CachedPlan:
    """One memoized planning outcome for a (curve, n, group) combination.

    ``gpu_ms`` is the GPU-resident phase (scatter + bucket-sum + launch)
    of the group's makespan, ``transfer_ms`` the device-to-host copy on
    the node link, ``cpu_ms`` the *raw* (un-overlapped) host bucket-reduce
    — the serving timeline owns all overlap accounting, exactly like the
    cross-MSM flow shop (:func:`repro.core.multi_msm.msm_job_from_estimate`).
    """

    window_size: int
    plan: Plan
    gpu_ms: float
    transfer_ms: float
    cpu_ms: float
    total_ms: float

    @property
    def service_ms(self) -> float:
        """Un-overlapped single-request service time (admission estimate)."""
        return self.gpu_ms + self.transfer_ms + self.cpu_ms


class PlanCache:
    """LRU memo of planner output, keyed by curve / n / GPUs / spec / config."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(engine: DistMsm, curve: CurveParams, n: int) -> tuple:
        return (
            curve.name,
            n,
            engine.system.num_gpus,
            engine.system.spec.name,
            engine.config,
        )

    def peek(
        self, engine: DistMsm, curve: CurveParams, n: int
    ) -> CachedPlan | None:
        """Read-only probe: no planning, no stats, no LRU movement.

        Admission control and the batcher's deadline trigger use this —
        feasibility is judged from *known* service times; a shape the
        cache has never planned is admitted optimistically and planned
        when its batch forms.
        """
        return self._entries.get(self.key_for(engine, curve, n))

    def lookup(
        self, engine: DistMsm, curve: CurveParams, n: int
    ) -> tuple[CachedPlan, bool]:
        """The cached plan for ``(curve, n)`` on ``engine``; builds on miss.

        Returns ``(plan, hit)`` so callers can charge planning latency for
        misses.
        """
        key = self.key_for(engine, curve, n)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return cached, True
        self.stats.misses += 1
        built = self._build(engine, curve, n)
        self._entries[key] = built
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return built, False

    def install(
        self, engine: DistMsm, curve: CurveParams, n: int, plan: CachedPlan
    ) -> None:
        """Seed the cache with an externally built plan.

        This is the auto-tuner's write path (:mod:`repro.tune.seed`): the
        entry is stored under the key the *serving* engine will look it up
        with, so subsequent :meth:`lookup` calls hit the tuned plan
        instead of rebuilding the analytic default.  Counts as neither a
        hit nor a miss; evicts LRU entries if the cache is full.
        """
        key = self.key_for(engine, curve, n)
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    @staticmethod
    def build_plan(engine: DistMsm, curve: CurveParams, n: int) -> CachedPlan:
        """Plan ``(curve, n)`` on ``engine`` without touching any cache.

        The same construction :meth:`lookup` memoizes on a miss, exposed
        for producers that build entries for :meth:`install` — the tuner
        plans with a *tuned* engine and installs under the serving
        engine's key.
        """
        return PlanCache._build(engine, curve, n)

    @staticmethod
    def _build(engine: DistMsm, curve: CurveParams, n: int) -> CachedPlan:
        est = engine.estimate(curve, n)
        cpu_raw_ms = cpu_ec_time_ms(
            est.counters.cpu_padd,
            est.counters.cpu_pdbl,
            engine.system.cpu_padd_rate(),
        )
        gpu_ms = est.times.scatter + est.times.bucket_sum + est.times.launch
        return CachedPlan(
            window_size=est.window_size,
            plan=est.plan,
            gpu_ms=gpu_ms,
            transfer_ms=est.times.transfer,
            cpu_ms=cpu_raw_ms,
            total_ms=est.time_ms,
        )

    def clear(self) -> None:
        self._entries.clear()
        self.stats = CacheStats()


def cache_report(plan_cache: PlanCache) -> dict:
    """One JSON-ready snapshot of plan- and precompute-cache behaviour."""
    precompute_stats: PrecomputeCacheStats = precompute_cache().stats
    return {
        "plan": plan_cache.stats.as_dict(),
        "plan_entries": len(plan_cache),
        "precompute": precompute_stats.as_dict(),
        "precompute_entries": len(precompute_cache()),
    }
