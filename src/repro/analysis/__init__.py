"""Experiment runners and table rendering.

One function per paper table/figure lives in
:mod:`repro.analysis.experiments`; :mod:`repro.analysis.tables` renders their
structured results as the plain-text rows/series the benchmarks print.
"""

from repro.analysis.experiments import (
    figure3,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
    table2,
    table3,
    table4,
)
from repro.analysis.tables import format_table

__all__ = [
    "figure3",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "table1",
    "table2",
    "table3",
    "table4",
    "format_table",
]
