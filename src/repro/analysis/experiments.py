"""One runner per paper table/figure (see DESIGN.md §4).

Every function returns a structured result object with a ``render()`` method
producing the rows/series the paper reports.  Timing numbers come from the
calibrated analytic model over the simulated DGX platform; correctness-level
results (Fig. 3, Table 1/2, Fig. 11's feasibility wall, Fig. 12's register
counts) are computed, not transcribed.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from repro.analysis import paper_data
from repro.analysis.tables import format_table
from repro.baselines.registry import all_baselines, baseline_by_name, best_gpu
from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm
from repro.core.scatter import (
    hierarchical_scatter_counts,
    naive_scatter_counts,
    scatter_time_ms,
)
from repro.core.workload import figure3_series
from repro.curves.params import curve_by_name, list_curves
from repro.gpu.cluster import MultiGpuSystem
from repro.gpu.device import SharedMemoryExceeded
from repro.gpu.specs import AMD_6900XT, NVIDIA_A100, RTX_4090, GpuSpec
from repro.gpu.timing import ec_ops_time_ms
from repro.kernels.padd_kernel import KernelDescriptor, KernelOptimisations

CURVE_NAMES = ("BN254", "BLS12-377", "BLS12-381", "MNT4753")


def table4(num_gpus: int = 8):
    """Table 4: end-to-end zkSNARK proving (delegates to the pipeline)."""
    from repro.zksnark.pipeline import table4 as _table4

    return _table4(num_gpus=num_gpus)


# -- Table 1 -----------------------------------------------------------------


@dataclass
class Table1Result:
    rows: list

    def render(self) -> str:
        return format_table(
            ["EC", "scalar bits (k_i)", "point bits (P_i)", "limbs"],
            self.rows,
            title="Table 1: bit widths per elliptic curve",
        )


def table1() -> Table1Result:
    rows = [
        [c.name, c.scalar_bits, c.field_bits, c.num_limbs] for c in list_curves()
    ]
    return Table1Result(rows)


# -- Table 2 -----------------------------------------------------------------


@dataclass
class Table2Result:
    rows: list

    def render(self) -> str:
        return format_table(
            ["#", "Baseline", "Supported elliptic curves"],
            self.rows,
            title="Table 2: baseline GPU implementations",
        )


def table2() -> Table2Result:
    rows = [
        [b.ident, b.name, ", ".join(b.curves)] for b in all_baselines()
    ]
    return Table2Result(rows)


# -- Figure 3 -----------------------------------------------------------------


@dataclass
class Figure3Result:
    curves: list  # WorkloadCurve per GPU count

    def render(self) -> str:
        rows = []
        for curve in self.curves:
            rows.append(
                [
                    f"{curve.num_gpus} GPU(s)",
                    curve.optimal_s,
                    f"{min(curve.normalised_costs):.2f}",
                ]
            )
        return format_table(
            ["platform", "optimal s", "min normalised cost"],
            rows,
            title="Figure 3: per-thread workload vs window size",
        )


def figure3(**kwargs) -> Figure3Result:
    return Figure3Result(figure3_series(**kwargs))


# -- Table 3 -----------------------------------------------------------------


@dataclass
class Table3Cell:
    gpus: int
    bg_ms: float
    bg_ident: int
    dist_ms: float

    @property
    def speedup(self) -> float:
        return self.bg_ms / self.dist_ms


@dataclass
class Table3Row:
    curve: str
    log_n: int
    cells: list


@dataclass
class Table3Result:
    rows: list
    gpu_counts: tuple

    @property
    def average_multi_gpu_speedup(self) -> float:
        vals = [
            c.speedup for row in self.rows for c in row.cells if c.gpus > 1
        ]
        return statistics.mean(vals)

    def render(self) -> str:
        headers = ["curve", "size"]
        for g in self.gpu_counts:
            headers += [f"{g}xA100 BG", f"{g}xA100 DistMSM", "speedup"]
        out_rows = []
        for row in self.rows:
            cells = [row.curve, f"2^{row.log_n}"]
            for cell in row.cells:
                cells += [
                    f"{cell.bg_ms:.2f}({cell.bg_ident})",
                    f"{cell.dist_ms:.2f}",
                    f"{cell.speedup:.1f}x",
                ]
            out_rows.append(cells)
        table = format_table(headers, out_rows, title="Table 3: MSM execution time (ms)")
        return (
            table
            + f"\naverage multi-GPU speedup over BG: "
            + f"{self.average_multi_gpu_speedup:.2f}x "
            + f"(paper: {paper_data.AVERAGE_MULTI_GPU_SPEEDUP}x)"
        )


def table3(
    log_sizes: tuple = (22, 24, 26, 28),
    gpu_counts: tuple = paper_data.TABLE3_GPU_COUNTS,
    curves: tuple = CURVE_NAMES,
) -> Table3Result:
    rows = []
    for name in curves:
        curve = curve_by_name(name)
        for log_n in log_sizes:
            n = 1 << log_n
            cells = []
            for g in gpu_counts:
                system = MultiGpuSystem(g)
                dist = DistMsm(system).estimate(curve, n)
                bg, impl = best_gpu(curve, n, system)
                cells.append(
                    Table3Cell(
                        gpus=g,
                        bg_ms=bg.time_ms,
                        bg_ident=impl.ident,
                        dist_ms=dist.time_ms,
                    )
                )
            rows.append(Table3Row(curve=name, log_n=log_n, cells=cells))
    return Table3Result(rows, gpu_counts)


# -- Figure 8 -----------------------------------------------------------------


@dataclass
class Figure8Series:
    method: str
    gpu_counts: tuple
    speedups: tuple  # over this method's single-GPU time


@dataclass
class Figure8Result:
    series: list
    gpu_counts: tuple

    def render(self) -> str:
        headers = ["method"] + [f"{g} GPUs" for g in self.gpu_counts]
        rows = [
            [s.method] + [f"{v:.2f}x" for v in s.speedups] for s in self.series
        ]
        return format_table(
            headers, rows, title="Figure 8: speedup of multi-GPU over single GPU"
        )


def figure8(
    gpu_counts: tuple = (1, 2, 4, 8, 16, 32),
    log_sizes: tuple = (24, 26, 28),
) -> Figure8Result:
    series = []
    methods = [("DistMSM", None)] + [(b.name, b) for b in all_baselines()]
    for method_name, baseline in methods:
        per_gpu: dict = {g: [] for g in gpu_counts}
        curve_names = baseline.curves if baseline else CURVE_NAMES
        for cname in curve_names:
            curve = curve_by_name(cname)
            for log_n in log_sizes:
                n = 1 << log_n
                base_time = None
                for g in gpu_counts:
                    system = MultiGpuSystem(g)
                    if baseline is None:
                        t = DistMsm(system).estimate(curve, n).time_ms
                    else:
                        t = baseline.estimate(curve, n, system).time_ms
                    if g == 1:
                        base_time = t
                    per_gpu[g].append(base_time / t)
        series.append(
            Figure8Series(
                method=method_name,
                gpu_counts=gpu_counts,
                speedups=tuple(
                    statistics.geometric_mean(per_gpu[g]) for g in gpu_counts
                ),
            )
        )
    return Figure8Result(series, gpu_counts)


# -- Figure 9 -----------------------------------------------------------------


@dataclass
class Figure9Row:
    gpu: str
    int32_tops: float
    tc_int8_tops: float
    mem_bw_gbps: float
    bellperson_ms: float
    distmsm_ms: float

    @property
    def speedup(self) -> float:
        return self.bellperson_ms / self.distmsm_ms


@dataclass
class Figure9Result:
    rows: list
    log_n: int

    def render(self) -> str:
        headers = [
            "GPU", "int32 TOPS", "int8 TC TOPS", "mem GB/s",
            "Bellperson ms", "DistMSM ms", "speedup",
        ]
        out = [
            [
                r.gpu, r.int32_tops, r.tc_int8_tops, r.mem_bw_gbps,
                r.bellperson_ms, r.distmsm_ms, f"{r.speedup:.1f}x",
            ]
            for r in self.rows
        ]
        return format_table(
            headers, out,
            title=f"Figure 9: DistMSM vs Bellperson (BLS12-381, N=2^{self.log_n})",
        )


def figure9(log_n: int = 26) -> Figure9Result:
    curve = curve_by_name("BLS12-381")
    bellperson = baseline_by_name("Bellperson")
    n = 1 << log_n
    rows = []
    for spec in (NVIDIA_A100, RTX_4090, AMD_6900XT):
        system = MultiGpuSystem(1, spec=spec)
        bp = bellperson.estimate(curve, n, system).time_ms
        dist = DistMsm(system).estimate(curve, n).time_ms
        rows.append(
            Figure9Row(
                gpu=spec.name,
                int32_tops=spec.int32_tops,
                tc_int8_tops=spec.tc_int8_tops,
                mem_bw_gbps=spec.mem_bw_gbps,
                bellperson_ms=bp,
                distmsm_ms=dist,
            )
        )
    return Figure9Result(rows, log_n)


# -- Figure 10 ---------------------------------------------------------------


def no_opt_config(curve_name: str = "BLS12-381", n: int = 1 << 26) -> DistMsmConfig:
    """The Fig. 10 baseline: single-GPU Pippenger, no PADD optimisations.

    Multi-GPU support comes from the N-dim augmentation (each GPU runs the
    full single-GPU pipeline on its point slice), so every GPU repeats the
    complete SIMD bucket-reduce — "adding more GPUs reduces the workload
    for bucket-sum but not for bucket-reduce".  The window size is frozen
    at the single-GPU optimum: the "rigid adherence to the single-GPU
    design" the paper calls out.
    """
    probe_cfg = DistMsmConfig(
        scatter="naive",
        multi_gpu="ndim",
        bucket_reduce_on_cpu=False,
        gpu_reduce="simd",
        kernel_opts=KernelOptimisations.none(),
    )
    curve = curve_by_name(curve_name)
    s = DistMsm(MultiGpuSystem(1), probe_cfg).window_size_for(curve, n)
    return replace(probe_cfg, window_size=s)


@dataclass
class Figure10Row:
    gpus: int
    algo_speedup: float  # multi-GPU Pippenger alone
    kernel_speedup: float  # PADD optimisations alone
    calculated: float  # product of the two
    observed: float  # full DistMSM


@dataclass
class Figure10Result:
    rows: list
    curve: str
    log_n: int

    def render(self) -> str:
        headers = ["GPUs", "multi-GPU algo", "PADD opts", "calculated", "observed"]
        out = [
            [
                r.gpus,
                f"{r.algo_speedup:.2f}x",
                f"{r.kernel_speedup:.2f}x",
                f"{r.calculated:.2f}x",
                f"{r.observed:.2f}x",
            ]
            for r in self.rows
        ]
        return format_table(
            headers, out,
            title=(
                f"Figure 10: optimisation breakdown vs NO-OPT "
                f"({self.curve}, N=2^{self.log_n})"
            ),
        )


def figure10(
    curve_name: str = "BLS12-381",
    log_n: int = 26,
    gpu_counts: tuple = (1, 2, 4, 8, 16, 32),
) -> Figure10Result:
    curve = curve_by_name(curve_name)
    n = 1 << log_n
    base_cfg = no_opt_config(curve_name, n)
    kernel_cfg = replace(base_cfg, kernel_opts=KernelOptimisations.all())
    algo_cfg = DistMsmConfig(kernel_opts=KernelOptimisations.none())
    full_cfg = DistMsmConfig()

    rows = []
    for g in gpu_counts:
        system = MultiGpuSystem(g)
        t_base = DistMsm(system, base_cfg).estimate(curve, n).time_ms
        t_algo = DistMsm(system, algo_cfg).estimate(curve, n).time_ms
        t_kernel = DistMsm(system, kernel_cfg).estimate(curve, n).time_ms
        t_full = DistMsm(system, full_cfg).estimate(curve, n).time_ms
        algo_speedup = t_base / t_algo
        kernel_speedup = t_base / t_kernel
        rows.append(
            Figure10Row(
                gpus=g,
                algo_speedup=algo_speedup,
                kernel_speedup=kernel_speedup,
                calculated=algo_speedup * kernel_speedup,
                observed=t_base / t_full,
            )
        )
    return Figure10Result(rows, curve_name, log_n)


# -- Figure 11 ---------------------------------------------------------------


@dataclass
class Figure11Row:
    window_size: int
    naive_ms: float
    hierarchical_ms: float | None  # None = execution failure (shm)

    @property
    def speedup(self) -> float | None:
        if self.hierarchical_ms is None:
            return None
        return self.naive_ms / self.hierarchical_ms


@dataclass
class Figure11Result:
    rows: list
    log_n: int

    def render(self) -> str:
        headers = ["s", "naive (ms)", "hierarchical (ms)", "speedup"]
        out = []
        for r in self.rows:
            out.append(
                [
                    r.window_size,
                    r.naive_ms,
                    "FAIL" if r.hierarchical_ms is None else r.hierarchical_ms,
                    "-" if r.speedup is None else f"{r.speedup:.2f}x",
                ]
            )
        return format_table(
            headers, out,
            title=f"Figure 11: bucket-scatter step, one window, N=2^{self.log_n}",
        )


def figure11(
    log_n: int = 26,
    window_sizes: tuple = tuple(range(6, 25)),
    spec: GpuSpec = NVIDIA_A100,
) -> Figure11Result:
    n = 1 << log_n
    config = DistMsmConfig()
    rows = []
    active = spec.concurrent_threads
    for s in window_sizes:
        buckets = 1 << s
        naive = scatter_time_ms(
            spec, naive_scatter_counts(n, buckets), buckets, active
        )
        try:
            counts = hierarchical_scatter_counts(n, buckets, config)
            hier = scatter_time_ms(spec, counts, buckets, active)
        except SharedMemoryExceeded:
            hier = None
        rows.append(Figure11Row(s, naive, hier))
    return Figure11Result(rows, log_n)


# -- Figure 12 ---------------------------------------------------------------


@dataclass
class Figure12Row:
    curve: str
    stage: str
    per_op_ms: float
    cumulative_speedup: float
    registers: int


@dataclass
class Figure12Result:
    rows: list

    def totals(self) -> dict:
        """Final cumulative speedup per curve."""
        out = {}
        for row in self.rows:
            out[row.curve] = row.cumulative_speedup
        return out

    def render(self) -> str:
        headers = ["curve", "stage", "regs/thread", "cumulative speedup"]
        out = [
            [r.curve, r.stage, r.registers, f"{r.cumulative_speedup:.3f}x"]
            for r in self.rows
        ]
        return format_table(
            headers, out, title="Figure 12: PADD kernel optimisation breakdown (A100)"
        )


def figure12(
    curves: tuple = CURVE_NAMES,
    spec: GpuSpec = NVIDIA_A100,
    ops: int = 1_000_000,
) -> Figure12Result:
    rows = []
    for name in curves:
        curve = curve_by_name(name)
        base_ms = None
        for stage_name, opts in KernelOptimisations.cumulative_stages():
            desc = KernelDescriptor(curve, opts)
            t = ec_ops_time_ms(desc, "pacc", ops, spec)
            if base_ms is None:
                base_ms = t
            rows.append(
                Figure12Row(
                    curve=name,
                    stage=stage_name,
                    per_op_ms=t / ops,
                    cumulative_speedup=base_ms / t,
                    registers=desc.registers_per_thread("pacc"),
                )
            )
    return Figure12Result(rows)
