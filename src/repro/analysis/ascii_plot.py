"""Tiny ASCII line plots for the figure benchmarks' results files.

Not a plotting library — just enough to make ``results/figure*.txt``
readable as *figures* (the paper's curves) rather than bare tables, plus
the horizontal bars (:func:`ascii_bars`) behind the tracer's
flamegraph-style summaries.
"""

from __future__ import annotations

import math


def ascii_plot(
    series: dict,
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_y: bool = False,
    x_labels: list | None = None,
) -> str:
    """Render named y-series (equal lengths) as an ASCII chart.

    ``series`` maps a label to its y values; points are marked with the
    label's first character.  ``log_y`` plots on a log scale (speedup and
    runtime curves span decades).
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    n_points = lengths.pop()
    if n_points < 2:
        raise ValueError("need at least two points per series")

    def transform(v: float) -> float:
        if log_y:
            if v <= 0:
                raise ValueError("log plot needs positive values")
            return math.log10(v)
        return v

    values = [transform(v) for ys in series.values() for v in ys]
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, ys in series.items():
        mark = label[0]
        for i, y in enumerate(ys):
            col = round(i * (width - 1) / (n_points - 1))
            row = height - 1 - round((transform(y) - lo) / span * (height - 1))
            grid[row][col] = mark

    def fmt_axis(v: float) -> str:
        raw = 10**v if log_y else v
        if raw >= 1000:
            return f"{raw:,.0f}"
        return f"{raw:.2f}"

    lines = []
    if title:
        lines.append(title)
    axis_width = max(len(fmt_axis(hi)), len(fmt_axis(lo)))
    for r, row in enumerate(grid):
        if r == 0:
            label = fmt_axis(hi)
        elif r == height - 1:
            label = fmt_axis(lo)
        else:
            label = ""
        lines.append(f"{label:>{axis_width}} |" + "".join(row))
    lines.append(" " * axis_width + " +" + "-" * width)
    if x_labels:
        marks = [" "] * width
        text_line = [" "] * width
        for i, lbl in enumerate(x_labels):
            col = round(i * (width - 1) / (len(x_labels) - 1)) if len(x_labels) > 1 else 0
            s = str(lbl)
            col = min(col, width - len(s))  # keep the label fully visible
            for j, ch in enumerate(s):
                text_line[col + j] = ch
        lines.append(" " * axis_width + "  " + "".join(text_line))
    lines.append(
        "legend: " + ", ".join(f"{label[0]} = {label}" for label in series)
    )
    return "\n".join(lines)


def ascii_bars(
    rows: dict,
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Render named magnitudes as sorted horizontal bars (largest first).

    The flamegraph-style view of a trace: one row per label (a phase or a
    track), bar length proportional to its value, exact value printed at
    the end.  Zero and negative values get an empty bar.
    """
    if not rows:
        raise ValueError("need at least one row")
    top = max(max(rows.values()), 0.0) or 1.0
    label_w = max(len(str(label)) for label in rows)
    ordered = sorted(rows.items(), key=lambda kv: (-kv[1], kv[0]))
    lines = [title] if title else []
    for label, value in ordered:
        filled = round(max(value, 0.0) / top * width)
        bar = "#" * filled + "." * (width - filled)
        suffix = f" {unit}" if unit else ""
        lines.append(f"{label:>{label_w}} |{bar}| {value:.3f}{suffix}")
    return "\n".join(lines)
