"""Plain-text rendering of experiment results."""

from __future__ import annotations


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Render rows as an aligned plain-text table.

    Cells are stringified; column widths adapt to content.
    """
    str_rows = [[_cell(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(str_headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells):
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(str_headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_series(name: str, xs: list, ys: list, x_label: str = "x") -> str:
    """Render one figure series as aligned columns."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return format_table([x_label, name], rows)
