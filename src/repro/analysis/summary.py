"""The reproduction scorecard: paper numbers vs this repository's, computed.

``run_summary()`` executes every experiment at its paper configuration and
emits one table of headline comparisons — the machine-checked counterpart
of EXPERIMENTS.md.  The benchmark suite writes it to
``results/summary.txt``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.analysis import paper_data
from repro.analysis.experiments import (
    figure3,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table3,
)
from repro.analysis.tables import format_table


@dataclass(frozen=True)
class SummaryRow:
    experiment: str
    quantity: str
    paper: str
    measured: str


def run_summary() -> list:
    """Compute every headline comparison; returns :class:`SummaryRow` s."""
    rows: list[SummaryRow] = []

    fig3 = figure3()
    rows.append(
        SummaryRow(
            "Fig 3", "single-GPU optimal window",
            "s = 20", f"s = {fig3.curves[0].optimal_s}",
        )
    )

    t3 = table3()
    dist_ratios, bg_ratios, ident = [], [], 0
    for row in t3.rows:
        pbg, pd, pids = paper_data.TABLE3[(row.curve, row.log_n)]
        for i, cell in enumerate(row.cells):
            dist_ratios.append(cell.dist_ms / pd[i])
            bg_ratios.append(cell.bg_ms / pbg[i])
            ident += cell.bg_ident == pids[i]
    rows.append(
        SummaryRow(
            "Table 3", "median DistMSM time ratio (ours/paper)",
            "1.0", f"{statistics.median(dist_ratios):.2f}",
        )
    )
    rows.append(
        SummaryRow(
            "Table 3", "median Best-GPU time ratio",
            "1.0", f"{statistics.median(bg_ratios):.2f}",
        )
    )
    rows.append(
        SummaryRow(
            "Table 3", "Best-GPU winner identity matches", "64/64", f"{ident}/64"
        )
    )
    rows.append(
        SummaryRow(
            "Table 3", "average multi-GPU speedup over BG",
            f"{paper_data.AVERAGE_MULTI_GPU_SPEEDUP}x",
            f"{t3.average_multi_gpu_speedup:.2f}x",
        )
    )

    fig8 = figure8(gpu_counts=(1, 4, 8, 32), log_sizes=(22, 26))
    by_name = {s.method: s for s in fig8.series}
    rows.append(
        SummaryRow(
            "Fig 8", "DistMSM speedup at 8 GPUs",
            "7.94x", f"{by_name['DistMSM'].speedups[2]:.2f}x",
        )
    )
    worst = min(by_name.values(), key=lambda s: s.speedups[-1])
    rows.append(
        SummaryRow("Fig 8", "worst-scaling method at 32 GPUs", "Yrrid", worst.method)
    )

    fig9 = figure9(log_n=26)
    rows.append(
        SummaryRow(
            "Fig 9", "speedup over Bellperson (A100 / RTX / AMD)",
            "16.5x / 16.5x / 9.4x",
            " / ".join(f"{r.speedup:.1f}x" for r in fig9.rows),
        )
    )

    fig10 = figure10(log_n=26, gpu_counts=(1, 8, 32))
    last = fig10.rows[-1]
    rows.append(
        SummaryRow(
            "Fig 10", "observed vs calculated combined speedup (32 GPUs)",
            "observed > calculated",
            f"{last.observed:.2f}x vs {last.calculated:.2f}x",
        )
    )

    fig11 = figure11(log_n=26)
    by_s = {r.window_size: r for r in fig11.rows}
    rows.append(
        SummaryRow(
            "Fig 11", "hierarchical scatter speedup at s=11 / s=9",
            "6.71x / 18.3x",
            f"{by_s[11].speedup:.2f}x / {by_s[9].speedup:.2f}x",
        )
    )
    first_fail = next(r.window_size for r in fig11.rows if r.hierarchical_ms is None)
    rows.append(
        SummaryRow("Fig 11", "hierarchical failure threshold", "s > 14", f"s >= {first_fail}")
    )

    fig12 = figure12()
    totals = fig12.totals()
    small = statistics.mean(
        totals[c] for c in ("BN254", "BLS12-377", "BLS12-381")
    )
    rows.append(
        SummaryRow(
            "Fig 12", "kernel speedup (small curves / MNT4753)",
            "1.61x / 1.94x", f"{small:.2f}x / {totals['MNT4753']:.2f}x",
        )
    )

    from repro.zksnark.pipeline import table4

    t4 = table4()
    rows.append(
        SummaryRow(
            "Table 4", "end-to-end speedup band",
            "24.9x - 26.7x",
            f"{min(r.speedup for r in t4.rows):.1f}x - "
            f"{max(r.speedup for r in t4.rows):.1f}x",
        )
    )

    from repro.kernels.dag import build_pacc_dag, build_padd_dag, peak_live
    from repro.kernels.scheduler import find_optimal_schedule
    from repro.kernels.spill import schedule_and_spill

    rows.append(
        SummaryRow(
            "§4.2", "PADD/PACC live big integers (written -> optimal)",
            "11->9 / 9->7",
            f"{peak_live(build_padd_dag())}->"
            f"{find_optimal_schedule(build_padd_dag()).peak} / "
            f"{peak_live(build_pacc_dag())}->"
            f"{find_optimal_schedule(build_pacc_dag()).peak}",
        )
    )
    transfers, _ = schedule_and_spill(build_pacc_dag(), 5)
    rows.append(
        SummaryRow(
            "§4.2.2", "big integers transferred (PACC in 5 registers)",
            "4", f"{transfers // 2} (x2 moves)",
        )
    )
    return rows


def render_summary(rows: list | None = None) -> str:
    rows = rows if rows is not None else run_summary()
    return format_table(
        ["experiment", "quantity", "paper", "measured"],
        [[r.experiment, r.quantity, r.paper, r.measured] for r in rows],
        title="Reproduction scorecard (paper vs measured)",
    )
