"""Published numbers from the paper, used for paper-vs-measured reporting.

Keys follow the paper's presentation: Table 3 is indexed by
(curve, log2 size) with per-GPU-count pairs of (Best-GPU ms, DistMSM ms) and
the Best-GPU implementation identifier from Table 2.
"""

TABLE3_GPU_COUNTS = (1, 8, 16, 32)

#: (curve, log2 n) -> ((BG ms per GPU count), (DistMSM ms per GPU count),
#:                     (BG implementation id per GPU count))
TABLE3 = {
    ("BN254", 22): ((63.58, 22.91, 20.35, 9.51), (29.04, 4.78, 2.88, 2.04), (5, 5, 5, 5)),
    ("BN254", 24): ((218.6, 37.08, 37.17, 25.72), (115.1, 16.54, 8.96, 5.43), (5, 5, 5, 5)),
    ("BN254", 26): ((825.1, 113.9, 60.17, 35.51), (414.8, 56.15, 30.36, 17.46), (5, 5, 5, 5)),
    ("BN254", 28): ((2898, 420.6, 218.2, 107.6), (1578, 202.7, 103.8, 54.43), (5, 5, 5, 5)),
    ("BLS12-377", 22): ((30.07, 9.53, 7.71, 6.87), (52.24, 7.79, 4.48, 3.01), (6, 6, 6, 2)),
    ("BLS12-377", 24): ((126.3, 29.84, 21.50, 17.29), (213.6, 30.35, 15.86, 8.75), (6, 6, 6, 2)),
    ("BLS12-377", 26): ((517.4, 105.7, 74.55, 63.38), (728.8, 97.93, 51.46, 28.14), (6, 6, 6, 2)),
    ("BLS12-377", 28): ((4165, 392.2, 276.2, 174.1), (2624, 334.9, 169.9, 87.47), (5, 6, 6, 5)),
    ("BLS12-381", 22): ((132.3, 76.82, 61.04, 33.98), (58.01, 8.52, 4.89, 2.95), (5, 5, 5, 5)),
    ("BLS12-381", 24): ((448.6, 79.99, 97.87, 75.94), (234.4, 33.3, 17.43, 9.4), (5, 5, 5, 5)),
    ("BLS12-381", 26): ((1288, 289.5, 129.1, 76.22), (855.2, 113.7, 59.36, 32.17), (5, 2, 5, 5)),
    ("BLS12-381", 28): ((5038, 907.1, 434.4, 281.7), (3137, 399, 202, 103.4), (5, 2, 5, 2)),
    ("MNT4753", 22): ((11700, 1750, 970.2, 665.0), (863.8, 116.8, 75.62, 45.6), (4, 4, 4, 4)),
    ("MNT4753", 24): ((47900, 5713, 2987, 1756), (4061, 531.2, 270.3, 146.9), (4, 4, 4, 4)),
    ("MNT4753", 26): ((194000, 23800, 11300, 5763), (10800, 1382, 696.2, 353.1), (4, 4, 4, 4)),
    ("MNT4753", 28): ((786000, 104000, 46000, 23700), (38400, 4944, 2477, 1243), (4, 4, 4, 4)),
}

#: Table 4: application -> (R1CS constraint count, libsnark seconds,
#: DistMSM seconds, speedup)
TABLE4 = {
    "Zcash-Sprout": (2_585_747, 145.8, 5.8, 25.0),
    "Otti-SGD": (6_968_254, 291.0, 11.7, 26.7),
    "Zen_acc-LeNet": (77_689_757, 5036.7, 188.7, 24.9),
}

#: end-to-end CPU stage shares (§5.1.1)
STAGE_SHARES_CPU = {"msm": 0.782, "ntt": 0.179, "others": 0.039}

#: single-GPU acceleration factors quoted in §5.1.1
GPU_SPEEDUP_MSM = 871.0
GPU_SPEEDUP_NTT = 898.0

#: Fig. 8 anchors: average multi-GPU speedup over one GPU
FIGURE8 = {
    4: {"most_methods": 3.54},
    8: {"best_baseline": 7.18, "distmsm": 7.94},
    32: {"distmsm_large_n": 31.0},
}

#: Fig. 9: average DistMSM-over-Bellperson speedups per GPU
FIGURE9_SPEEDUPS = {"A100": 16.5, "RTX4090": 16.5, "6900XT": 9.4}
FIGURE9_RTX_OVER_A100 = {"DistMSM": 1.89, "Bellperson": 1.61}

#: Fig. 11 anchors
FIGURE11 = {
    "speedup_s11": 6.71,
    "speedup_s9": 18.3,
    "fails_above": 14,
    "naive_share_of_msm": 0.165,
    "hier_share_of_msm": 0.036,
}

#: Fig. 12 anchors: total kernel speedups and stage effects
FIGURE12 = {
    "total_small_curves": 1.61,
    "total_mnt4753": 1.94,
    "pacc_modmul_ratio": 14 / 10,
    "pacc_occupancy_gain_mnt": 1.273,
    "pacc_occupancy_gain_small": 1.0627,
    "tc_naive_slowdown": 0.932,  # -6.8%
    "tc_compact_gain_small": 1.052,  # +5.2% over the spill stage
    "tc_compact_slowdown_mnt": 0.918,  # -8.2%
    "non_pacc_average_gain": 1.178,
}

#: Table 3 headline: average DistMSM speedup over BG for multi-GPU setups
AVERAGE_MULTI_GPU_SPEEDUP = 6.39
