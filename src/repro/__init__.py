"""DistMSM reproduction: multi-GPU multi-scalar multiplication for ZKPs.

A from-scratch Python implementation of the ASPLOS'24 paper "Accelerating
Multi-Scalar Multiplication for Efficient Zero Knowledge Proofs with
Multi-GPU Systems", with the GPU hardware replaced by a functional +
analytic simulator (see DESIGN.md).

Quickstart::

    from repro import DistMsm, MultiGpuSystem
    from repro.curves.sampling import msm_instance
    from repro.curves.params import curve_by_name

    curve = curve_by_name("BN254")
    scalars, points = msm_instance(curve, 1024, seed=1)
    result = DistMsm(MultiGpuSystem(8)).execute(scalars, points, curve)
    print(result.point, result.time_ms)

Package map (details in DESIGN.md):

* ``repro.fields`` / ``repro.curves`` / ``repro.msm`` — the cryptographic
  substrate: Montgomery arithmetic, XYZZ curve ops, Pippenger MSM.
* ``repro.kernels`` — the paper's §4 kernel techniques (register
  scheduling, explicit spilling, tensor-core Montgomery multiplication).
* ``repro.gpu`` — the simulated multi-GPU platform and timing model.
* ``repro.core`` — DistMSM itself (§3): hierarchical scatter, parallel
  bucket-sum, CPU bucket-reduce, multi-GPU planning.
* ``repro.baselines`` — the six baseline systems of Table 2.
* ``repro.zksnark`` — NTT, R1CS, QAP, BN254 pairing, Groth16.
* ``repro.analysis`` — one runner per paper table/figure.
"""

from repro.core.config import DistMsmConfig
from repro.core.distmsm import DistMsm, DistMsmResult
from repro.curves.params import CurveParams, curve_by_name, list_curves
from repro.curves.point import AffinePoint
from repro.gpu.cluster import MultiGpuSystem
from repro.msm.naive import naive_msm
from repro.msm.pippenger import pippenger_msm
from repro.observe import Tracer

__version__ = "1.0.0"

__all__ = [
    "DistMsm",
    "DistMsmConfig",
    "DistMsmResult",
    "MultiGpuSystem",
    "CurveParams",
    "curve_by_name",
    "list_curves",
    "AffinePoint",
    "naive_msm",
    "pippenger_msm",
    "Tracer",
    "msm",
    "__version__",
]


def msm(scalars, points, curve=None, num_gpus: int = 1):
    """Convenience MSM: returns the result point for ``sum(k_i * P_i)``.

    Uses the DistMSM engine on a simulated ``num_gpus``-GPU system; the
    curve defaults to BN254.
    """
    if curve is None:
        curve = curve_by_name("BN254")
    engine = DistMsm(MultiGpuSystem(num_gpus))
    return engine.execute(list(scalars), list(points), curve).point
