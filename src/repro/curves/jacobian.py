"""Jacobian-coordinate group law — the legacy kernels' representation.

Pre-XYZZ GPU provers (the Mina-era gpu-groth16-prover generation) used
Jacobian coordinates ``(X, Y, Z)`` with ``x = X/Z^2, y = Y/Z^3``.  A general
Jacobian addition costs 16 modular multiplications (11M + 5S) against
XYZZ's 14, and the mixed (affine-operand) addition 11 against PACC's 10 —
one of the reasons the paper's XYZZ choice wins.  This module implements
the Jacobian law so baselines' arithmetic profile can be studied and
cross-validated against the XYZZ implementation.

Formulas: add-2007-bl / madd-2007-bl / dbl-2007-b (EFD).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint

#: modular-multiplication counts (M + S) per operation
JADD_MODMULS = 16
JMIXED_MODMULS = 11
JDBL_MODMULS = 9


@dataclass(frozen=True)
class JacobianPoint:
    """A point in Jacobian coordinates; ``z == 0`` encodes the identity."""

    x: int = 1
    y: int = 1
    z: int = 0

    @staticmethod
    def identity() -> "JacobianPoint":
        return JacobianPoint(1, 1, 0)

    @staticmethod
    def from_affine(pt: AffinePoint) -> "JacobianPoint":
        if pt.infinity:
            return JacobianPoint.identity()
        return JacobianPoint(pt.x, pt.y, 1)

    @property
    def is_identity(self) -> bool:
        return self.z == 0


def jacobian_double(pt: JacobianPoint, curve: CurveParams) -> JacobianPoint:
    """dbl-2007-b, valid for any curve coefficient ``a``."""
    if pt.is_identity or pt.y == 0:
        return JacobianPoint.identity()
    p = curve.p
    xx = pt.x * pt.x % p
    yy = pt.y * pt.y % p
    yyyy = yy * yy % p
    zz = pt.z * pt.z % p
    s = 2 * (pow(pt.x + yy, 2, p) - xx - yyyy) % p
    m = (3 * xx + curve.a * zz % p * zz) % p
    t = (m * m - 2 * s) % p
    y3 = (m * (s - t) - 8 * yyyy) % p
    z3 = (pow(pt.y + pt.z, 2, p) - yy - zz) % p
    return JacobianPoint(t, y3, z3)


def jacobian_add(p1: JacobianPoint, p2: JacobianPoint, curve: CurveParams) -> JacobianPoint:
    """add-2007-bl with the identity / doubling / inverse edge cases."""
    if p1.is_identity:
        return p2
    if p2.is_identity:
        return p1
    p = curve.p
    z1z1 = p1.z * p1.z % p
    z2z2 = p2.z * p2.z % p
    u1 = p1.x * z2z2 % p
    u2 = p2.x * z1z1 % p
    s1 = p1.y * p2.z % p * z2z2 % p
    s2 = p2.y * p1.z % p * z1z1 % p
    h = (u2 - u1) % p
    r = 2 * (s2 - s1) % p
    if h == 0:
        if r == 0:
            return jacobian_double(p1, curve)
        return JacobianPoint.identity()
    i = pow(2 * h, 2, p)
    j = h * i % p
    v = u1 * i % p
    x3 = (r * r - j - 2 * v) % p
    y3 = (r * (v - x3) - 2 * s1 * j) % p
    z3 = (pow(p1.z + p2.z, 2, p) - z1z1 - z2z2) % p * h % p
    return JacobianPoint(x3, y3, z3)


def jacobian_mixed_add(acc: JacobianPoint, pt: AffinePoint, curve: CurveParams) -> JacobianPoint:
    """madd-2007-bl: accumulate an affine point (``Z2 = 1``)."""
    if pt.infinity:
        return acc
    if acc.is_identity:
        return JacobianPoint.from_affine(pt)
    p = curve.p
    z1z1 = acc.z * acc.z % p
    u2 = pt.x * z1z1 % p
    s2 = pt.y * acc.z % p * z1z1 % p
    h = (u2 - acc.x) % p
    r = 2 * (s2 - acc.y) % p
    if h == 0:
        if r == 0:
            return jacobian_double(acc, curve)
        return JacobianPoint.identity()
    hh = h * h % p
    i = 4 * hh % p
    j = h * i % p
    v = acc.x * i % p
    x3 = (r * r - j - 2 * v) % p
    y3 = (r * (v - x3) - 2 * acc.y * j) % p
    z3 = (pow(acc.z + h, 2, p) - z1z1 - hh) % p
    return JacobianPoint(x3, y3, z3)


def jacobian_to_affine(pt: JacobianPoint, curve: CurveParams) -> AffinePoint:
    if pt.is_identity:
        return AffinePoint.identity()
    p = curve.p
    z_inv = pow(pt.z, -1, p)
    z2 = z_inv * z_inv % p
    return AffinePoint(pt.x * z2 % p, pt.y * z2 % p * z_inv % p)


def jacobian_pmul(pt: AffinePoint, k: int, curve: CurveParams) -> AffinePoint:
    """Double-and-add scalar multiplication in Jacobian coordinates."""
    if k < 0:
        from repro.curves.point import affine_neg

        return jacobian_pmul(affine_neg(pt, curve), -k, curve)
    acc = JacobianPoint.identity()
    base = JacobianPoint.from_affine(pt)
    while k:
        if k & 1:
            acc = jacobian_add(acc, base, curve)
        base = jacobian_double(base, curve)
        k >>= 1
    return jacobian_to_affine(acc, curve)
