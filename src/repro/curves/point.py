"""Elliptic-curve point arithmetic in affine and XYZZ coordinates.

The XYZZ system represents a point as ``(X, Y, ZZ, ZZZ)`` with affine
coordinates ``x = X/ZZ``, ``y = Y/ZZZ`` and the invariant ``ZZ^3 = ZZZ^2``.
The paper's kernels use it because a general point addition (PADD,
Algorithm 1) needs 14 modular multiplications and the mixed-input
accumulation variant (PACC, Algorithm 4) only 10 — no modular inversion.

Functions here are the *functional reference*: bit-exact group arithmetic on
Python ints.  The GPU layer charges time for these operations through the
kernel cost model; this module is where correctness lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.curves.params import CurveParams


@dataclass(frozen=True)
class AffinePoint:
    """An affine point, or the point at infinity when ``infinity`` is True."""

    x: int = 0
    y: int = 0
    infinity: bool = False

    @staticmethod
    def identity() -> "AffinePoint":
        return AffinePoint(0, 0, True)

    def __repr__(self):
        if self.infinity:
            return "AffinePoint(infinity)"
        return f"AffinePoint({self.x:#x}, {self.y:#x})"


@dataclass(frozen=True)
class XyzzPoint:
    """A point in XYZZ coordinates; ``zz == 0`` encodes the identity."""

    x: int = 0
    y: int = 0
    zz: int = 0
    zzz: int = 0

    @staticmethod
    def identity() -> "XyzzPoint":
        return XyzzPoint(0, 0, 0, 0)

    @staticmethod
    def from_affine(pt: AffinePoint) -> "XyzzPoint":
        if pt.infinity:
            return XyzzPoint.identity()
        return XyzzPoint(pt.x, pt.y, 1, 1)

    @property
    def is_identity(self) -> bool:
        return self.zz == 0


# Modular-multiplication counts per operation, used by the kernel cost model.
PADD_MODMULS = 14
PACC_MODMULS = 10
PDBL_MODMULS = 9


def xyzz_add(p1: XyzzPoint, p2: XyzzPoint, curve: CurveParams) -> XyzzPoint:
    """General PADD in XYZZ coordinates (paper Algorithm 1).

    Handles the identity, doubling (equal inputs) and inverse (P = -Q)
    special cases that the algorithm's happy path assumes away.
    """
    if p1.is_identity:
        return p2
    if p2.is_identity:
        return p1
    p = curve.p
    u1 = p1.x * p2.zz % p
    u2 = p2.x * p1.zz % p
    s1 = p1.y * p2.zzz % p
    s2 = p2.y * p1.zzz % p
    pp_ = (u2 - u1) % p
    r = (s2 - s1) % p
    if pp_ == 0:
        if r == 0:
            return pdbl(p1, curve)
        return XyzzPoint.identity()
    pp = pp_ * pp_ % p
    ppp = pp * pp_ % p
    q = u1 * pp % p
    x3 = (r * r - ppp - 2 * q) % p
    y3 = (r * (q - x3) - s1 * ppp) % p
    zz3 = p1.zz * p2.zz % p * pp % p
    zzz3 = p1.zzz * p2.zzz % p * ppp % p
    return XyzzPoint(x3, y3, zz3, zzz3)


def xyzz_acc(acc: XyzzPoint, pt: AffinePoint, curve: CurveParams) -> XyzzPoint:
    """PACC: accumulate an affine point into an XYZZ partial sum (Alg. 4).

    Exploits ``ZZ = ZZZ = 1`` for the incoming point, dropping four modular
    multiplications relative to the general PADD.
    """
    if pt.infinity:
        return acc
    if acc.is_identity:
        return XyzzPoint.from_affine(pt)
    p = curve.p
    u2 = pt.x * acc.zz % p
    s2 = pt.y * acc.zzz % p
    pp_ = (u2 - acc.x) % p
    r = (s2 - acc.y) % p
    if pp_ == 0:
        if r == 0:
            return pdbl(acc, curve)
        return XyzzPoint.identity()
    pp = pp_ * pp_ % p
    ppp = pp * pp_ % p
    q = acc.x * pp % p
    x3 = (r * r - ppp - 2 * q) % p
    y3 = (r * (q - x3) - acc.y * ppp) % p
    zz3 = acc.zz * pp % p
    zzz3 = acc.zzz * ppp % p
    return XyzzPoint(x3, y3, zz3, zzz3)


def pdbl(pt: XyzzPoint, curve: CurveParams) -> XyzzPoint:
    """PDBL in XYZZ coordinates (dbl-2008-s-1)."""
    if pt.is_identity:
        return pt
    p = curve.p
    if pt.y == 0:
        return XyzzPoint.identity()
    u = 2 * pt.y % p
    v = u * u % p
    w = u * v % p
    s = pt.x * v % p
    m = (3 * pt.x * pt.x + curve.a * pt.zz % p * pt.zz) % p
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - w * pt.y) % p
    zz3 = v * pt.zz % p
    zzz3 = w * pt.zzz % p
    return XyzzPoint(x3, y3, zz3, zzz3)


def to_affine(pt: XyzzPoint, curve: CurveParams) -> AffinePoint:
    """Convert from XYZZ to affine coordinates (one inversion)."""
    if pt.is_identity:
        return AffinePoint.identity()
    p = curve.p
    zz_inv = pow(pt.zz, -1, p)
    zzz_inv = pow(pt.zzz, -1, p)
    return AffinePoint(pt.x * zz_inv % p, pt.y * zzz_inv % p)


def xyzz_neg(pt: XyzzPoint, curve: CurveParams) -> XyzzPoint:
    """Negate a point (mirror across the x axis)."""
    if pt.is_identity:
        return pt
    return XyzzPoint(pt.x, (-pt.y) % curve.p, pt.zz, pt.zzz)


def affine_neg(pt: AffinePoint, curve: CurveParams) -> AffinePoint:
    if pt.infinity:
        return pt
    return AffinePoint(pt.x, (-pt.y) % curve.p)


def pmul(pt: AffinePoint, k: int, curve: CurveParams) -> AffinePoint:
    """Point-scalar multiplication ``k * pt`` via double-and-add."""
    if k < 0:
        return pmul(affine_neg(pt, curve), -k, curve)
    acc = XyzzPoint.identity()
    base = XyzzPoint.from_affine(pt)
    while k:
        if k & 1:
            acc = xyzz_add(acc, base, curve)
        base = pdbl(base, curve)
        k >>= 1
    return to_affine(acc, curve)


def pmul_ladder(pt: AffinePoint, k: int, curve: CurveParams) -> AffinePoint:
    """Montgomery-ladder scalar multiplication: fixed operation schedule.

    Executes exactly one PADD and one PDBL per scalar bit regardless of the
    bit values — the constant-time discipline signing code needs (our
    simulator doesn't model side channels, but the prover's setup-phase
    scalar multiplications would use this form in production).
    """
    if k < 0:
        return pmul_ladder(affine_neg(pt, curve), -k, curve)
    if k == 0 or pt.infinity:
        return AffinePoint.identity()
    r0 = XyzzPoint.identity()
    r1 = XyzzPoint.from_affine(pt)
    for bit_idx in range(k.bit_length() - 1, -1, -1):
        if (k >> bit_idx) & 1:
            r0 = xyzz_add(r0, r1, curve)
            r1 = pdbl(r1, curve)
        else:
            r1 = xyzz_add(r0, r1, curve)
            r0 = pdbl(r0, curve)
    return to_affine(r0, curve)


def pmul_wnaf(pt: AffinePoint, k: int, curve: CurveParams, width: int = 4) -> AffinePoint:
    """Scalar multiplication via width-w NAF recoding.

    Precomputes the odd multiples ``P, 3P, ..., (2^(w-1) - 1)P`` and walks
    the sparse digit string — the single-scalar analogue of Pippenger's
    windowing, with ~1/(w+1) additions per bit.
    """
    from repro.curves.scalar import wnaf

    if k < 0:
        return pmul_wnaf(affine_neg(pt, curve), -k, curve, width)
    if k == 0 or pt.infinity:
        return AffinePoint.identity()
    digits = wnaf(k, width)

    # odd multiples in XYZZ: table[d] = (2d + 1) * P
    base = XyzzPoint.from_affine(pt)
    double_p = pdbl(base, curve)
    table = [base]
    for _ in range((1 << (width - 1)) // 2 - 1):
        table.append(xyzz_add(table[-1], double_p, curve))

    acc = XyzzPoint.identity()
    for digit in reversed(digits):
        acc = pdbl(acc, curve)
        if digit > 0:
            acc = xyzz_add(acc, table[(digit - 1) // 2], curve)
        elif digit < 0:
            acc = xyzz_add(acc, xyzz_neg(table[(-digit - 1) // 2], curve), curve)
    return to_affine(acc, curve)


def pmul_affine(pt: AffinePoint, k: int, p: int, a: int) -> AffinePoint:
    """Scalar multiplication with only (p, a) known — used during registry
    construction before a :class:`CurveParams` exists (cofactor clearing)."""
    stub = _LawOnly(p, a)
    acc = XyzzPoint.identity()
    base = XyzzPoint.from_affine(pt)
    while k:
        if k & 1:
            acc = xyzz_add(acc, base, stub)
        base = pdbl(base, stub)
        k >>= 1
    return to_affine(acc, stub)


class _LawOnly:
    """Minimal stand-in exposing just the fields the group law reads."""

    __slots__ = ("p", "a")

    def __init__(self, p: int, a: int):
        self.p = p
        self.a = a
