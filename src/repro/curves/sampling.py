"""Deterministic generation of MSM problem instances.

The paper's benchmarks draw random point/scalar vectors per curve.  Scalar
multiplication per point would be O(λ) group operations each; instead we use
a random-walk construction (each point is the previous plus a secret stride,
one PADD per point) followed by batch normalisation to affine coordinates
with a single field inversion (Montgomery's trick).
"""

from __future__ import annotations

import random

from repro.curves.params import CurveParams
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    pmul,
    xyzz_add,
)


def sample_scalars(curve: CurveParams, n: int, seed: int = 0) -> list[int]:
    """``n`` uniformly random scalars in ``[0, r)``, deterministic in ``seed``."""
    rng = random.Random(("scalars", curve.name, seed).__repr__())
    return [rng.randrange(curve.r) for _ in range(n)]


def sample_points(curve: CurveParams, n: int, seed: int = 0) -> list[AffinePoint]:
    """``n`` finite curve points via a seeded random walk from the generator.

    On tiny curves (tests) a randomly chosen stride can have small order,
    collapsing the walk onto a short cycle through the identity; degenerate
    walks are detected and re-rolled deterministically.
    """
    if n <= 0:
        return []
    rng = random.Random(("points", curve.name, seed).__repr__())
    generator = AffinePoint(curve.gx, curve.gy)
    for _ in range(64):
        base = pmul(generator, rng.randrange(1, curve.r), curve)
        stride = pmul(generator, rng.randrange(1, curve.r), curve)
        if base.infinity or stride.infinity:
            continue
        stride_xyzz = XyzzPoint.from_affine(stride)
        walk = []
        current = XyzzPoint.from_affine(base)
        for _ in range(n):
            walk.append(current)
            current = xyzz_add(current, stride_xyzz, curve)
        points = batch_to_affine(walk, curve)
        if any(pt.infinity for pt in points):
            continue  # the walk crossed the identity — reroll
        probe = points[: min(n, 32)]
        if len({(pt.x, pt.y) for pt in probe}) < min(len(probe), _group_bound(curve)):
            continue
        return points
    raise RuntimeError(f"could not build a non-degenerate walk on {curve.name}")


def _group_bound(curve: CurveParams) -> int:
    """Distinctness cannot exceed the group size (matters for toy curves)."""
    return max(2, min(1 << 20, curve.r - 1))


def batch_to_affine(points: list[XyzzPoint], curve: CurveParams) -> list[AffinePoint]:
    """Normalise many XYZZ points with one inversion (Montgomery's trick).

    Inverts the product of all ``ZZZ`` and ``ZZ`` values at once, then peels
    individual inverses off with two multiplications per point.
    """
    p = curve.p
    finite = [(i, pt) for i, pt in enumerate(points) if not pt.is_identity]
    out: list[AffinePoint] = [AffinePoint.identity()] * len(points)
    if not finite:
        return out

    # prefix[k] = product of the first k (zz * zzz) values
    prefix = [1]
    for _, pt in finite:
        prefix.append(prefix[-1] * (pt.zz * pt.zzz % p) % p)
    inv = pow(prefix[-1], -1, p)
    for k in range(len(finite) - 1, -1, -1):
        idx, pt = finite[k]
        pair_inv = inv * prefix[k] % p  # 1 / (zz_k * zzz_k)
        inv = inv * (pt.zz * pt.zzz % p) % p
        zz_inv = pair_inv * pt.zzz % p
        zzz_inv = pair_inv * pt.zz % p
        out[idx] = AffinePoint(pt.x * zz_inv % p, pt.y * zzz_inv % p)
    return out


def msm_instance(
    curve: CurveParams,
    n: int,
    seed: int = 0,
) -> tuple[list[int], list[AffinePoint]]:
    """A full MSM instance: ``n`` scalars and ``n`` base points."""
    return sample_scalars(curve, n, seed), sample_points(curve, n, seed)
