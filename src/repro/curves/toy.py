"""A tiny self-validating curve for tests and micro-benchmarks.

``y^2 = x^3 + 7`` over ``GF(1009)``: small enough to enumerate the whole
group (order computed by brute force, generator chosen with maximal order),
so group-law edge cases — doubling, inverse pairs, the identity — surface
quickly under randomised testing.  Real experiments use the registry
curves; this one exists purely as instrumentation.
"""

from __future__ import annotations

from functools import lru_cache

from repro.curves.params import CurveParams


def _divisors(n: int) -> list:
    out = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            out.extend([d, n // d])
        d += 1
    return sorted(set(out))


@lru_cache(maxsize=1)
def toy_curve() -> CurveParams:
    """Build (once) the toy curve with a maximal-order generator."""
    from repro.curves.point import AffinePoint, pmul_affine

    p = 1009
    a, b = 0, 7
    points = 1  # the point at infinity
    for x in range(p):
        rhs = (x * x * x + a * x + b) % p
        if rhs == 0:
            points += 1
        elif pow(rhs, (p - 1) // 2, p) == 1:
            points += 2

    def order_of(x: int, y: int) -> int:
        for d in _divisors(points):
            if pmul_affine(AffinePoint(x, y), d, p, a).infinity:
                return d
        return points

    gx = gy = None
    best_order = 0
    for x in range(p):
        rhs = (x**3 + a * x + b) % p
        if rhs == 0 or pow(rhs, (p - 1) // 2, p) != 1:
            continue
        y = next(yy for yy in range(p) if (yy * yy) % p == rhs)
        order = order_of(x, y)
        if order > best_order:
            best_order, gx, gy = order, x, y
        if best_order == points:
            break
    return CurveParams(
        name="TOY1009",
        p=p,
        r=points,  # the full group order; fine for scalar reduction
        a=a,
        b=b,
        gx=gx,
        gy=gy,
        cofactor=1,
        synthetic=True,
        tags=("toy",),
    )
