"""Curve registry for the curves the paper evaluates (Table 1).

Parameters for BN254, BLS12-377 and BLS12-381 are derived from their family
parameters (the BN parameter ``t`` and the BLS12 parameter ``u``), which makes
them self-checking: tests re-derive the field sizes from the closed-form
family polynomials and assert primality, generator membership and subgroup
order.

MNT4-753 is represented by a **synthetic** 753-bit curve (see DESIGN.md §2):
the paper uses MNT4753 purely as its 24-limb register-pressure stress point,
and any 753-bit short-Weierstrass curve exercises identical code paths and
costs.  The synthetic prime has the closed form ``2^752 + 2^64 + 0x3cf``
(smallest prime ``p ≡ 3 (mod 4)`` above ``2^752 + 2^64``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.fields.limbs import limb_count

# -- family parameters -------------------------------------------------------

BN254_T = 4965661367192848881
BLS12_377_U = 0x8508C00000000001
BLS12_381_U = -0xD201000000010000

_SYNTHETIC_753_PRIME = (1 << 752) + (1 << 64) + 0x3CF


@dataclass(frozen=True)
class CurveParams:
    """A short-Weierstrass curve ``y^2 = x^3 + a x + b`` over ``GF(p)``.

    Attributes
    ----------
    name: canonical curve name as used in the paper.
    p: base-field modulus (coordinates).
    r: scalar-field modulus (MSM scalars are taken mod ``r``).
    a, b: curve coefficients.
    gx, gy: affine coordinates of the group generator.
    cofactor: ``#E(GF(p)) / r`` for the prime-order subgroup.
    scalar_bits: λ, the scalar bit width used by Pippenger windowing.
    synthetic: True when parameters are a documented stand-in (MNT4753).
    """

    name: str
    p: int
    r: int
    a: int
    b: int
    gx: int
    gy: int
    cofactor: int = 1
    synthetic: bool = False
    tags: tuple = field(default_factory=tuple)

    @property
    def scalar_bits(self) -> int:
        return self.r.bit_length()

    @property
    def field_bits(self) -> int:
        return self.p.bit_length()

    @property
    def num_limbs(self) -> int:
        """32-bit limbs per base-field element (the kernel cost driver)."""
        return limb_count(self.field_bits)

    def is_on_curve(self, x: int, y: int) -> bool:
        """Whether affine ``(x, y)`` satisfies the curve equation."""
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def __repr__(self):
        return f"CurveParams({self.name}, p={self.field_bits}b, r={self.scalar_bits}b)"


def _bn_fields(t: int) -> tuple[int, int]:
    p = 36 * t**4 + 36 * t**3 + 24 * t**2 + 6 * t + 1
    r = 36 * t**4 + 36 * t**3 + 18 * t**2 + 6 * t + 1
    return p, r


def _bls12_fields(u: int) -> tuple[int, int, int]:
    r = u**4 - u**2 + 1
    p = ((u - 1) ** 2 * r) // 3 + u
    h1 = (u - 1) ** 2 // 3
    return p, r, h1


def _sqrt_3_mod_4(value: int, p: int) -> int | None:
    root = pow(value % p, (p + 1) // 4, p)
    return root if (root * root - value) % p == 0 else None


def _find_subgroup_generator(p: int, a: int, b: int, cofactor: int, r: int) -> tuple[int, int]:
    """Find a point of order ``r`` by cofactor-clearing a small-x point.

    Robust against mis-remembered generator constants: only ``p``, ``a``,
    ``b``, ``r`` and the cofactor need to be correct, which tests verify via
    the family-polynomial derivations.
    """
    from repro.curves.point import AffinePoint, pmul_affine

    for x in range(1, 1000):
        rhs = (x * x * x + a * x + b) % p
        if p % 4 == 3:
            y = _sqrt_3_mod_4(rhs, p)
        else:
            from repro.fields.prime_field import PrimeField

            y = PrimeField(p).sqrt(rhs)
        if y is None:
            continue
        candidate = AffinePoint(x, y)
        cleared = pmul_affine(candidate, cofactor, p, a)
        if not cleared.infinity:
            return cleared.x, cleared.y
    raise RuntimeError("no generator found in the first 1000 x values")


@lru_cache(maxsize=None)
def _build_registry() -> dict[str, CurveParams]:
    curves = {}

    p, r = _bn_fields(BN254_T)
    curves["BN254"] = CurveParams(
        name="BN254",
        p=p,
        r=r,
        a=0,
        b=3,
        gx=1,
        gy=2,
        cofactor=1,
        tags=("pairing", "groth16"),
    )

    p, r, h1 = _bls12_fields(BLS12_377_U)
    gx, gy = _find_subgroup_generator(p, 0, 1, h1, r)
    curves["BLS12-377"] = CurveParams(
        name="BLS12-377",
        p=p,
        r=r,
        a=0,
        b=1,
        gx=gx,
        gy=gy,
        cofactor=h1,
        tags=("pairing",),
    )

    p, r, h1 = _bls12_fields(BLS12_381_U)
    curves["BLS12-381"] = CurveParams(
        name="BLS12-381",
        p=p,
        r=r,
        a=0,
        b=4,
        gx=0x17F1D3A73197D7942695638C4FA9AC0FC3688C4F9774B905A14E3A3F171BAC586C55E83FF97A1AEFFB3AF00ADB22C6BB,
        gy=0x08B3F481E3AAA0F1A09E30ED741D8AE4FCF5E095D5D00AF600DB18CB2C04B3EDD03CC744A2888AE40CAA232946C5E7E1,
        cofactor=h1,
        tags=("pairing",),
    )

    p753 = _SYNTHETIC_753_PRIME
    gy753 = _sqrt_3_mod_4((1 + 2 + 28) % p753, p753)
    if gy753 is None:  # pragma: no cover - fixed constant, checked by tests
        raise AssertionError("synthetic MNT4753 generator construction failed")
    curves["MNT4753"] = CurveParams(
        name="MNT4753",
        p=p753,
        r=p753,  # scalars are full-width 753-bit values, as in MNT4-753
        a=2,
        b=28,
        gx=1,
        gy=gy753,
        cofactor=1,
        synthetic=True,
        tags=("stress",),
    )
    return curves


def curve_by_name(name: str) -> CurveParams:
    """Look up a curve by its paper name (case-insensitive)."""
    registry = _build_registry()
    for key, params in registry.items():
        if key.lower() == name.lower():
            return params
    raise KeyError(f"unknown curve {name!r}; known: {sorted(registry)}")


def list_curves() -> list[CurveParams]:
    """All registered curves, in the paper's Table 1 order."""
    registry = _build_registry()
    return [registry[n] for n in ("BN254", "BLS12-377", "BLS12-381", "MNT4753")]


def __getattr__(name: str):
    """Module-level lazy curve constants: BN254, BLS12_377, BLS12_381, MNT4753."""
    aliases = {
        "BN254": "BN254",
        "BLS12_377": "BLS12-377",
        "BLS12_381": "BLS12-381",
        "MNT4753": "MNT4753",
    }
    if name in aliases:
        return curve_by_name(aliases[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
