"""Small number-theory helpers used by the curve registry and tests."""

from __future__ import annotations

import random

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def is_probable_prime(n: int, rounds: int = 40, seed: int = 0xD157) -> bool:
    """Miller–Rabin primality test with deterministic pseudo-random bases.

    ``rounds = 40`` gives an error probability below 2^-80, ample for
    validating curve parameters.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    rng = random.Random(seed)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime_3_mod_4(start: int) -> int:
    """Smallest prime ``p >= start`` with ``p % 4 == 3``."""
    candidate = start
    if candidate % 2 == 0:
        candidate += 1
    while candidate % 4 != 3:
        candidate += 2
    while not is_probable_prime(candidate):
        candidate += 4
    return candidate
