"""Scalar window decomposition for Pippenger's algorithm.

Pippenger splits each λ-bit scalar into ``ceil(λ/s)`` windows of ``s`` bits
(§2.3).  Two recodings are provided:

* ``unsigned_windows`` — the textbook decomposition with digits in
  ``[0, 2^s)``.
* ``signed_windows`` — the signed-digit recoding used by competition-grade
  implementations (ZPrize winners, §6): digits in ``(-2^(s-1), 2^(s-1)]``,
  halving the number of buckets because ``-d`` buckets fold onto ``d`` via
  point negation.
"""

from __future__ import annotations


def num_windows(scalar_bits: int, window_size: int) -> int:
    """``ceil(λ / s)`` — the number of Pippenger windows."""
    if window_size <= 0:
        raise ValueError(f"window size must be positive, got {window_size}")
    return -(-scalar_bits // window_size)


def unsigned_windows(k: int, window_size: int, count: int) -> list[int]:
    """Split ``k`` into ``count`` unsigned ``window_size``-bit digits.

    >>> unsigned_windows(0b101101, 2, 3)
    [1, 3, 2]
    """
    if k < 0:
        raise ValueError("scalars must be non-negative")
    mask = (1 << window_size) - 1
    digits = []
    for _ in range(count):
        digits.append(k & mask)
        k >>= window_size
    if k:
        raise ValueError("scalar does not fit in the requested windows")
    return digits


def signed_windows(k: int, window_size: int, count: int) -> list[int]:
    """Signed-digit decomposition with digits in ``(-2^(s-1), 2^(s-1)]``.

    Digits ``d > 2^(s-1)`` are replaced by ``d - 2^s`` with a carry into the
    next window.  One extra digit slot is returned (``count + 1``) to hold a
    possible final carry; the identity ``sum(d_j * 2^(j*s)) == k`` always
    holds.
    """
    if k < 0:
        raise ValueError("scalars must be non-negative")
    base = 1 << window_size
    half = base >> 1
    digits = []
    carry = 0
    for _ in range(count):
        digit = (k & (base - 1)) + carry
        k >>= window_size
        if digit > half:
            digit -= base
            carry = 1
        else:
            carry = 0
        digits.append(digit)
    if k:
        raise ValueError("scalar does not fit in the requested windows")
    digits.append(carry)
    return digits


def reassemble(digits: list[int], window_size: int) -> int:
    """Inverse of the decompositions: ``sum(d_j * 2^(j*s))``."""
    return sum(d << (i * window_size) for i, d in enumerate(digits))


def wnaf(k: int, width: int) -> list[int]:
    """Width-``w`` non-adjacent form: digits are zero or odd in
    ``(-2^(w-1), 2^(w-1))``, with at most one non-zero digit per ``w``
    consecutive positions.

    The sparse recoding single-scalar multipliers use:
    ``sum(d_i * 2^i) == k`` always holds, and the expected non-zero density
    is ``1/(w+1)``.

    >>> wnaf(7, 2)
    [-1, 0, 0, 1]
    """
    if width < 2:
        raise ValueError(f"wNAF width must be >= 2, got {width}")
    if k < 0:
        return [-d for d in wnaf(-k, width)]
    digits = []
    base = 1 << width
    half = base >> 1
    while k:
        if k & 1:
            d = k % base
            if d >= half:
                d -= base
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def wnaf_density(digits: list[int]) -> float:
    """Fraction of non-zero digits in a recoding."""
    if not digits:
        return 0.0
    return sum(1 for d in digits if d) / len(digits)
