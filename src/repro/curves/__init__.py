"""Elliptic-curve substrate: parameters, point arithmetic, scalar recoding.

Implements the short-Weierstrass curves the paper evaluates (Table 1) and the
XYZZ-coordinate group law its kernels use (Algorithms 1 and 4):

* :mod:`repro.curves.params` — the curve registry (BN254, BLS12-377,
  BLS12-381, MNT4753) with self-checking parameter derivations.
* :mod:`repro.curves.point` — affine and XYZZ point arithmetic: PADD, PACC,
  PDBL and double-and-add PMUL.
* :mod:`repro.curves.scalar` — window decomposition and signed-digit recoding
  for Pippenger's algorithm.
"""

from repro.curves.params import (
    BN254,
    BLS12_377,
    BLS12_381,
    MNT4753,
    CurveParams,
    curve_by_name,
    list_curves,
)
from repro.curves.jacobian import JacobianPoint, jacobian_add, jacobian_pmul
from repro.curves.point import (
    AffinePoint,
    XyzzPoint,
    pdbl,
    pmul,
    pmul_wnaf,
    xyzz_add,
    xyzz_acc,
)
from repro.curves.scalar import signed_windows, unsigned_windows, wnaf

__all__ = [
    "BN254",
    "BLS12_377",
    "BLS12_381",
    "MNT4753",
    "CurveParams",
    "curve_by_name",
    "list_curves",
    "AffinePoint",
    "XyzzPoint",
    "JacobianPoint",
    "jacobian_add",
    "jacobian_pmul",
    "pdbl",
    "pmul",
    "pmul_wnaf",
    "xyzz_add",
    "xyzz_acc",
    "signed_windows",
    "unsigned_windows",
    "wnaf",
]
