"""Batch XYZZ point arithmetic over lane-vectorized field arrays.

Struct-of-arrays mirror of :mod:`repro.curves.point`: a batch of ``N``
XYZZ points is four field lane arrays (X, Y, ZZ, ZZZ), a batch of affine
points is two lane arrays plus an infinity mask.  The group-law functions
reproduce :func:`repro.curves.point.xyzz_add` / :func:`xyzz_acc` /
:func:`pdbl` *including every special case* — identity operands, doubling
(P + P), and inverse (P + (-P)) — via lane masks, because bucket columns on
small curves hit all of them routinely.

Correctness contract: for any lane, decoding the batch result yields the
same canonical integers as running the scalar function on the decoded
inputs.  The differential test tier pins this across every registered
curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.curves.params import CurveParams
from repro.curves.point import AffinePoint, XyzzPoint
from repro.fields.batch import BatchPrimeField


@dataclass
class BatchXyzz:
    """``n`` XYZZ points as four field lane arrays; ``zz == 0`` is identity."""

    x: np.ndarray
    y: np.ndarray
    zz: np.ndarray
    zzz: np.ndarray

    def __len__(self) -> int:
        return self.x.shape[0]

    def take(self, idx: np.ndarray) -> "BatchXyzz":
        """Gather lanes by index (numpy fancy indexing, copies)."""
        return BatchXyzz(self.x[idx], self.y[idx], self.zz[idx], self.zzz[idx])

    def put(self, idx: np.ndarray, src: "BatchXyzz") -> None:
        """Scatter ``src`` into lanes ``idx`` in place."""
        self.x[idx] = src.x
        self.y[idx] = src.y
        self.zz[idx] = src.zz
        self.zzz[idx] = src.zzz


@dataclass
class BatchAffine:
    """``n`` affine points as two lane arrays plus an infinity mask."""

    x: np.ndarray
    y: np.ndarray
    infinity: np.ndarray

    def __len__(self) -> int:
        return self.x.shape[0]

    def take(self, idx: np.ndarray) -> "BatchAffine":
        return BatchAffine(self.x[idx], self.y[idx], self.infinity[idx])


class BatchCurve:
    """Vectorized group law for one curve over its :class:`BatchPrimeField`.

    Constructed once per (curve, batch size class) via :func:`batch_curve`;
    holds the encoded curve constant ``a`` so point ops are allocation-only.
    """

    def __init__(self, curve: CurveParams):
        self.curve = curve
        self.field: BatchPrimeField = BatchPrimeField(curve.p)
        self._a = self.field.constant(curve.a)

    # -- encoding ----------------------------------------------------------

    def encode_affine(self, points: Sequence[AffinePoint]) -> BatchAffine:
        """Affine points -> lane arrays (infinity lanes encode as zeros)."""
        xs = [0 if pt.infinity else pt.x for pt in points]
        ys = [0 if pt.infinity else pt.y for pt in points]
        inf = np.fromiter(
            (pt.infinity for pt in points), dtype=bool, count=len(points)
        )
        return BatchAffine(self.field.encode(xs), self.field.encode(ys), inf)

    def encode_xyzz(self, points: Sequence[XyzzPoint]) -> BatchXyzz:
        f = self.field
        return BatchXyzz(
            f.encode([pt.x for pt in points]),
            f.encode([pt.y for pt in points]),
            f.encode([pt.zz for pt in points]),
            f.encode([pt.zzz for pt in points]),
        )

    def identity(self, n: int) -> BatchXyzz:
        f = self.field
        return BatchXyzz(f.zeros(n), f.zeros(n), f.zeros(n), f.zeros(n))

    def from_affine(self, pts: BatchAffine) -> BatchXyzz:
        """Lift affine lanes to XYZZ (ZZ = ZZZ = 1; infinity -> identity)."""
        f = self.field
        n = len(pts)
        one = np.broadcast_to(f.constant(1), f.zeros(n).shape).copy()
        zero = f.zeros(n)
        fin = ~pts.infinity
        return BatchXyzz(
            f.select(fin, pts.x, zero),
            f.select(fin, pts.y, zero),
            f.select(fin, one, zero),
            f.select(fin, one, zero),
        )

    def decode(self, pts: BatchXyzz) -> list[XyzzPoint]:
        """Lane arrays -> scalar :class:`XyzzPoint` list (canonical ints)."""
        f = self.field
        xs, ys = f.decode(pts.x), f.decode(pts.y)
        zzs, zzzs = f.decode(pts.zz), f.decode(pts.zzz)
        return [
            XyzzPoint.identity() if zz == 0 else XyzzPoint(x, y, zz, zzz)
            for x, y, zz, zzz in zip(xs, ys, zzs, zzzs)
        ]

    def is_identity(self, pts: BatchXyzz) -> np.ndarray:
        return self.field.is_zero(pts.zz)

    def neg_affine(self, pts: BatchAffine, mask: np.ndarray) -> BatchAffine:
        """Negate the lanes selected by ``mask`` (mirror across the x axis)."""
        f = self.field
        return BatchAffine(
            pts.x, f.select(mask, f.neg(pts.y), pts.y), pts.infinity
        )

    # -- group law ---------------------------------------------------------

    def pdbl(self, pts: BatchXyzz) -> BatchXyzz:
        """Lanewise PDBL (dbl-2008-s-1); identity and y == 0 lanes -> identity."""
        f = self.field
        u = f.double(pts.y)
        v = f.mul(u, u)
        w = f.mul(u, v)
        s = f.mul(pts.x, v)
        m = f.add(
            f.triple(f.mul(pts.x, pts.x)),
            f.mul(f.mul(self._a, pts.zz), pts.zz),
        )
        x3 = f.sub(f.mul(m, m), f.double(s))
        y3 = f.sub(f.mul(m, f.sub(s, x3)), f.mul(w, pts.y))
        zz3 = f.mul(v, pts.zz)
        zzz3 = f.mul(w, pts.zzz)
        dead = np.logical_or(self.is_identity(pts), f.is_zero(pts.y))
        zero = f.zeros(len(pts))
        return BatchXyzz(
            f.select(dead, zero, x3),
            f.select(dead, zero, y3),
            f.select(dead, zero, zz3),
            f.select(dead, zero, zzz3),
        )

    def add(self, p1: BatchXyzz, p2: BatchXyzz) -> BatchXyzz:
        """Lanewise general PADD matching :func:`repro.curves.point.xyzz_add`."""
        f = self.field
        u1 = f.mul(p1.x, p2.zz)
        u2 = f.mul(p2.x, p1.zz)
        s1 = f.mul(p1.y, p2.zzz)
        s2 = f.mul(p2.y, p1.zzz)
        pp_ = f.sub(u2, u1)
        r = f.sub(s2, s1)
        pp = f.mul(pp_, pp_)
        ppp = f.mul(pp, pp_)
        q = f.mul(u1, pp)
        x3 = f.sub(f.sub(f.mul(r, r), ppp), f.double(q))
        y3 = f.sub(f.mul(r, f.sub(q, x3)), f.mul(s1, ppp))
        zz3 = f.mul(f.mul(p1.zz, p2.zz), pp)
        zzz3 = f.mul(f.mul(p1.zzz, p2.zzz), ppp)
        out = BatchXyzz(x3, y3, zz3, zzz3)

        id1 = self.is_identity(p1)
        id2 = self.is_identity(p2)
        degenerate = np.logical_and(
            f.is_zero(pp_), np.logical_not(np.logical_or(id1, id2))
        )
        self._patch_degenerate(out, degenerate, f.is_zero(r), p1)
        self._select_into(out, id1, p2)
        self._select_into(out, id2, p1)
        return out

    def acc(self, acc: BatchXyzz, pts: BatchAffine) -> BatchXyzz:
        """Lanewise PACC (mixed add) matching :func:`xyzz_acc`."""
        f = self.field
        u2 = f.mul(pts.x, acc.zz)
        s2 = f.mul(pts.y, acc.zzz)
        pp_ = f.sub(u2, acc.x)
        r = f.sub(s2, acc.y)
        pp = f.mul(pp_, pp_)
        ppp = f.mul(pp, pp_)
        q = f.mul(acc.x, pp)
        x3 = f.sub(f.sub(f.mul(r, r), ppp), f.double(q))
        y3 = f.sub(f.mul(r, f.sub(q, x3)), f.mul(acc.y, ppp))
        zz3 = f.mul(acc.zz, pp)
        zzz3 = f.mul(acc.zzz, ppp)
        out = BatchXyzz(x3, y3, zz3, zzz3)

        acc_id = self.is_identity(acc)
        pt_inf = pts.infinity
        degenerate = np.logical_and(
            f.is_zero(pp_),
            np.logical_not(np.logical_or(acc_id, pt_inf)),
        )
        self._patch_degenerate(out, degenerate, f.is_zero(r), acc)
        self._select_into(out, acc_id, self.from_affine(pts))
        self._select_into(out, pt_inf, acc)
        return out

    # -- mask plumbing -----------------------------------------------------

    def _patch_degenerate(
        self,
        out: BatchXyzz,
        degenerate: np.ndarray,
        r_zero: np.ndarray,
        base: BatchXyzz,
    ) -> None:
        """Overwrite degenerate (pp_ == 0) lanes: double if r == 0 else identity.

        The doubling is computed on the gathered sub-batch only; degenerate
        lanes are rare in bucket workloads, so the gather keeps the common
        path free of a full-width PDBL.
        """
        idx = np.nonzero(degenerate)[0]
        if idx.size == 0:
            return
        doubled = self.pdbl(base.take(idx))
        dbl_lane = r_zero[idx]
        f = self.field
        zero = f.zeros(idx.size)
        patch = BatchXyzz(
            f.select(dbl_lane, doubled.x, zero),
            f.select(dbl_lane, doubled.y, zero),
            f.select(dbl_lane, doubled.zz, zero),
            f.select(dbl_lane, doubled.zzz, zero),
        )
        out.put(idx, patch)

    def _select_into(self, out: BatchXyzz, mask: np.ndarray, src: BatchXyzz) -> None:
        """``out[lane] = src[lane]`` wherever ``mask`` holds."""
        f = self.field
        out.x = f.select(mask, src.x, out.x)
        out.y = f.select(mask, src.y, out.y)
        out.zz = f.select(mask, src.zz, out.zz)
        out.zzz = f.select(mask, src.zzz, out.zzz)


_BATCH_CURVES: dict[str, BatchCurve] = {}


def batch_curve(curve: CurveParams) -> BatchCurve:
    """Shared :class:`BatchCurve` per curve name (constants encoded once)."""
    cached = _BATCH_CURVES.get(curve.name)
    if cached is None or cached.curve.p != curve.p:
        cached = BatchCurve(curve)
        _BATCH_CURVES[curve.name] = cached
    return cached
